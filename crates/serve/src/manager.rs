//! The sharded multi-session manager.
//!
//! N worker shards (the [`Parallelism`](echowrite::Parallelism) knob) each
//! own a `SessionId → StreamingSession` map plus pooled scratch, with
//! sessions pinned to shards by id hash — all DSP state stays
//! thread-local, so per-session output is bitwise identical to an
//! isolated [`StreamingRecognizer`](echowrite::StreamingRecognizer) no
//! matter how many shards run or how sessions interleave.
//!
//! Workers drain their queue in batches (up to [`ServeConfig::batch_max`]
//! commands per round), running every push of a batch through one
//! shard-shared DSP scratch so the FFT workspace stays hot across sessions;
//! commands execute strictly in queue order, so the batch size never
//! changes any output bit.
//!
//! Ingress is a bounded MPSC queue per shard and **never blocks**:
//! [`SessionManager::submit`] returns a [`SubmitVerdict`] — enqueued, queue
//! full (with a drain hint), or shed by the admission controller. A push
//! that waits in a backlog past the configured deadline is degraded to
//! segment-only output (the DTW match is skipped, the DSP state still
//! advances) rather than stalling the shard. An idle reaper driven by the
//! shard's logical sample clock reclaims abandoned sessions; no wall clock
//! is read anywhere on the result path.

use crate::admission::AdmissionController;
use crate::config::{ReapPolicy, ServeConfig};
use crate::metrics::ServeMetrics;
use echowrite::{EchoWrite, SegmentEvent, SharedDspScratch, StreamingSession};
use echowrite_profile::Stopwatch;
use echowrite_snapshot::{restore_in_place, snapshot_session, SnapshotStore};
use echowrite_trace::{
    flight_to_chrome_json, EventKind, FlightEntry, FlightRing, SmallStr, Stage, TraceEvent,
    TICK_UNSET,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Scan for idle sessions every this many processed commands.
const REAP_SCAN_EVERY: u64 = 64;

/// Identifies one recognition session. Allocation is the caller's business
/// (connection id, user id hash, …); the manager only requires ids of live
/// sessions to be distinct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// The manager's answer to a [`SessionManager::submit`] — never a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub enum SubmitVerdict {
    /// Accepted; the shard will process it in submission order.
    Enqueued,
    /// The session's shard queue is full; try again after roughly this
    /// many queued commands have drained.
    QueueFull {
        /// Current depth of the rejecting shard's queue.
        retry_after_chunks: usize,
    },
    /// Rejected by the admission controller (opens past the high-water
    /// mark or the hard session cap), or the manager is shutting down.
    Shedding,
}

/// One unit of work for [`SessionManager::submit`].
#[derive(Debug)]
pub enum Request<'a> {
    /// Start a session (admission-controlled).
    Open(SessionId),
    /// Append an audio chunk to a live session.
    Push(SessionId, &'a [f64]),
    /// End a session, flushing every remaining segment.
    Finish(SessionId),
}

/// An output produced by a shard worker, drained via
/// [`SessionManager::try_events`]. Events of one session arrive in order;
/// events of different sessions interleave arbitrarily (shards run
/// concurrently).
#[derive(Debug, Clone)]
pub enum ServeEvent {
    /// A decided stroke segment. `segment.classification` is `None` when
    /// the producing push was degraded by a missed deadline.
    Segment {
        /// The session that produced the segment.
        session: SessionId,
        /// The segment, in the session's absolute frame clock.
        segment: SegmentEvent,
    },
    /// The session finished (explicit [`Request::Finish`]); all its
    /// segments have been emitted.
    Finished {
        /// The finished session.
        session: SessionId,
    },
    /// The idle reaper reclaimed the session.
    Reaped {
        /// The reaped session.
        session: SessionId,
    },
}

/// A command in flight to a shard worker. `req` is the wire-level
/// correlation id the command was submitted under (0 = untagged), threaded
/// through so push spans and flight-ring entries stitch against
/// client-side traces.
enum Cmd {
    Open { id: u64, req: u64 },
    Push { id: u64, chunk: Vec<f64>, seq: u64, req: u64, timer: Stopwatch },
    Finish { id: u64, req: u64 },
    /// Remove the session and reply with its encoded snapshot (migration).
    Export { id: u64, reply: SyncSender<Option<Vec<u8>>> },
    /// Install an exported snapshot under `id`; replies whether it stuck.
    Import { id: u64, bytes: Vec<u8>, reply: SyncSender<bool> },
    /// Snapshot the shard's live-session table (the obs plane's
    /// `/sessions` endpoint).
    Introspect { reply: SyncSender<Vec<SessionInfo>> },
    /// Snapshot the shard's flight ring, optionally one session's rows.
    FlightDump { session: Option<u64>, reply: SyncSender<Vec<FlightEntry>> },
}

/// Why a flight-recorder dump was triggered (DESIGN.md §6.11). The reason
/// names the artifact, so a postmortem directory reads as an anomaly log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightReason {
    /// The admission controller latched into shedding.
    Shed,
    /// A push missed its backlog deadline and was degraded.
    DeadlineDegradation,
    /// The wire front-end rejected a malformed frame.
    MalformedFrame,
    /// Reap/suspend/thaw churn reached the configured threshold within one
    /// reaper scan window.
    ReapChurn,
    /// The manager is shutting down (final dump).
    Shutdown,
    /// An operator asked for a dump (obs plane or tests).
    Manual,
}

impl FlightReason {
    /// Stable artifact-name slug.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightReason::Shed => "shed",
            FlightReason::DeadlineDegradation => "deadline",
            FlightReason::MalformedFrame => "malformed-frame",
            FlightReason::ReapChurn => "reap-churn",
            FlightReason::Shutdown => "shutdown",
            FlightReason::Manual => "manual",
        }
    }

    fn as_u64(self) -> u64 {
        match self {
            FlightReason::Shed => 0,
            FlightReason::DeadlineDegradation => 1,
            FlightReason::MalformedFrame => 2,
            FlightReason::ReapChurn => 3,
            FlightReason::Shutdown => 4,
            FlightReason::Manual => 5,
        }
    }

    fn from_u64(v: u64) -> FlightReason {
        match v {
            0 => FlightReason::Shed,
            1 => FlightReason::DeadlineDegradation,
            2 => FlightReason::MalformedFrame,
            3 => FlightReason::ReapChurn,
            4 => FlightReason::Shutdown,
            _ => FlightReason::Manual,
        }
    }
}

/// Manager→worker flight-dump trigger: a monotone epoch plus the latest
/// reason. Workers poll the epoch once per drained batch (a single load)
/// and dump their ring when it moved; triggers arriving between polls
/// coalesce into one dump.
#[derive(Debug, Default)]
struct FlightControl {
    epoch: AtomicU64,
    reason: AtomicU64,
}

impl FlightControl {
    fn trigger(&self, reason: FlightReason) {
        // ordering: Relaxed — published by the Release bump below.
        // echolint: allow(atomics-order) -- the epoch fetch_add below is the Release edge; the reason rides it
        self.reason.store(reason.as_u64(), Ordering::Relaxed);
        // ordering: Release pairs with the worker's Acquire epoch load, so
        // a worker that sees the new epoch also sees the reason store.
        self.epoch.fetch_add(1, Ordering::Release);
    }

    fn read(&self) -> (u64, FlightReason) {
        // ordering: Acquire pairs with trigger's Release bump.
        let epoch = self.epoch.load(Ordering::Acquire);
        // ordering: Relaxed — made visible by the Acquire load above.
        (epoch, FlightReason::from_u64(self.reason.load(Ordering::Relaxed)))
    }
}

/// One row of [`SessionManager::introspect`]: a live or suspended session
/// as its owning shard sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionInfo {
    /// The session id.
    pub session: u64,
    /// The shard the session is pinned to.
    pub shard: usize,
    /// Audio samples pushed since the session was opened or last resumed
    /// on this shard (0 for suspended sessions — their state lives in the
    /// store, not a shard).
    pub samples_in: u64,
    /// Commands queued on the owning shard when the row was snapshotted.
    pub backlog: usize,
    /// Whether the session is suspended in the snapshot store.
    pub suspended: bool,
    /// Shard logical clock (audio-time µs) of the session's last command.
    pub last_active_tick_us: u64,
}

/// Outstanding-command counter backing [`SessionManager::quiesce`] —
/// a condvar, not a sleep loop, so no duration is ever chosen.
#[derive(Debug, Default)]
struct Pending {
    n: Mutex<u64>,
    zero: Condvar,
}

impl Pending {
    fn lock(&self) -> std::sync::MutexGuard<'_, u64> {
        self.n.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn inc(&self) {
        *self.lock() += 1;
    }

    fn dec(&self) {
        let mut g = self.lock();
        *g = g.saturating_sub(1);
        if *g == 0 {
            self.zero.notify_all();
        }
    }

    fn wait_zero(&self) {
        let mut g = self.lock();
        while *g > 0 {
            g = self.zero.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Manager-side handle to one shard.
struct ShardHandle {
    tx: Option<SyncSender<Cmd>>,
    depth: Arc<AtomicUsize>,
    /// Pushes enqueued to this shard so far (the deadline clock).
    pushes_enqueued: Arc<AtomicU64>,
    pending: Arc<Pending>,
    join: Option<JoinHandle<()>>,
    /// Audit log of every push seq the shard worker observed, for the
    /// unique-seq regression test (compiled out of release builds).
    #[cfg(test)]
    seq_log: Arc<Mutex<Vec<u64>>>,
}

impl std::fmt::Debug for ShardHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardHandle")
            // ordering: Relaxed — a debug snapshot; nothing is gated on it.
            .field("depth", &self.depth.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// The sharded multi-session recognition service. See the module docs for
/// the architecture; see [`ServeConfig`] for the knobs.
///
/// # Example
///
/// ```
/// use echowrite::{EchoWrite, EchoWriteConfig, Parallelism};
/// use echowrite_serve::{ServeConfig, SessionId, SessionManager, SubmitVerdict};
///
/// let engine = EchoWrite::with_config(EchoWriteConfig::streaming());
/// let cfg = ServeConfig { shards: Parallelism::Threads(2), ..ServeConfig::default() };
/// let manager = SessionManager::new(engine, cfg).expect("valid config");
/// let id = SessionId(7);
/// assert_eq!(manager.open(id), SubmitVerdict::Enqueued);
/// let _ = manager.push(id, &[0.0; 4096]);
/// let _ = manager.finish(id);
/// manager.quiesce();
/// ```
#[derive(Debug)]
pub struct SessionManager {
    shards: Vec<ShardHandle>,
    admission: Arc<AdmissionController>,
    metrics: Arc<ServeMetrics>,
    /// The output side of the event channel; `None` after
    /// [`SessionManager::detach_events`] hands it to an external consumer.
    events: Mutex<Option<Receiver<ServeEvent>>>,
    deadline_chunks: Option<u64>,
    /// Snapshot store shared with every shard worker (suspend/thaw,
    /// export of suspended sessions, shutdown drain).
    store: Option<Arc<dyn SnapshotStore>>,
    /// When set before the workers stop, each worker suspends its
    /// remaining live sessions into the store on exit (crash-recovery
    /// drain; see [`SessionManager::shutdown_to_store`]).
    drain_on_exit: Arc<AtomicBool>,
    /// Flight-dump trigger shared with every shard worker.
    flight_ctl: Arc<FlightControl>,
    /// Edge detector for the shed trigger: set on the first shed, cleared
    /// once admission stops shedding, so a shed storm dumps once.
    shed_latched: AtomicBool,
}

/// The detached output side of a manager's event channel (see
/// [`SessionManager::detach_events`]): a *blocking* event consumer for a
/// dedicated dispatcher thread, e.g. the wire front-end's router. Holds no
/// reference to the manager, so the manager can be shut down while a
/// dispatcher still drains the stream — `recv` returns `None` once every
/// shard worker has exited and the channel is empty.
#[derive(Debug)]
pub struct EventStream {
    rx: Receiver<ServeEvent>,
}

impl EventStream {
    /// Blocks for the next event; `None` means the manager has shut down
    /// and every remaining event has been delivered.
    pub fn recv(&self) -> Option<ServeEvent> {
        self.rx.recv().ok()
    }

    /// Non-blocking variant of [`EventStream::recv`].
    pub fn try_recv(&self) -> Option<ServeEvent> {
        self.rx.try_recv().ok()
    }
}

/// Everything [`SessionManager::shutdown`] hands back: the final metrics
/// snapshot plus every [`ServeEvent`] still sitting undrained in the
/// channel, so a caller that skipped [`SessionManager::try_events`] loses
/// nothing across shutdown.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Final point-in-time copy of every metric.
    pub metrics: crate::metrics::MetricsSnapshot,
    /// Events that were still queued when the manager stopped (empty when
    /// the event receiver was detached — the [`EventStream`] holder owns
    /// the tail in that case).
    pub events: Vec<ServeEvent>,
}

impl SessionManager {
    /// Spawns the shard workers and returns the manager.
    ///
    /// # Errors
    ///
    /// Returns the [`ServeConfig::validate`] message when the
    /// configuration is invalid, including a
    /// [`ReapPolicy::SuspendToStore`] with no store (use
    /// [`SessionManager::with_snapshot_store`]).
    pub fn new(engine: EchoWrite, config: ServeConfig) -> Result<Self, String> {
        Self::build(engine, config, None)
    }

    /// Like [`SessionManager::new`], with a snapshot store shared by every
    /// shard: enables [`ReapPolicy::SuspendToStore`] eviction, transparent
    /// thaw of suspended sessions on their next `Open`/`Push`/`Finish`,
    /// export of suspended sessions, and the
    /// [`SessionManager::shutdown_to_store`] crash-recovery drain. A store
    /// outliving the manager (e.g. an
    /// [`echowrite_snapshot::FileStore`]) carries the suspended sessions
    /// to the next manager built over it.
    ///
    /// # Errors
    ///
    /// Returns the [`ServeConfig::validate`] message when the
    /// configuration is invalid.
    pub fn with_snapshot_store(
        engine: EchoWrite,
        config: ServeConfig,
        store: Arc<dyn SnapshotStore>,
    ) -> Result<Self, String> {
        Self::build(engine, config, Some(store))
    }

    fn build(
        engine: EchoWrite,
        config: ServeConfig,
        store: Option<Arc<dyn SnapshotStore>>,
    ) -> Result<Self, String> {
        config.validate()?;
        engine.config().validate()?;
        if config.reap_policy == ReapPolicy::SuspendToStore && store.is_none() {
            return Err(
                "ReapPolicy::SuspendToStore needs a snapshot store; \
                 construct the manager with with_snapshot_store"
                    .to_string(),
            );
        }
        let engine = Arc::new(engine);
        let admission =
            Arc::new(AdmissionController::new(config.max_sessions, config.high_water));
        let metrics = Arc::new(ServeMetrics::new());
        let (evt_tx, evt_rx) = mpsc::channel();
        let drain_on_exit = Arc::new(AtomicBool::new(false));
        let flight_ctl = Arc::new(FlightControl::default());
        let flight_dir: Option<Arc<PathBuf>> = config.flight.artifact_dir.clone().map(Arc::new);
        let mut shards = Vec::with_capacity(config.shard_count());
        for shard_index in 0..config.shard_count() {
            let (tx, rx) = mpsc::sync_channel(config.queue_capacity);
            let depth = Arc::new(AtomicUsize::new(0));
            let pushes_enqueued = Arc::new(AtomicU64::new(0));
            let pending = Arc::new(Pending::default());
            #[cfg(test)]
            let seq_log = Arc::new(Mutex::new(Vec::new()));
            let worker = Worker {
                engine: engine.clone(),
                rx,
                events: evt_tx.clone(),
                admission: admission.clone(),
                metrics: metrics.clone(),
                depth: depth.clone(),
                pushes_enqueued: pushes_enqueued.clone(),
                pending: pending.clone(),
                deadline_chunks: config.deadline_chunks,
                idle_timeout_samples: config.idle_timeout_samples,
                batch_max: config.batch_max,
                reap_policy: config.reap_policy,
                store: store.clone(),
                drain_on_exit: drain_on_exit.clone(),
                sessions: BTreeMap::new(),
                pool: Vec::new(),
                scratch: Vec::new(),
                dsp_scratch: SharedDspScratch::new(),
                clock_samples: 0,
                commands_done: 0,
                shard_index,
                flight: FlightRing::new(config.flight.capacity),
                flight_ctl: flight_ctl.clone(),
                flight_seen: 0,
                flight_dir: flight_dir.clone(),
                flight_artifacts: 0,
                churn_threshold: config.flight.churn_threshold,
                churn_window: 0,
                was_degraded: false,
                #[cfg(test)]
                seq_log: seq_log.clone(),
            };
            let join = std::thread::spawn(move || worker.run());
            shards.push(ShardHandle {
                tx: Some(tx),
                depth,
                pushes_enqueued,
                pending,
                join: Some(join),
                #[cfg(test)]
                seq_log,
            });
        }
        Ok(SessionManager {
            shards,
            admission,
            metrics,
            events: Mutex::new(Some(evt_rx)),
            deadline_chunks: config.deadline_chunks,
            store,
            drain_on_exit,
            flight_ctl,
            shed_latched: AtomicBool::new(false),
        })
    }

    /// The shard a session is pinned to (Fibonacci hash of the id).
    fn shard_of(&self, id: SessionId) -> usize {
        let h = id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) % self.shards.len().max(1)
    }

    /// Submits one request; never blocks. Opens pass admission control;
    /// pushes and finishes go straight to the session's shard queue.
    pub fn submit(&self, request: Request<'_>) -> SubmitVerdict {
        self.submit_tagged(request, 0)
    }

    /// Like [`SessionManager::submit`], tagging the command with a
    /// wire-level correlation id (0 = untagged). The id flows into the
    /// shard's push spans and flight-ring entries, so server-side traces
    /// stitch 1:1 against the client trace that assigned the id.
    pub fn submit_tagged(&self, request: Request<'_>, request_id: u64) -> SubmitVerdict {
        match request {
            Request::Open(id) => {
                if !self.admission.try_admit() {
                    self.metrics.sessions_shed.inc();
                    self.note_shed();
                    if echowrite_trace::enabled() {
                        echowrite_trace::instant(
                            Stage::Serve,
                            "session_shed",
                            TICK_UNSET,
                            SmallStr::from_display(id.0),
                        );
                    }
                    return SubmitVerdict::Shedding;
                }
                if !self.admission.is_shedding() {
                    // ordering: Relaxed — edge bookkeeping only; a stale
                    // read at worst delays the next shed dump by one open.
                    // echolint: allow(atomics-order) -- gates no data; the latch only dedups dump triggers
                    self.shed_latched.store(false, Ordering::Relaxed);
                }
                let verdict = self.enqueue(id, Cmd::Open { id: id.0, req: request_id });
                if verdict != SubmitVerdict::Enqueued {
                    // The slot reserved above was never used.
                    self.admission.release();
                }
                if verdict == SubmitVerdict::Enqueued {
                    self.metrics.sessions_live.inc();
                }
                verdict
            }
            Request::Push(id, chunk) => {
                let shard = self.shard_of(id);
                // Reserve the seq *before* the send (mirroring the `depth`
                // accounting in `enqueue`): a load-then-increment here would
                // let two concurrent submitters observe the same counter
                // value and stamp duplicate seqs, skewing the backlog `lag`
                // the deadline policy degrades on.
                // ordering: AcqRel — the reservation is both the publish
                // (a later submitter's reservation sees it) and the acquire
                // edge the worker's lag load pairs with.
                let seq = match self.shards.get(shard) {
                    Some(s) => s.pushes_enqueued.fetch_add(1, Ordering::AcqRel),
                    None => 0,
                };
                let cmd = Cmd::Push {
                    id: id.0,
                    chunk: chunk.to_vec(),
                    seq,
                    req: request_id,
                    timer: Stopwatch::start(),
                };
                let verdict = self.enqueue(id, cmd);
                if verdict != SubmitVerdict::Enqueued {
                    // The reservation was never enqueued; return it so the
                    // backlog clock does not drift on rejected submissions.
                    // ordering: AcqRel — pairs with the reservation above.
                    if let Some(s) = self.shards.get(shard) {
                        s.pushes_enqueued.fetch_sub(1, Ordering::AcqRel);
                    }
                }
                verdict
            }
            Request::Finish(id) => self.enqueue(id, Cmd::Finish { id: id.0, req: request_id }),
        }
    }

    /// First shed after a clean period latches and triggers a flight dump;
    /// the latch clears once admission stops shedding, so a shed storm
    /// produces one postmortem, not thousands.
    fn note_shed(&self) {
        // ordering: AcqRel on success orders the trigger after the latch
        // edge; Acquire on failure just observes an already-set latch.
        if self
            .shed_latched
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.trigger_flight_dump(FlightReason::Shed);
        }
    }

    /// Asks every shard worker to dump its flight ring at its next drain
    /// (DESIGN.md §6.11). Used by the serve layer's own anomaly triggers,
    /// the wire front-end (malformed frames), and the obs plane.
    pub fn trigger_flight_dump(&self, reason: FlightReason) {
        self.flight_ctl.trigger(reason);
    }

    /// [`Request::Open`] shorthand.
    pub fn open(&self, id: SessionId) -> SubmitVerdict {
        self.submit(Request::Open(id))
    }

    /// [`Request::Push`] shorthand.
    // echolint: entry
    pub fn push(&self, id: SessionId, chunk: &[f64]) -> SubmitVerdict {
        self.submit(Request::Push(id, chunk))
    }

    /// [`Request::Finish`] shorthand.
    pub fn finish(&self, id: SessionId) -> SubmitVerdict {
        self.submit(Request::Finish(id))
    }

    /// Removes the session from its shard and returns its encoded
    /// snapshot, for migration to another shard, process, or manager.
    /// Also exports a session currently *suspended* in the snapshot store.
    /// Returns `None` when the id is unknown (or the manager is shutting
    /// down). Blocks until the owning shard reaches the command in queue
    /// order, so the bytes reflect every previously enqueued push.
    pub fn export_session(&self, id: SessionId) -> Option<Vec<u8>> {
        let (reply, rx) = mpsc::sync_channel(1);
        if self.enqueue(id, Cmd::Export { id: id.0, reply }) != SubmitVerdict::Enqueued {
            return None;
        }
        rx.recv().ok().flatten()
    }

    /// Installs an exported session snapshot under `id` (on this manager's
    /// shard for the id — the engine configurations must match, which the
    /// snapshot's config fingerprint enforces). Admission-controlled like
    /// an open. Returns `false` when the id is already live, admission
    /// sheds it, or the bytes fail to decode/restore. Blocks until the
    /// owning shard processes the command.
    pub fn import_session(&self, id: SessionId, bytes: Vec<u8>) -> bool {
        let (reply, rx) = mpsc::sync_channel(1);
        if self.enqueue(id, Cmd::Import { id: id.0, bytes, reply }) != SubmitVerdict::Enqueued {
            return false;
        }
        rx.recv().unwrap_or(false)
    }

    fn enqueue(&self, id: SessionId, cmd: Cmd) -> SubmitVerdict {
        let Some(shard) = self.shards.get(self.shard_of(id)) else {
            return SubmitVerdict::Shedding;
        };
        let Some(tx) = shard.tx.as_ref() else {
            return SubmitVerdict::Shedding;
        };
        // Count before sending so the worker can never observe a drain
        // below zero; undo on rejection.
        shard.pending.inc();
        // ordering: AcqRel keeps the depth add/sub pairs totally ordered with
        // the worker's drain decrement, and the Acquire load below reports a
        // retry hint no older than this rejected send.
        shard.depth.fetch_add(1, Ordering::AcqRel);
        self.metrics.queue_depth.inc();
        match tx.try_send(cmd) {
            Ok(()) => SubmitVerdict::Enqueued,
            Err(err) => {
                shard.pending.dec();
                shard.depth.fetch_sub(1, Ordering::AcqRel);
                self.metrics.queue_depth.dec();
                match err {
                    TrySendError::Full(_) => {
                        self.metrics.queue_full.inc();
                        if echowrite_trace::enabled() {
                            echowrite_trace::instant(
                                Stage::Serve,
                                "queue_full",
                                TICK_UNSET,
                                SmallStr::from_display(id.0),
                            );
                        }
                        SubmitVerdict::QueueFull {
                            retry_after_chunks: shard.depth.load(Ordering::Acquire).max(1),
                        }
                    }
                    TrySendError::Disconnected(_) => SubmitVerdict::Shedding,
                }
            }
        }
    }

    /// Enqueues an admin command on a specific shard, mirroring
    /// [`SessionManager::enqueue`]'s depth/pending accounting. Returns
    /// `false` when the queue is full or closed — admin scans skip a
    /// saturated shard instead of blocking ingress behind it.
    fn enqueue_on(&self, shard: &ShardHandle, cmd: Cmd) -> bool {
        let Some(tx) = shard.tx.as_ref() else {
            return false;
        };
        shard.pending.inc();
        // ordering: AcqRel — the same pairing as `enqueue`, so the worker's
        // drain decrement never observes a depth below zero.
        shard.depth.fetch_add(1, Ordering::AcqRel);
        self.metrics.queue_depth.inc();
        if tx.try_send(cmd).is_ok() {
            return true;
        }
        shard.pending.dec();
        shard.depth.fetch_sub(1, Ordering::AcqRel);
        self.metrics.queue_depth.dec();
        false
    }

    /// A point-in-time table of every session the manager knows: live
    /// sessions as their owning shards see them, plus sessions suspended
    /// in the snapshot store. Rows come back ordered by session id.
    /// Best-effort: a shard whose queue is full at scan time is skipped
    /// rather than blocked on, so the admin plane never adds backpressure.
    pub fn introspect(&self) -> Vec<SessionInfo> {
        let mut rxs = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let (reply, rx) = mpsc::sync_channel(1);
            if self.enqueue_on(shard, Cmd::Introspect { reply }) {
                rxs.push(rx);
            }
        }
        let mut out: Vec<SessionInfo> = Vec::new();
        for rx in rxs {
            if let Ok(rows) = rx.recv() {
                out.extend(rows);
            }
        }
        if let Some(store) = self.store.as_ref() {
            if let Ok(ids) = store.sessions() {
                for id in ids {
                    out.push(SessionInfo {
                        session: id,
                        shard: self.shard_of(SessionId(id)),
                        samples_in: 0,
                        backlog: 0,
                        suspended: true,
                        last_active_tick_us: 0,
                    });
                }
            }
        }
        // Live beats suspended when a session raced a thaw mid-scan.
        out.sort_by_key(|row| (row.session, row.suspended));
        out.dedup_by_key(|row| row.session);
        out
    }

    /// Merges every shard's flight-ring snapshot, optionally filtered to
    /// one session, ordered by logical tick. The rings are always on, so
    /// this works with tracing disabled and needs no restart.
    pub fn flight_snapshot(&self, session: Option<u64>) -> Vec<FlightEntry> {
        let mut rxs = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let (reply, rx) = mpsc::sync_channel(1);
            if self.enqueue_on(shard, Cmd::FlightDump { session, reply }) {
                rxs.push(rx);
            }
        }
        let mut out: Vec<FlightEntry> = Vec::new();
        for rx in rxs {
            if let Ok(entries) = rx.recv() {
                out.extend(entries);
            }
        }
        out.sort_by_key(|e| e.event.tick_us);
        out
    }

    /// Blocks until every enqueued command has been processed (a condvar
    /// handshake — submissions arriving concurrently extend the wait).
    pub fn quiesce(&self) {
        for shard in &self.shards {
            shard.pending.wait_zero();
        }
    }

    /// Drains every currently available output event into `out`, returning
    /// how many were appended. Never blocks. Returns 0 after
    /// [`SessionManager::detach_events`] (the stream owner gets them).
    pub fn try_events(&self, out: &mut Vec<ServeEvent>) -> usize {
        let guard = self.events.lock().unwrap_or_else(|e| e.into_inner());
        let Some(rx) = guard.as_ref() else {
            return 0;
        };
        let before = out.len();
        while let Ok(ev) = rx.try_recv() {
            out.push(ev);
        }
        out.len() - before
    }

    /// Moves the event receiver out of the manager, for a dedicated
    /// dispatcher thread that wants *blocking* receives (e.g. the wire
    /// front-end's event router). After this, [`SessionManager::try_events`]
    /// always returns 0 and [`SessionManager::shutdown`] reports no
    /// residual events — the stream owner is responsible for the tail.
    /// Returns `None` if the stream was already detached.
    pub fn detach_events(&self) -> Option<EventStream> {
        let mut guard = self.events.lock().unwrap_or_else(|e| e.into_inner());
        guard.take().map(|rx| EventStream { rx })
    }

    /// The manager's metric registry.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Sessions currently live across all shards.
    pub fn live_sessions(&self) -> usize {
        self.admission.live()
    }

    /// Whether the admission controller is currently shedding new opens.
    pub fn is_shedding(&self) -> bool {
        self.admission.is_shedding()
    }

    /// The configured backlog deadline, if any.
    pub fn deadline_chunks(&self) -> Option<u64> {
        self.deadline_chunks
    }

    /// The snapshot store this manager was built over (see
    /// [`SessionManager::with_snapshot_store`]), e.g. to enumerate
    /// suspended sessions. `None` for a storeless manager.
    pub fn snapshot_store(&self) -> Option<&Arc<dyn SnapshotStore>> {
        self.store.as_ref()
    }

    /// Drains the queues, stops every shard worker, and returns the final
    /// metrics snapshot together with every event still undrained in the
    /// channel. Workers send a command's events *before* acknowledging it
    /// to [`SessionManager::quiesce`], so after the quiesce every event of
    /// every processed command is in the channel — draining here means a
    /// caller that never polled [`SessionManager::try_events`] still loses
    /// no `Segment`/`Finished` across shutdown.
    pub fn shutdown(self) -> ShutdownReport {
        self.quiesce();
        let metrics = Arc::clone(&self.metrics);
        let rx = self.events.lock().unwrap_or_else(|e| e.into_inner()).take();
        // Dropping joins the workers, so events they emit while exiting
        // (none today, but the drain path reserves the right) and their
        // final metric updates are visible below.
        drop(self);
        let mut events = Vec::new();
        if let Some(rx) = rx {
            while let Ok(ev) = rx.try_recv() {
                events.push(ev);
            }
        }
        ShutdownReport { metrics: metrics.snapshot(), events }
    }

    /// Crash-recovery variant of [`SessionManager::shutdown`]: every
    /// session still live when the workers stop is suspended into the
    /// snapshot store (counted in `sessions_suspended`), so a fresh
    /// manager built over the same store with
    /// [`SessionManager::with_snapshot_store`] thaws them transparently on
    /// their next command and clients resume mid-word, bitwise. Without a
    /// store this is exactly [`SessionManager::shutdown`].
    pub fn shutdown_to_store(self) -> ShutdownReport {
        // ordering: Release pairs with the worker's Acquire load on exit;
        // the quiesce/join inside shutdown() sequences everything else.
        self.drain_on_exit.store(true, Ordering::Release);
        self.shutdown()
    }
}

impl Drop for SessionManager {
    fn drop(&mut self) {
        // Closing the senders ends each worker's recv loop; then join.
        for shard in &mut self.shards {
            shard.tx = None;
        }
        for shard in &mut self.shards {
            if let Some(join) = shard.join.take() {
                let _ = join.join();
            }
        }
    }
}

/// One live session owned by a shard.
struct Slot {
    session: StreamingSession,
    /// Shard logical-clock stamp (samples processed) of the last command.
    last_active: u64,
    /// Samples pushed since this slot went live (open, thaw, or import).
    samples_in: u64,
}

/// A shard worker's whole state; `run` consumes it on its own thread.
struct Worker {
    engine: Arc<EchoWrite>,
    rx: Receiver<Cmd>,
    events: Sender<ServeEvent>,
    admission: Arc<AdmissionController>,
    metrics: Arc<ServeMetrics>,
    depth: Arc<AtomicUsize>,
    pushes_enqueued: Arc<AtomicU64>,
    pending: Arc<Pending>,
    deadline_chunks: Option<u64>,
    idle_timeout_samples: Option<u64>,
    /// Commands drained from the queue per batch round (1 = no batching).
    batch_max: usize,
    /// Reaper disposition: drop reclaimed sessions or suspend them.
    reap_policy: ReapPolicy,
    /// Snapshot store for suspend/thaw/export; shared across shards.
    store: Option<Arc<dyn SnapshotStore>>,
    /// Set by [`SessionManager::shutdown_to_store`]: suspend every
    /// remaining live session into the store when the queue closes.
    drain_on_exit: Arc<AtomicBool>,
    /// Live sessions pinned to this shard (ordered map: deterministic
    /// iteration for the reaper).
    sessions: BTreeMap<u64, Slot>,
    /// Finished/reaped session state kept for reuse — the arena that makes
    /// open/close cheap (a reset touches counters, not allocations).
    pool: Vec<StreamingSession>,
    /// Per-shard scratch for segment events.
    scratch: Vec<SegmentEvent>,
    /// Shard-shared DSP workspace: every push of a batch runs its STFT
    /// frames through this one arena, keeping the windowed-frame, FFT, and
    /// spectrum buffers hot across sessions.
    dsp_scratch: SharedDspScratch,
    /// Logical clock: total samples this shard has processed.
    clock_samples: u64,
    commands_done: u64,
    /// This worker's shard number, for artifact names and introspection.
    shard_index: usize,
    /// Always-on flight recorder: a bounded ring of recent events owned
    /// outright by this worker — recording is a plain array store, no
    /// atomics, no locks, independent of the global trace gate.
    flight: FlightRing,
    /// Manager-side dump trigger (shed latch, malformed frames, manual).
    flight_ctl: Arc<FlightControl>,
    /// Last trigger epoch this worker acted on.
    flight_seen: u64,
    /// Where anomaly dumps go; `None` keeps the ring in-memory only.
    flight_dir: Option<Arc<PathBuf>>,
    /// Per-worker dump ordinal, for unique artifact names.
    flight_artifacts: u64,
    /// Reap/suspend/thaw events per scan window that count as churn
    /// (0 disables the churn trigger).
    churn_threshold: u64,
    /// Reap/suspend/thaw events since the last reaper scan.
    churn_window: u64,
    /// Previous push's degraded flag, so the deadline trigger fires on the
    /// rising edge instead of once per degraded push.
    was_degraded: bool,
    /// Mirror of [`ShardHandle::seq_log`] for the unique-seq regression
    /// test.
    #[cfg(test)]
    seq_log: Arc<Mutex<Vec<u64>>>,
}

impl Worker {
    /// Trace timestamp: the shard's logical sample clock, in audio-time µs.
    fn tick_us(&self) -> u64 {
        echowrite_trace::samples_to_us(self.clock_samples, self.engine.config().stft.sample_rate)
    }

    // echolint: entry
    fn run(mut self) {
        // Batched drain: block for the first command, then greedily pull up
        // to `batch_max − 1` more that are already queued. Commands execute
        // strictly in queue order with per-command accounting, so batching
        // changes cache behaviour (one shared DSP scratch pass over N
        // sessions' pushes) but never the output or the quiesce contract.
        let mut batch: Vec<Cmd> = Vec::with_capacity(self.batch_max);
        while let Ok(first) = self.rx.recv() {
            batch.push(first);
            while batch.len() < self.batch_max {
                match self.rx.try_recv() {
                    Ok(cmd) => batch.push(cmd),
                    Err(_) => break,
                }
            }
            self.metrics.batch_drains.inc();
            for cmd in batch.drain(..) {
                // ordering: AcqRel pairs with the manager's enqueue increment, so the
                // observed depth never dips below zero mid-handoff.
                self.depth.fetch_sub(1, Ordering::AcqRel);
                self.metrics.queue_depth.dec();
                match cmd {
                    Cmd::Open { id, req } => self.handle_open(id, req),
                    Cmd::Push { id, chunk, seq, req, timer } => {
                        self.handle_push(id, &chunk, seq, req, timer);
                    }
                    Cmd::Finish { id, req } => self.handle_finish(id, req),
                    Cmd::Export { id, reply } => self.handle_export(id, &reply),
                    Cmd::Import { id, bytes, reply } => self.handle_import(id, &bytes, &reply),
                    Cmd::Introspect { reply } => self.handle_introspect(&reply),
                    Cmd::FlightDump { session, reply } => {
                        self.handle_flight_dump(session, &reply);
                    }
                }
                self.commands_done += 1;
                if self.commands_done.is_multiple_of(REAP_SCAN_EVERY) {
                    self.reap_idle();
                }
                self.pending.dec();
            }
            self.check_flight();
        }
        // Crash-recovery drain: the queue closed with the drain flag set,
        // so suspend every remaining live session into the store — a fresh
        // manager over the same store thaws them on their next command.
        // ordering: Acquire pairs with shutdown_to_store's Release store.
        if self.drain_on_exit.load(Ordering::Acquire) && self.store.is_some() {
            let ids: Vec<u64> = self.sessions.keys().copied().collect();
            for id in ids {
                self.suspend_session(id);
            }
        }
        // Final postmortem: shutdown always leaves a flight artifact when
        // a dump directory is configured.
        self.dump_flight(FlightReason::Shutdown);
    }

    /// Records one event into the always-on flight ring. Runs regardless
    /// of the global trace gate — the ring is the postmortem of last
    /// resort, and a single array store fits the 5 % per-push budget.
    fn record_flight(
        &mut self,
        session: u64,
        req: u64,
        name: &'static str,
        kind: EventKind,
        wall_us: u64,
        value: f64,
    ) {
        let event = TraceEvent {
            stage: Stage::Serve,
            name,
            kind,
            tick_us: self.tick_us(),
            wall_us,
            value,
            detail: SmallStr::empty(),
        };
        self.flight.record(session, req, event);
    }

    /// Polls the manager-side trigger; dumps when the epoch moved.
    fn check_flight(&mut self) {
        let (epoch, reason) = self.flight_ctl.read();
        if epoch != self.flight_seen {
            self.flight_seen = epoch;
            self.dump_flight(reason);
        }
    }

    /// Writes the ring as a Chrome-trace artifact
    /// `flight-<uptime_ms>ms-<reason>-shard<k>-<n>.json` into the
    /// configured directory. The name uses the metrics registry's
    /// quarantined uptime clock — no new wall-clock read — plus a
    /// per-worker ordinal for uniqueness. No directory, no artifact (the
    /// ring still serves live snapshots through
    /// [`SessionManager::flight_snapshot`]).
    fn dump_flight(&mut self, reason: FlightReason) {
        let Some(dir) = self.flight_dir.as_ref() else {
            return;
        };
        let uptime_ms = (self.metrics.uptime_seconds() * 1_000.0) as u64;
        let name = format!(
            "flight-{uptime_ms}ms-{}-shard{}-{}.json",
            reason.as_str(),
            self.shard_index,
            self.flight_artifacts
        );
        self.flight_artifacts += 1;
        let json = flight_to_chrome_json(&self.flight.snapshot());
        if std::fs::create_dir_all(dir.as_ref()).is_ok()
            && std::fs::write(dir.join(name), json).is_ok()
        {
            self.metrics.flight_dumps.inc();
        }
    }

    /// [`Cmd::Introspect`]: the live-session table as this shard sees it.
    fn handle_introspect(&self, reply: &SyncSender<Vec<SessionInfo>>) {
        // ordering: Relaxed — a monitoring snapshot; nothing branches on it.
        let backlog = self.depth.load(Ordering::Relaxed);
        let sample_rate = self.engine.config().stft.sample_rate;
        let rows = self
            .sessions
            .iter()
            .map(|(&id, slot)| SessionInfo {
                session: id,
                shard: self.shard_index,
                samples_in: slot.samples_in,
                backlog,
                suspended: false,
                last_active_tick_us: echowrite_trace::samples_to_us(slot.last_active, sample_rate),
            })
            .collect();
        let _ = reply.send(rows);
    }

    /// [`Cmd::FlightDump`]: a copy of the ring, optionally one session's.
    fn handle_flight_dump(&self, session: Option<u64>, reply: &SyncSender<Vec<FlightEntry>>) {
        let mut entries = self.flight.snapshot();
        if let Some(id) = session {
            entries.retain(|e| e.session == id);
        }
        let _ = reply.send(entries);
    }

    /// Tries to resurrect a suspended session from the snapshot store.
    ///
    /// `admit` is true on the `Push`/`Finish` path, where no admission slot
    /// is reserved yet; the `Open` path passes false because
    /// [`SessionManager::submit`] already admitted the id. Returns whether
    /// the session is now live. On a decode/restore failure the bytes are
    /// discarded (they cannot become a session under this engine) and the
    /// caller falls through to its unknown-id behaviour.
    fn thaw(&mut self, id: u64, admit: bool) -> bool {
        let Some(store) = self.store.as_ref() else {
            return false;
        };
        let Ok(Some(bytes)) = store.remove(id) else {
            return false;
        };
        if admit && !self.admission.try_admit() {
            // Shed exactly like an over-water open; park the bytes back so
            // the session can still thaw once the population drains.
            let _ = store.put(id, bytes);
            self.metrics.sessions_shed.inc();
            return false;
        }
        let mut session = match self.pool.pop() {
            Some(mut s) => {
                s.reset(&self.engine);
                s
            }
            None => StreamingSession::new(&self.engine),
        };
        match restore_in_place(&mut session, &bytes, &self.engine) {
            Ok(()) => {
                self.sessions.insert(
                    id,
                    Slot { session, last_active: self.clock_samples, samples_in: 0 },
                );
                if admit {
                    self.metrics.sessions_live.inc();
                }
                self.metrics.sessions_resumed.inc();
                self.churn_window += 1;
                self.record_flight(id, 0, "session_resume", EventKind::Instant, 0, 0.0);
                if echowrite_trace::enabled() {
                    echowrite_trace::instant(
                        Stage::Snapshot,
                        "session_resume",
                        self.tick_us(),
                        SmallStr::from_display(id),
                    );
                }
                true
            }
            Err(_) => {
                // After a failed restore the session is unspecified: reset
                // before returning it to the pool.
                session.reset(&self.engine);
                self.pool.push(session);
                if admit {
                    self.admission.release();
                }
                false
            }
        }
    }

    /// Suspends one live session into the snapshot store (reaper eviction
    /// and the shutdown drain). Falls back to a plain reap when the store
    /// write fails — the session is then gone, exactly as under
    /// [`ReapPolicy::Drop`], and the `Reaped` event says so.
    fn suspend_session(&mut self, id: u64) {
        let Some(mut slot) = self.sessions.remove(&id) else {
            return;
        };
        let Some(store) = self.store.as_ref() else {
            // No store: behave as a plain reap (callers gate on the store,
            // so this is a defensive arm, not a reachable policy).
            self.pool.push(slot.session);
            let _ = self.events.send(ServeEvent::Reaped { session: SessionId(id) });
            self.admission.release();
            self.metrics.sessions_reaped.inc();
            self.metrics.sessions_live.dec();
            self.churn_window += 1;
            return;
        };
        let bytes = snapshot_session(&slot.session, &self.engine);
        let stored = store.put(id, bytes).is_ok();
        slot.session.reset(&self.engine);
        self.pool.push(slot.session);
        self.admission.release();
        self.metrics.sessions_live.dec();
        self.churn_window += 1;
        self.record_flight(
            id,
            0,
            if stored { "session_suspend" } else { "session_reaped" },
            EventKind::Instant,
            0,
            0.0,
        );
        if stored {
            self.metrics.sessions_suspended.inc();
            if echowrite_trace::enabled() {
                echowrite_trace::instant(
                    Stage::Snapshot,
                    "session_suspend",
                    self.tick_us(),
                    SmallStr::from_display(id),
                );
            }
        } else {
            let _ = self.events.send(ServeEvent::Reaped { session: SessionId(id) });
            self.metrics.sessions_reaped.inc();
            if echowrite_trace::enabled() {
                echowrite_trace::instant(
                    Stage::Serve,
                    "session_reaped",
                    self.tick_us(),
                    SmallStr::from_display(id),
                );
            }
        }
    }

    /// [`Cmd::Export`]: hand the session's snapshot to the caller and
    /// forget it — live sessions are serialized and released, suspended
    /// ones are pulled straight out of the store.
    fn handle_export(&mut self, id: u64, reply: &SyncSender<Option<Vec<u8>>>) {
        let out = if let Some(mut slot) = self.sessions.remove(&id) {
            let bytes = snapshot_session(&slot.session, &self.engine);
            slot.session.reset(&self.engine);
            self.pool.push(slot.session);
            self.admission.release();
            self.metrics.sessions_live.dec();
            self.metrics.sessions_suspended.inc();
            if echowrite_trace::enabled() {
                echowrite_trace::instant(
                    Stage::Snapshot,
                    "session_export",
                    self.tick_us(),
                    SmallStr::from_display(id),
                );
            }
            Some(bytes)
        } else if let Some(bytes) =
            self.store.as_ref().and_then(|s| s.remove(id).ok().flatten())
        {
            // Already suspended: its live-count bookkeeping happened at
            // suspend time, so the bytes just change owners.
            Some(bytes)
        } else {
            self.metrics.orphan_commands.inc();
            None
        };
        let _ = reply.send(out);
    }

    /// [`Cmd::Import`]: install an exported snapshot as a live session,
    /// admission-controlled like an open.
    fn handle_import(&mut self, id: u64, bytes: &[u8], reply: &SyncSender<bool>) {
        if self.sessions.contains_key(&id) {
            let _ = reply.send(false);
            return;
        }
        if !self.admission.try_admit() {
            self.metrics.sessions_shed.inc();
            let _ = reply.send(false);
            return;
        }
        let mut session = match self.pool.pop() {
            Some(mut s) => {
                s.reset(&self.engine);
                s
            }
            None => StreamingSession::new(&self.engine),
        };
        let ok = match restore_in_place(&mut session, bytes, &self.engine) {
            Ok(()) => {
                self.sessions.insert(
                    id,
                    Slot { session, last_active: self.clock_samples, samples_in: 0 },
                );
                self.metrics.sessions_live.inc();
                self.metrics.sessions_resumed.inc();
                self.record_flight(id, 0, "session_import", EventKind::Instant, 0, 0.0);
                if echowrite_trace::enabled() {
                    echowrite_trace::instant(
                        Stage::Snapshot,
                        "session_import",
                        self.tick_us(),
                        SmallStr::from_display(id),
                    );
                }
                true
            }
            Err(_) => {
                session.reset(&self.engine);
                self.pool.push(session);
                self.admission.release();
                false
            }
        };
        let _ = reply.send(ok);
    }

    fn handle_open(&mut self, id: u64, req: u64) {
        if let Some(slot) = self.sessions.get_mut(&id) {
            // Re-open of a live id is idempotent: a wire client retrying an
            // `Open` whose ack was lost must not destroy its own in-flight
            // state (the old `reset()` here wiped the session). Touch the
            // idle clock, keep every buffer, and return the duplicate
            // admission slot reserved by submit().
            slot.last_active = self.clock_samples;
            self.admission.release();
            self.metrics.sessions_live.dec();
            self.metrics.sessions_reopened.inc();
            self.record_flight(id, req, "session_reopen", EventKind::Instant, 0, 0.0);
            if echowrite_trace::enabled() {
                echowrite_trace::instant(
                    Stage::Serve,
                    "session_reopen",
                    self.tick_us(),
                    SmallStr::from_display(id),
                );
            }
            return;
        }
        // A suspended session thaws on re-open instead of starting over;
        // submit() already reserved this open's admission slot.
        if self.thaw(id, false) {
            return;
        }
        let session = match self.pool.pop() {
            Some(mut s) => {
                s.reset(&self.engine);
                s
            }
            None => StreamingSession::new(&self.engine),
        };
        self.sessions
            .insert(id, Slot { session, last_active: self.clock_samples, samples_in: 0 });
        self.metrics.sessions_opened.inc();
        self.record_flight(id, req, "session_open", EventKind::Instant, 0, 0.0);
        if echowrite_trace::enabled() {
            echowrite_trace::instant(
                Stage::Serve,
                "session_open",
                self.tick_us(),
                SmallStr::from_display(id),
            );
        }
    }

    fn handle_push(&mut self, id: u64, chunk: &[f64], seq: u64, req: u64, timer: Stopwatch) {
        #[cfg(test)]
        self.seq_log.lock().unwrap_or_else(|e| e.into_inner()).push(seq);
        // A push racing the reaper: under SuspendToStore the session was
        // parked, not destroyed — thaw it and the push lands as if the
        // reap never happened.
        if !self.sessions.contains_key(&id) && !self.thaw(id, true) {
            self.metrics.orphan_commands.inc();
            return;
        }
        let Some(slot) = self.sessions.get_mut(&id) else {
            self.metrics.orphan_commands.inc();
            return;
        };
        // Backlog lag: pushes enqueued to this shard after this one was.
        // ordering: Acquire pairs with the manager's AcqRel enqueue counter,
        // so lag counts every push enqueued before this command was sent.
        let lag = self
            .pushes_enqueued
            .load(Ordering::Acquire)
            .saturating_sub(seq.saturating_add(1));
        let degraded = self.deadline_chunks.is_some_and(|d| lag > d);
        self.scratch.clear();
        slot.session.push_events_shared(
            &self.engine,
            chunk,
            !degraded,
            &mut self.dsp_scratch,
            &mut self.scratch,
        );
        self.clock_samples += chunk.len() as u64;
        slot.last_active = self.clock_samples;
        slot.samples_in += chunk.len() as u64;
        self.metrics.pushes.inc();
        if degraded {
            self.metrics.pushes_degraded.inc();
        }
        self.metrics.events.add(self.scratch.len() as u64);
        let emitted = self.scratch.len();
        for segment in self.scratch.drain(..) {
            let _ = self.events.send(ServeEvent::Segment { session: SessionId(id), segment });
        }
        let wall_us = (timer.elapsed_ms() * 1_000.0) as u64;
        self.metrics.push_latency_us.observe(wall_us);
        let span_name = if degraded { "push_degraded" } else { "push" };
        self.record_flight(id, req, span_name, EventKind::Span, wall_us, emitted as f64);
        if degraded && !self.was_degraded {
            // Rising edge of deadline degradation: dump the recent context
            // that led into the backlog, once per degradation episode.
            self.dump_flight(FlightReason::DeadlineDegradation);
        }
        self.was_degraded = degraded;
        if echowrite_trace::enabled() {
            // Span over the push's whole queue+process latency, tagged with
            // the wire correlation id so it stitches against the client
            // trace; the lag counter exposes the backlog behind degraded
            // decisions.
            echowrite_trace::span_detailed(
                Stage::Serve,
                span_name,
                self.tick_us(),
                wall_us,
                emitted as f64,
                if req == 0 {
                    SmallStr::empty()
                } else {
                    SmallStr::from_display(format_args!("req {req}"))
                },
            );
            echowrite_trace::counter(Stage::Serve, "backlog_chunks", self.tick_us(), lag as f64);
        }
    }

    fn handle_finish(&mut self, id: u64, req: u64) {
        // Like the push path: a finish for a suspended session thaws it
        // first so the tail segments flush instead of being orphaned.
        if !self.sessions.contains_key(&id) && !self.thaw(id, true) {
            self.metrics.orphan_commands.inc();
            return;
        }
        let Some(mut slot) = self.sessions.remove(&id) else {
            self.metrics.orphan_commands.inc();
            return;
        };
        self.scratch.clear();
        slot.session.finish_events(&self.engine, true, &mut self.scratch);
        self.metrics.events.add(self.scratch.len() as u64);
        for segment in self.scratch.drain(..) {
            let _ = self.events.send(ServeEvent::Segment { session: SessionId(id), segment });
        }
        let _ = self.events.send(ServeEvent::Finished { session: SessionId(id) });
        self.pool.push(slot.session);
        self.admission.release();
        self.metrics.sessions_finished.inc();
        self.metrics.sessions_live.dec();
        self.record_flight(id, req, "session_finish", EventKind::Instant, 0, 0.0);
        if echowrite_trace::enabled() {
            echowrite_trace::instant(
                Stage::Serve,
                "session_finish",
                self.tick_us(),
                SmallStr::from_display(id),
            );
        }
    }

    /// Reclaims sessions whose last command is older than the idle
    /// timeout on this shard's sample clock.
    fn reap_idle(&mut self) {
        let Some(timeout) = self.idle_timeout_samples else {
            return;
        };
        let clock = self.clock_samples;
        let stale: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, slot)| clock.saturating_sub(slot.last_active) > timeout)
            .map(|(&id, _)| id)
            .collect();
        let suspend = self.reap_policy == ReapPolicy::SuspendToStore && self.store.is_some();
        for id in stale {
            if suspend {
                self.suspend_session(id);
                continue;
            }
            if let Some(slot) = self.sessions.remove(&id) {
                self.pool.push(slot.session);
                let _ = self.events.send(ServeEvent::Reaped { session: SessionId(id) });
                self.admission.release();
                self.metrics.sessions_reaped.inc();
                self.metrics.sessions_live.dec();
                self.churn_window += 1;
                self.record_flight(id, 0, "session_reaped", EventKind::Instant, 0, 0.0);
                if echowrite_trace::enabled() {
                    echowrite_trace::instant(
                        Stage::Serve,
                        "session_reaped",
                        self.tick_us(),
                        SmallStr::from_display(id),
                    );
                }
            }
        }
        if self.churn_threshold > 0 && self.churn_window >= self.churn_threshold {
            // Reap/thaw churn: sessions are thrashing in and out of the
            // store faster than the threshold allows — dump the context.
            self.dump_flight(FlightReason::ReapChurn);
        }
        self.churn_window = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echowrite::{EchoWriteConfig, Parallelism};

    fn manager(cfg: ServeConfig) -> SessionManager {
        let engine = EchoWrite::with_config(EchoWriteConfig::streaming());
        SessionManager::new(engine, cfg).expect("valid test config")
    }

    #[test]
    fn rejects_invalid_config() {
        let engine = EchoWrite::with_config(EchoWriteConfig::streaming());
        let bad = ServeConfig { shards: Parallelism::Threads(0), ..ServeConfig::default() };
        assert!(SessionManager::new(engine, bad).is_err());
    }

    #[test]
    fn open_push_finish_round_trip() {
        let m = manager(ServeConfig {
            shards: Parallelism::Threads(2),
            ..ServeConfig::default()
        });
        let id = SessionId(42);
        assert_eq!(m.open(id), SubmitVerdict::Enqueued);
        assert_eq!(m.push(id, &vec![0.0; 44_100]), SubmitVerdict::Enqueued);
        assert_eq!(m.finish(id), SubmitVerdict::Enqueued);
        m.quiesce();
        let mut events = Vec::new();
        m.try_events(&mut events);
        assert!(
            matches!(events.last(), Some(ServeEvent::Finished { session }) if *session == id),
            "expected Finished, got {events:?}"
        );
        let snap = m.shutdown().metrics;
        assert_eq!(snap.sessions_opened, 1);
        assert_eq!(snap.sessions_finished, 1);
        assert_eq!(snap.sessions_live, 0);
        assert_eq!(snap.pushes, 1);
        assert_eq!(snap.push_latency_count, 1);
    }

    #[test]
    fn admission_sheds_past_high_water() {
        let m = manager(ServeConfig {
            shards: Parallelism::Threads(1),
            max_sessions: 4,
            high_water: 2,
            ..ServeConfig::default()
        });
        assert_eq!(m.open(SessionId(1)), SubmitVerdict::Enqueued);
        assert_eq!(m.open(SessionId(2)), SubmitVerdict::Enqueued);
        assert_eq!(m.open(SessionId(3)), SubmitVerdict::Shedding);
        assert!(m.is_shedding());
        m.quiesce();
        assert_eq!(m.finish(SessionId(1)), SubmitVerdict::Enqueued);
        m.quiesce();
        // Hysteresis: low water for high_water=2 is 1, and 1 ≤ 1 clears it.
        assert_eq!(m.open(SessionId(3)), SubmitVerdict::Enqueued);
        assert_eq!(m.metrics().sessions_shed.get(), 1);
    }

    #[test]
    fn full_queue_returns_queue_full_not_block() {
        let m = manager(ServeConfig {
            shards: Parallelism::Threads(1),
            queue_capacity: 2,
            ..ServeConfig::default()
        });
        let id = SessionId(5);
        let _ = m.open(id);
        // Saturate the queue with a burst; at least one verdict must be
        // QueueFull (the worker cannot drain a 0.5 s chunk instantly).
        let chunk = vec![0.0; 22_050];
        let mut saw_full = false;
        for _ in 0..64 {
            match m.push(id, &chunk) {
                SubmitVerdict::QueueFull { retry_after_chunks } => {
                    assert!(retry_after_chunks >= 1);
                    saw_full = true;
                    break;
                }
                SubmitVerdict::Enqueued => {}
                SubmitVerdict::Shedding => panic!("push must not shed"),
            }
        }
        assert!(saw_full, "a capacity-2 queue must report QueueFull under a burst");
        assert!(m.metrics().queue_full.get() >= 1);
        m.quiesce();
    }

    #[test]
    fn orphan_commands_are_counted_not_fatal() {
        let m = manager(ServeConfig {
            shards: Parallelism::Threads(1),
            ..ServeConfig::default()
        });
        let _ = m.push(SessionId(99), &[0.0; 1024]);
        let _ = m.finish(SessionId(99));
        m.quiesce();
        assert_eq!(m.metrics().orphan_commands.get(), 2);
    }

    #[test]
    fn idle_reaper_reclaims_abandoned_sessions() {
        let m = manager(ServeConfig {
            shards: Parallelism::Threads(1),
            idle_timeout_samples: Some(10_000),
            ..ServeConfig::default()
        });
        let idle = SessionId(1);
        let busy = SessionId(2);
        let _ = m.open(idle);
        let _ = m.open(busy);
        let _ = m.push(idle, &[0.0; 1024]);
        // Push enough traffic through `busy` to trip a reap scan and age
        // `idle` past the timeout on the shard's sample clock.
        for _ in 0..(REAP_SCAN_EVERY + 8) {
            let _ = m.push(busy, &[0.0; 1024]);
            m.quiesce();
        }
        let mut events = Vec::new();
        m.try_events(&mut events);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, ServeEvent::Reaped { session } if *session == idle)),
            "idle session must be reaped; events: {events:?}"
        );
        assert_eq!(m.metrics().sessions_reaped.get(), 1);
        assert_eq!(m.live_sessions(), 1, "busy session must survive");
    }

    #[test]
    fn reopen_of_live_id_is_idempotent() {
        let m = manager(ServeConfig {
            shards: Parallelism::Threads(1),
            ..ServeConfig::default()
        });
        let id = SessionId(8);
        let _ = m.open(id);
        let _ = m.push(id, &[0.0; 4096]);
        let _ = m.open(id); // duplicate open: a retry, not a restart
        m.quiesce();
        assert_eq!(m.live_sessions(), 1, "re-open must not leak an admission slot");
        assert_eq!(m.metrics().sessions_reopened.get(), 1);
        assert_eq!(m.metrics().sessions_opened.get(), 1, "a re-open is not a fresh open");
        let _ = m.finish(id);
        m.quiesce();
        assert_eq!(m.live_sessions(), 0);
    }

    /// Satellite regression (duplicate-`Open` semantics): a client that
    /// retries an `Open` after losing the ack must keep its in-flight
    /// recognition state — the transcript after `push → re-open → push →
    /// finish` must equal one continuous session's, bitwise.
    #[test]
    fn reopen_after_lost_ack_keeps_inflight_state() {
        use echowrite::StreamingRecognizer;
        // A deterministic non-silent signal long enough to freeze the
        // background and segment at least the session lead-in state.
        let audio: Vec<f64> = (0..6 * 4096)
            .map(|i| (f64::from(i as u32) * 0.013).sin() * 0.02)
            .collect();
        let (a, b) = audio.split_at(audio.len() / 2);

        // Oracle: one continuous recognizer over both halves.
        let engine = EchoWrite::with_config(EchoWriteConfig::streaming());
        let mut rec = StreamingRecognizer::new(&engine);
        let mut oracle: Vec<(usize, usize)> = Vec::new();
        for ev in rec.push(a) {
            oracle.push((ev.start_frame, ev.end_frame));
        }
        for ev in rec.push(b) {
            oracle.push((ev.start_frame, ev.end_frame));
        }
        for ev in rec.finish() {
            oracle.push((ev.start_frame, ev.end_frame));
        }

        let m = manager(ServeConfig {
            shards: Parallelism::Threads(1),
            ..ServeConfig::default()
        });
        let id = SessionId(3);
        assert_eq!(m.open(id), SubmitVerdict::Enqueued);
        assert_eq!(m.push(id, a), SubmitVerdict::Enqueued);
        // The ack was "lost": the client re-opens, then resumes pushing.
        assert_eq!(m.open(id), SubmitVerdict::Enqueued);
        assert_eq!(m.push(id, b), SubmitVerdict::Enqueued);
        assert_eq!(m.finish(id), SubmitVerdict::Enqueued);
        m.quiesce();
        let mut events = Vec::new();
        m.try_events(&mut events);
        let got: Vec<(usize, usize)> = events
            .iter()
            .filter_map(|e| match e {
                ServeEvent::Segment { segment, .. } => {
                    Some((segment.start_frame, segment.end_frame))
                }
                _ => None,
            })
            .collect();
        assert_eq!(got, oracle, "re-open wiped in-flight session state");
        assert_eq!(m.metrics().sessions_reopened.get(), 1);
    }

    /// Satellite regression (push `seq` race): submitters racing on one
    /// shard must never stamp two pushes with the same sequence number —
    /// a load-then-increment let both read the counter before either
    /// published, skewing the backlog lag the deadline policy degrades on.
    #[test]
    fn concurrent_pushes_reserve_unique_seqs_per_shard() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 64;
        let m = manager(ServeConfig {
            shards: Parallelism::Threads(1),
            // Deep enough that no push is rejected: the undo path is not
            // under test here, uniqueness of accepted reservations is.
            queue_capacity: THREADS * PER_THREAD + 8,
            ..ServeConfig::default()
        });
        let id = SessionId(1);
        assert_eq!(m.open(id), SubmitVerdict::Enqueued);
        m.quiesce();
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..PER_THREAD {
                        assert_eq!(m.push(id, &[0.0; 16]), SubmitVerdict::Enqueued);
                    }
                });
            }
        });
        m.quiesce();
        let mut seqs: Vec<u64> =
            m.shards[0].seq_log.lock().unwrap_or_else(|e| e.into_inner()).clone();
        seqs.sort_unstable();
        let want: Vec<u64> = (0..(THREADS * PER_THREAD) as u64).collect();
        assert_eq!(seqs, want, "duplicate or skipped push seqs on the shard");
    }

    /// Satellite regression (lossless shutdown): a caller that finishes a
    /// session and never polls `try_events` must still receive every
    /// `Segment` and `Finished` event from `shutdown()`.
    #[test]
    fn shutdown_returns_undrained_events() {
        let audio: Vec<f64> = (0..6 * 4096)
            .map(|i| (f64::from(i as u32) * 0.013).sin() * 0.02)
            .collect();
        let m = manager(ServeConfig {
            shards: Parallelism::Threads(2),
            ..ServeConfig::default()
        });
        let id = SessionId(11);
        assert_eq!(m.open(id), SubmitVerdict::Enqueued);
        assert_eq!(m.push(id, &audio), SubmitVerdict::Enqueued);
        assert_eq!(m.finish(id), SubmitVerdict::Enqueued);
        // Deliberately no try_events: everything must survive shutdown.
        let report = m.shutdown();
        assert!(
            report
                .events
                .iter()
                .any(|e| matches!(e, ServeEvent::Finished { session } if *session == id)),
            "Finished event lost across shutdown: {:?}",
            report.events
        );
        let emitted = report
            .events
            .iter()
            .filter(|e| matches!(e, ServeEvent::Segment { .. }))
            .count() as u64;
        assert_eq!(
            emitted, report.metrics.events,
            "every counted segment event must be returned by shutdown"
        );
    }

    /// `detach_events` hands the tail to the stream owner: `try_events`
    /// goes quiet, the blocking stream sees every event, and it
    /// disconnects (returns `None`) once the manager is gone.
    #[test]
    fn detached_event_stream_outlives_the_manager() {
        let m = manager(ServeConfig {
            shards: Parallelism::Threads(1),
            ..ServeConfig::default()
        });
        let stream = m.detach_events().expect("first detach succeeds");
        assert!(m.detach_events().is_none(), "second detach must fail");
        let id = SessionId(2);
        let _ = m.open(id);
        let _ = m.push(id, &[0.0; 4096]);
        let _ = m.finish(id);
        m.quiesce();
        let mut drained = Vec::new();
        assert_eq!(m.try_events(&mut drained), 0, "detached manager yields no events");
        let report = m.shutdown();
        assert!(report.events.is_empty(), "detached manager reports no residual events");
        // The stream still delivers the whole tail, then disconnects.
        let mut finished = false;
        while let Some(ev) = stream.recv() {
            if matches!(ev, ServeEvent::Finished { session } if session == id) {
                finished = true;
            }
        }
        assert!(finished, "detached stream must deliver the Finished event");
    }

    // ---- suspend/resume (echowrite-snapshot integration) ----

    use echowrite::StreamingRecognizer;
    use echowrite_gesture::{Stroke, Writer, WriterParams};
    use echowrite_snapshot::MemoryStore;
    use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};

    /// A transcript row, DTW score bits included.
    type Row = (usize, usize, Stroke, [f64; 6], [f64; 6]);

    /// The cheap down-converted engine the wire tests also serve with.
    fn snap_engine() -> EchoWrite {
        EchoWrite::with_config(echowrite::EchoWriteConfig::streaming_downsampled(32))
    }

    fn render(strokes: &[Stroke], seed: u64, tail: f64) -> Vec<f64> {
        let perf = Writer::new(WriterParams::nominal(), seed).write_sequence(strokes);
        let mut traj = perf.trajectory;
        if tail > 0.0 {
            let last = *traj.points().last().expect("non-empty trajectory");
            traj.hold(last, tail);
        }
        Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), seed).render(&traj)
    }

    /// Oracle: one uninterrupted recognizer over `parts` in order.
    fn oracle_rows(engine: &EchoWrite, parts: &[&[f64]]) -> Vec<Row> {
        let mut rec = StreamingRecognizer::new(engine);
        let mut rows = Vec::new();
        for part in parts {
            for ev in rec.push(part) {
                rows.push((
                    ev.start_frame,
                    ev.end_frame,
                    ev.classification.stroke,
                    ev.classification.distances,
                    ev.classification.scores,
                ));
            }
        }
        for ev in rec.finish() {
            rows.push((
                ev.start_frame,
                ev.end_frame,
                ev.classification.stroke,
                ev.classification.distances,
                ev.classification.scores,
            ));
        }
        rows
    }

    fn rows_of(events: &[ServeEvent], id: SessionId) -> Vec<Row> {
        events
            .iter()
            .filter_map(|e| match e {
                ServeEvent::Segment { session, segment } if *session == id => {
                    let c = segment.classification.as_ref().expect("classified segment");
                    Some((segment.start_frame, segment.end_frame, c.stroke, c.distances, c.scores))
                }
                _ => None,
            })
            .collect()
    }

    /// Ages `idle` past the reap timeout by pushing silence through `busy`
    /// on the same (single) shard until the reaper has scanned.
    fn age_past_reap(m: &SessionManager, busy: SessionId) {
        for _ in 0..(REAP_SCAN_EVERY + 8) {
            assert_eq!(m.push(busy, &[0.0; 1024]), SubmitVerdict::Enqueued);
            m.quiesce();
        }
    }

    /// Satellite regression (reaper/late-push race, `Drop` policy): a push
    /// that loses the race against the reaper lands on a dead id and must
    /// be counted as an orphan, not crash or resurrect state.
    #[test]
    fn drop_policy_counts_late_push_as_orphan() {
        let m = manager(ServeConfig {
            shards: Parallelism::Threads(1),
            idle_timeout_samples: Some(10_000),
            ..ServeConfig::default()
        });
        let idle = SessionId(1);
        let busy = SessionId(2);
        let _ = m.open(idle);
        let _ = m.open(busy);
        let _ = m.push(idle, &[0.0; 1024]);
        age_past_reap(&m, busy);
        assert_eq!(m.metrics().sessions_reaped.get(), 1);
        // The late push arrives after the reap: orphaned under Drop.
        let _ = m.push(idle, &[0.0; 1024]);
        m.quiesce();
        assert_eq!(m.metrics().orphan_commands.get(), 1);
        assert_eq!(m.metrics().sessions_resumed.get(), 0);
    }

    /// Tentpole: under `SuspendToStore` the same race thaws the session
    /// instead — zero orphans, and the resumed transcript is bitwise
    /// identical (frames, stroke, DTW distance and score bits) to a
    /// session that was never suspended.
    #[test]
    fn suspend_policy_thaws_late_push_bitwise() {
        let engine = snap_engine();
        let audio = render(&[Stroke::S2, Stroke::S5], 11, 1.2);
        let (a, b) = audio.split_at(audio.len() / 2);
        let oracle = oracle_rows(&engine, &[a, b]);
        assert!(!oracle.is_empty(), "test audio must produce segments");

        let store = Arc::new(MemoryStore::new());
        let m = SessionManager::with_snapshot_store(
            engine,
            ServeConfig {
                shards: Parallelism::Threads(1),
                idle_timeout_samples: Some(10_000),
                reap_policy: ReapPolicy::SuspendToStore,
                ..ServeConfig::default()
            },
            store.clone(),
        )
        .expect("valid suspend config");
        let id = SessionId(1);
        let busy = SessionId(2);
        let _ = m.open(id);
        let _ = m.open(busy);
        assert_eq!(m.push(id, a), SubmitVerdict::Enqueued);
        age_past_reap(&m, busy);
        m.quiesce();
        assert_eq!(m.metrics().sessions_suspended.get(), 1, "idle session must suspend");
        assert!(store.contains(id.0).expect("store read"), "snapshot parked in the store");
        assert_eq!(m.metrics().sessions_reaped.get(), 0, "suspend is not a reap");
        // The late push thaws the session transparently.
        assert_eq!(m.push(id, b), SubmitVerdict::Enqueued);
        assert_eq!(m.finish(id), SubmitVerdict::Enqueued);
        m.quiesce();
        let mut events = Vec::new();
        m.try_events(&mut events);
        assert_eq!(rows_of(&events, id), oracle, "resumed transcript must be bitwise");
        assert_eq!(m.metrics().orphan_commands.get(), 0);
        assert_eq!(m.metrics().sessions_resumed.get(), 1);
        assert!(!store.contains(id.0).expect("store read"), "thaw consumes the snapshot");
        let _ = m.finish(busy);
        m.quiesce();
        assert_eq!(m.live_sessions(), 0, "admission accounting balanced across suspend/thaw");
    }

    /// Tentpole: `export_session`/`import_session` migrate a mid-word
    /// session across managers (processes, in production) bitwise.
    #[test]
    fn export_import_migrates_mid_word_bitwise() {
        let audio = render(&[Stroke::S3, Stroke::S6], 31, 1.0);
        let (a, b) = audio.split_at(audio.len() / 2);
        let oracle = oracle_rows(&snap_engine(), &[a, b]);
        assert!(!oracle.is_empty(), "test audio must produce segments");

        let cfg = ServeConfig { shards: Parallelism::Threads(2), ..ServeConfig::default() };
        let src = SessionManager::new(snap_engine(), cfg.clone()).expect("src manager");
        let id = SessionId(77);
        let _ = src.open(id);
        assert_eq!(src.push(id, a), SubmitVerdict::Enqueued);
        let bytes = src.export_session(id).expect("live session exports");
        assert_eq!(src.live_sessions(), 0, "export releases the session");
        assert!(src.export_session(id).is_none(), "second export finds nothing");
        let mut events = Vec::new();
        src.try_events(&mut events);
        let head = rows_of(&events, id);
        drop(src.shutdown());

        let dst = SessionManager::new(snap_engine(), cfg).expect("dst manager");
        assert!(!dst.import_session(id, b"garbage".to_vec()), "garbage must not import");
        assert!(dst.import_session(id, bytes.clone()), "exported bytes import");
        assert!(!dst.import_session(id, bytes), "double import of a live id refused");
        assert_eq!(dst.push(id, b), SubmitVerdict::Enqueued);
        assert_eq!(dst.finish(id), SubmitVerdict::Enqueued);
        dst.quiesce();
        let mut tail_events = Vec::new();
        dst.try_events(&mut tail_events);
        let mut got = head;
        got.extend(rows_of(&tail_events, id));
        assert_eq!(got, oracle, "migrated transcript must be bitwise");
        assert_eq!(dst.live_sessions(), 0);
    }

    /// Tentpole: `shutdown_to_store` drains live sessions into the store;
    /// a fresh manager over the same store thaws them on the next push and
    /// the client finishes its word bitwise.
    #[test]
    fn shutdown_to_store_survives_manager_restart() {
        let audio = render(&[Stroke::S1, Stroke::S2], 47, 1.1);
        let (a, b) = audio.split_at(audio.len() / 2);
        let oracle = oracle_rows(&snap_engine(), &[a, b]);
        assert!(!oracle.is_empty(), "test audio must produce segments");

        let store = Arc::new(MemoryStore::new());
        let cfg = ServeConfig { shards: Parallelism::Threads(2), ..ServeConfig::default() };
        let id = SessionId(9);
        let first =
            SessionManager::with_snapshot_store(snap_engine(), cfg.clone(), store.clone())
                .expect("first manager");
        let _ = first.open(id);
        assert_eq!(first.push(id, a), SubmitVerdict::Enqueued);
        first.quiesce();
        let mut events = Vec::new();
        first.try_events(&mut events);
        let head = rows_of(&events, id);
        let report = first.shutdown_to_store();
        assert_eq!(report.metrics.sessions_suspended, 1, "drain suspends the live session");
        assert_eq!(store.sessions().expect("store list"), vec![id.0]);

        let second = SessionManager::with_snapshot_store(snap_engine(), cfg, store.clone())
            .expect("second manager");
        // No re-open: the bare push must thaw the drained session.
        assert_eq!(second.push(id, b), SubmitVerdict::Enqueued);
        assert_eq!(second.finish(id), SubmitVerdict::Enqueued);
        second.quiesce();
        let mut tail_events = Vec::new();
        second.try_events(&mut tail_events);
        let mut got = head;
        got.extend(rows_of(&tail_events, id));
        assert_eq!(got, oracle, "restart transcript must be bitwise");
        assert_eq!(second.metrics().sessions_resumed.get(), 1);
        assert_eq!(second.metrics().orphan_commands.get(), 0);
        assert_eq!(second.live_sessions(), 0);
    }

    /// `SuspendToStore` without a store is a construction error, not a
    /// silent fallback.
    #[test]
    fn suspend_policy_requires_a_store() {
        let cfg =
            ServeConfig { reap_policy: ReapPolicy::SuspendToStore, ..ServeConfig::default() };
        assert!(SessionManager::new(snap_engine(), cfg).is_err());
    }
}
