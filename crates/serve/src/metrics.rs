//! Lock-free serving metrics: counters, gauges, and a fixed-bucket
//! latency histogram, all plain atomics so the ingress path and the shard
//! workers never contend on a lock to record an observation.
//!
//! This module is the serving layer's *only* sanctioned wall-clock
//! quarantine, mirroring `crates/profile::timing`: the uptime gauge below
//! reads `std::time::Instant` behind reasoned `echolint: allow` markers.
//! Everything that can influence a recognition result — queue order,
//! deadlines, the idle reaper — runs on logical clocks (enqueue sequence
//! numbers and pushed-sample counts) and never touches this clock.

use std::sync::atomic::{AtomicU64, Ordering};
// echolint: allow(determinism) -- metrics-only uptime clock, quarantined like crates/profile::timing; never feeds recognition results
use std::time::Instant;

/// Upper bounds (µs) of the push-latency histogram buckets; observations
/// above the last bound land in the implicit overflow bucket.
pub const LATENCY_BUCKETS_US: [u64; 12] =
    [50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000];

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that moves both ways (stored non-negative; `dec` saturates at
/// zero rather than wrapping, so a racy transient can never explode the
/// reported depth).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one, saturating at zero.
    pub fn dec(&self) {
        let _ = self.0.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(1))
        });
    }

    /// Sets the value outright.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram (cumulative-bucket semantics at snapshot time,
/// Prometheus style) over [`LATENCY_BUCKETS_US`] plus an overflow bucket.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Records one observation (µs).
    pub fn observe(&self, us: u64) {
        let idx = LATENCY_BUCKETS_US.iter().position(|&b| us <= b).unwrap_or(LATENCY_BUCKETS_US.len());
        if let Some(b) = self.buckets.get(idx) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (µs).
    pub fn sum_us(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (non-cumulative), overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Upper bound (µs) of the bucket containing the `q`-quantile
    /// observation, or `None` when empty. The overflow bucket reports
    /// `u64::MAX`. `q` is clamped to [0, 1].
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let rank = rank.max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(LATENCY_BUCKETS_US.get(i).copied().unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }
}

/// The serving layer's metric registry: one instance per
/// [`SessionManager`](crate::SessionManager), shared by the ingress path
/// and every shard worker.
#[derive(Debug)]
pub struct ServeMetrics {
    /// Sessions admitted and opened.
    pub sessions_opened: Counter,
    /// Sessions ended by an explicit finish.
    pub sessions_finished: Counter,
    /// Sessions reclaimed by the idle reaper.
    pub sessions_reaped: Counter,
    /// Open attempts rejected by the admission controller.
    pub sessions_shed: Counter,
    /// Sessions currently live across all shards.
    pub sessions_live: Gauge,
    /// Audio chunks processed by shard workers.
    pub pushes: Counter,
    /// Pushes degraded to segment-only output by a missed deadline.
    pub pushes_degraded: Counter,
    /// Submissions rejected because the shard queue was full.
    pub queue_full: Counter,
    /// Commands addressed to a session no shard knows (never opened, shed,
    /// already finished, or reaped).
    pub orphan_commands: Counter,
    /// Segment events emitted across all sessions.
    pub events: Counter,
    /// Commands currently sitting in shard queues.
    pub queue_depth: Gauge,
    /// End-to-end push latency (enqueue to processed), µs.
    pub push_latency_us: Histogram,
    started: Instant,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Creates a zeroed registry.
    pub fn new() -> Self {
        ServeMetrics {
            sessions_opened: Counter::default(),
            sessions_finished: Counter::default(),
            sessions_reaped: Counter::default(),
            sessions_shed: Counter::default(),
            sessions_live: Gauge::default(),
            pushes: Counter::default(),
            pushes_degraded: Counter::default(),
            queue_full: Counter::default(),
            orphan_commands: Counter::default(),
            events: Counter::default(),
            queue_depth: Gauge::default(),
            push_latency_us: Histogram::default(),
            // echolint: allow(determinism) -- observability-only uptime stamp; nothing downstream branches on it
            started: Instant::now(),
        }
    }

    /// Seconds since the registry was created (wall clock; observability
    /// only).
    pub fn uptime_seconds(&self) -> f64 {
        // echolint: allow(determinism) -- observability-only uptime read, quarantined in this module
        self.started.elapsed().as_secs_f64()
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            sessions_opened: self.sessions_opened.get(),
            sessions_finished: self.sessions_finished.get(),
            sessions_reaped: self.sessions_reaped.get(),
            sessions_shed: self.sessions_shed.get(),
            sessions_live: self.sessions_live.get(),
            pushes: self.pushes.get(),
            pushes_degraded: self.pushes_degraded.get(),
            queue_full: self.queue_full.get(),
            orphan_commands: self.orphan_commands.get(),
            events: self.events.get(),
            queue_depth: self.queue_depth.get(),
            push_latency_count: self.push_latency_us.count(),
            push_latency_sum_us: self.push_latency_us.sum_us(),
            push_latency_buckets: self.push_latency_us.bucket_counts(),
            push_latency_p99_us: self.push_latency_us.quantile_upper_bound(0.99),
            uptime_seconds: self.uptime_seconds(),
        }
    }

    /// Prometheus-style text exposition of the whole registry.
    pub fn to_prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }
}

/// A point-in-time copy of [`ServeMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Sessions admitted and opened.
    pub sessions_opened: u64,
    /// Sessions ended by an explicit finish.
    pub sessions_finished: u64,
    /// Sessions reclaimed by the idle reaper.
    pub sessions_reaped: u64,
    /// Open attempts rejected by the admission controller.
    pub sessions_shed: u64,
    /// Sessions currently live across all shards.
    pub sessions_live: u64,
    /// Audio chunks processed by shard workers.
    pub pushes: u64,
    /// Pushes degraded to segment-only output by a missed deadline.
    pub pushes_degraded: u64,
    /// Submissions rejected because the shard queue was full.
    pub queue_full: u64,
    /// Commands addressed to a session no shard knows.
    pub orphan_commands: u64,
    /// Segment events emitted across all sessions.
    pub events: u64,
    /// Commands currently sitting in shard queues.
    pub queue_depth: u64,
    /// Push-latency observation count.
    pub push_latency_count: u64,
    /// Push-latency sum, µs.
    pub push_latency_sum_us: u64,
    /// Push-latency per-bucket counts (non-cumulative, overflow last).
    pub push_latency_buckets: Vec<u64>,
    /// Upper bound (µs) of the bucket holding the p99 push latency.
    pub push_latency_p99_us: Option<u64>,
    /// Seconds since the registry was created.
    pub uptime_seconds: f64,
}

impl MetricsSnapshot {
    /// Prometheus-style text exposition: `# TYPE` lines, counters/gauges,
    /// and the latency histogram with cumulative `le` buckets.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let counters: [(&str, u64); 9] = [
            ("echowrite_serve_sessions_opened_total", self.sessions_opened),
            ("echowrite_serve_sessions_finished_total", self.sessions_finished),
            ("echowrite_serve_sessions_reaped_total", self.sessions_reaped),
            ("echowrite_serve_sessions_shed_total", self.sessions_shed),
            ("echowrite_serve_pushes_total", self.pushes),
            ("echowrite_serve_pushes_degraded_total", self.pushes_degraded),
            ("echowrite_serve_queue_full_total", self.queue_full),
            ("echowrite_serve_orphan_commands_total", self.orphan_commands),
            ("echowrite_serve_events_total", self.events),
        ];
        for (name, v) in counters {
            let _ = writeln!(s, "# TYPE {name} counter");
            let _ = writeln!(s, "{name} {v}");
        }
        let gauges: [(&str, u64); 2] = [
            ("echowrite_serve_sessions_live", self.sessions_live),
            ("echowrite_serve_queue_depth", self.queue_depth),
        ];
        for (name, v) in gauges {
            let _ = writeln!(s, "# TYPE {name} gauge");
            let _ = writeln!(s, "{name} {v}");
        }
        let _ = writeln!(s, "# TYPE echowrite_serve_uptime_seconds gauge");
        let _ = writeln!(s, "echowrite_serve_uptime_seconds {:.3}", self.uptime_seconds);
        let _ = writeln!(s, "# TYPE echowrite_serve_push_latency_us histogram");
        let mut cumulative = 0u64;
        for (i, n) in self.push_latency_buckets.iter().enumerate() {
            cumulative += n;
            match LATENCY_BUCKETS_US.get(i) {
                Some(le) => {
                    let _ = writeln!(
                        s,
                        "echowrite_serve_push_latency_us_bucket{{le=\"{le}\"}} {cumulative}"
                    );
                }
                None => {
                    let _ = writeln!(
                        s,
                        "echowrite_serve_push_latency_us_bucket{{le=\"+Inf\"}} {cumulative}"
                    );
                }
            }
        }
        let _ = writeln!(s, "echowrite_serve_push_latency_us_sum {}", self.push_latency_sum_us);
        let _ = writeln!(s, "echowrite_serve_push_latency_us_count {}", self.push_latency_count);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.dec();
        g.dec(); // saturates, no wrap
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_buckets_and_p99() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.observe(40); // first bucket (le 50)
        }
        h.observe(200_000); // second-to-last bucket
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_upper_bound(0.5), Some(50));
        assert_eq!(h.quantile_upper_bound(0.99), Some(50));
        assert_eq!(h.quantile_upper_bound(1.0), Some(250_000));
        let h2 = Histogram::default();
        assert_eq!(h2.quantile_upper_bound(0.99), None);
        h2.observe(u64::MAX); // overflow bucket
        assert_eq!(h2.quantile_upper_bound(0.99), Some(u64::MAX));
    }

    #[test]
    fn prometheus_dump_has_every_family() {
        let m = ServeMetrics::new();
        m.pushes.inc();
        m.push_latency_us.observe(123);
        m.queue_depth.set(7);
        let text = m.to_prometheus();
        for family in [
            "echowrite_serve_sessions_opened_total",
            "echowrite_serve_sessions_shed_total",
            "echowrite_serve_pushes_total 1",
            "echowrite_serve_queue_depth 7",
            "echowrite_serve_push_latency_us_bucket{le=\"250\"} 1",
            "echowrite_serve_push_latency_us_bucket{le=\"+Inf\"} 1",
            "echowrite_serve_push_latency_us_count 1",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }

    #[test]
    fn snapshot_reflects_registry() {
        let m = ServeMetrics::new();
        m.sessions_opened.add(3);
        m.sessions_live.set(2);
        m.push_latency_us.observe(60);
        let snap = m.snapshot();
        assert_eq!(snap.sessions_opened, 3);
        assert_eq!(snap.sessions_live, 2);
        assert_eq!(snap.push_latency_count, 1);
        assert_eq!(snap.push_latency_p99_us, Some(100));
        assert!(snap.uptime_seconds >= 0.0);
    }
}
