//! Bad fixture: NaN-sensitive float ordering.

fn rank(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

fn peak(a: f64, b: f64) -> f64 {
    f64::max(a, b)
}
