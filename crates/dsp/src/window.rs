//! Analysis window functions.
//!
//! EchoWrite frames its 44.1 kHz echo stream with a Hanning (Hann) window
//! before each 8192-point FFT (paper Sec. III-A). Other common windows are
//! provided for experimentation and ablation benches.

/// The supported analysis window shapes.
///
/// # Example
///
/// ```
/// use echowrite_dsp::WindowKind;
/// let w = WindowKind::Hann.coefficients(8);
/// assert_eq!(w.len(), 8);
/// assert!(w[0] < 1e-12); // Hann tapers to zero at the edges
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WindowKind {
    /// Hann (a.k.a. Hanning) window — the paper's choice.
    #[default]
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window.
    Blackman,
    /// Rectangular (no-op) window.
    Rectangular,
}

impl WindowKind {
    /// Returns the symmetric window coefficients of length `n`.
    ///
    /// A length of 0 returns an empty vector; a length of 1 returns `[1.0]`.
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let m = (n - 1) as f64;
        (0..n)
            .map(|i| {
                let x = i as f64 / m;
                match self {
                    WindowKind::Hann => 0.5 - 0.5 * (2.0 * std::f64::consts::PI * x).cos(),
                    WindowKind::Hamming => 0.54 - 0.46 * (2.0 * std::f64::consts::PI * x).cos(),
                    WindowKind::Blackman => {
                        0.42 - 0.5 * (2.0 * std::f64::consts::PI * x).cos()
                            + 0.08 * (4.0 * std::f64::consts::PI * x).cos()
                    }
                    WindowKind::Rectangular => 1.0,
                }
            })
            .collect()
    }

    /// Returns the coherent gain (mean coefficient) of the window, used to
    /// compensate amplitude estimates.
    pub fn coherent_gain(self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.coefficients(n).iter().sum::<f64>() / n as f64
    }
}

/// Multiplies `signal` by the window in place.
///
/// # Panics
///
/// Panics if `signal.len() != window.len()`.
pub fn apply(signal: &mut [f64], window: &[f64]) {
    assert_eq!(
        signal.len(),
        window.len(),
        "signal length {} does not match window length {}",
        signal.len(),
        window.len()
    );
    for (s, w) in signal.iter_mut().zip(window) {
        *s *= w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_lengths() {
        for kind in [
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
            WindowKind::Rectangular,
        ] {
            assert!(kind.coefficients(0).is_empty());
            assert_eq!(kind.coefficients(1), vec![1.0]);
        }
    }

    #[test]
    fn hann_endpoints_and_peak() {
        let w = WindowKind::Hann.coefficients(9);
        assert!(w[0].abs() < 1e-12);
        assert!(w[8].abs() < 1e-12);
        assert!((w[4] - 1.0).abs() < 1e-12); // symmetric peak at centre
    }

    #[test]
    fn hamming_endpoints() {
        let w = WindowKind::Hamming.coefficients(11);
        assert!((w[0] - 0.08).abs() < 1e-12);
        assert!((w[10] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn blackman_endpoints_near_zero() {
        let w = WindowKind::Blackman.coefficients(7);
        assert!(w[0].abs() < 1e-10);
        assert!((w[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_windows_symmetric() {
        for kind in [WindowKind::Hann, WindowKind::Hamming, WindowKind::Blackman] {
            let w = kind.coefficients(64);
            for i in 0..32 {
                assert!(
                    (w[i] - w[63 - i]).abs() < 1e-12,
                    "{kind:?} asymmetric at {i}"
                );
            }
        }
    }

    #[test]
    fn rectangular_is_all_ones() {
        assert!(WindowKind::Rectangular
            .coefficients(16)
            .iter()
            .all(|&x| x == 1.0));
        assert_eq!(WindowKind::Rectangular.coherent_gain(16), 1.0);
    }

    #[test]
    fn hann_coherent_gain_near_half() {
        // For large N the Hann coherent gain approaches 0.5.
        let g = WindowKind::Hann.coherent_gain(4096);
        assert!((g - 0.5).abs() < 1e-3, "gain {g}");
    }

    #[test]
    fn apply_multiplies_elementwise() {
        let mut s = vec![2.0, 2.0, 2.0];
        apply(&mut s, &[0.0, 0.5, 1.0]);
        assert_eq!(s, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn apply_rejects_mismatched_lengths() {
        let mut s = vec![1.0; 4];
        apply(&mut s, &[1.0; 3]);
    }
}
