//! Loopback round-trips through a real [`WireServer`]: wire transcripts
//! must be bitwise identical to isolated in-process recognizers, the
//! idempotent re-open contract must hold across a lost-ack retry, shedding
//! verdicts must propagate to the socket, and malformed bytes must close
//! the connection and count.

use echowrite::{EchoWrite, EchoWriteConfig, Parallelism, StreamingRecognizer};
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_serve::{ServeConfig, SessionManager};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use echowrite_wire::{Request, Response, WireClient, WireServer};
use std::io::{Read, Write as _};
use std::sync::OnceLock;

/// The Android app's 5-frame push size at the 32× downsampled rate is
/// still 5 * 1024 input samples per push.
const CHUNK: usize = 5 * 1024;

/// A transcript row, scores compared bitwise.
type Row = (u64, u64, Stroke, [f64; 6]);

/// The down-converted serving engine (cheap enough for many sessions).
fn engine() -> &'static EchoWrite {
    static E: OnceLock<EchoWrite> = OnceLock::new();
    E.get_or_init(|| EchoWrite::with_config(EchoWriteConfig::streaming_downsampled(32)))
}

fn render(strokes: &[Stroke], seed: u64, tail: f64) -> Vec<f64> {
    let perf = Writer::new(WriterParams::nominal(), seed).write_sequence(strokes);
    let mut traj = perf.trajectory;
    if tail > 0.0 {
        let last = *traj.points().last().expect("non-empty trajectory");
        traj.hold(last, tail);
    }
    Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), seed).render(&traj)
}

/// Session audios plus their isolated-recognizer oracle transcripts.
fn sessions() -> &'static Vec<(Vec<f64>, Vec<Row>)> {
    static S: OnceLock<Vec<(Vec<f64>, Vec<Row>)>> = OnceLock::new();
    S.get_or_init(|| {
        let audios = [
            render(&[Stroke::S2, Stroke::S5], 11, 1.2),
            render(&[Stroke::S4], 23, 1.0),
            render(&[Stroke::S3, Stroke::S6], 31, 0.0),
            render(&[Stroke::S1, Stroke::S2], 47, 1.1),
        ];
        audios.into_iter().map(|audio| {
            let rows = oracle_rows(&audio);
            (audio, rows)
        }).collect()
    })
}

/// The in-process oracle: one isolated streaming recognizer over the
/// whole audio in CHUNK pushes.
fn oracle_rows(audio: &[f64]) -> Vec<Row> {
    let mut rec = StreamingRecognizer::new(engine());
    let mut rows = Vec::new();
    for chunk in audio.chunks(CHUNK) {
        for ev in rec.push(chunk) {
            rows.push((
                ev.start_frame as u64,
                ev.end_frame as u64,
                ev.classification.stroke,
                ev.classification.scores,
            ));
        }
    }
    for ev in rec.finish() {
        rows.push((
            ev.start_frame as u64,
            ev.end_frame as u64,
            ev.classification.stroke,
            ev.classification.scores,
        ));
    }
    rows
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        shards: Parallelism::Threads(2),
        queue_capacity: 256,
        deadline_chunks: None,
        idle_timeout_samples: None,
        ..ServeConfig::default()
    }
}

fn start_server() -> WireServer {
    let manager =
        SessionManager::new(engine().clone(), serve_config()).expect("valid serve config");
    WireServer::bind("127.0.0.1:0", manager).expect("loopback bind")
}

fn must_enqueue(client: &mut WireClient, req: &Request) {
    for _ in 0..1000 {
        match client.request(req).expect("verdict") {
            Response::Enqueued { .. } => return,
            Response::QueueFull { retry_after_chunks, .. } => {
                assert!(retry_after_chunks >= 1);
            }
            other => panic!("unexpected verdict {other:?}"),
        }
    }
    panic!("queue never drained");
}

/// Drives `sessions` ids over one client connection, round-robin by
/// chunk, and returns per-session transcripts built from wire events.
fn run_over_wire(client: &mut WireClient, ids: &[u64]) -> Vec<Vec<Row>> {
    for (&id, _) in ids.iter().zip(sessions()) {
        must_enqueue(client, &Request::Open { session: id });
    }
    let mut cursors = vec![0usize; ids.len()];
    let mut done = vec![false; ids.len()];
    while done.iter().any(|d| !d) {
        for (k, &id) in ids.iter().enumerate() {
            if done[k] {
                continue;
            }
            let audio = &sessions()[k].0;
            let pos = cursors[k];
            let end = (pos + CHUNK).min(audio.len());
            must_enqueue(
                client,
                &Request::Push { session: id, samples: audio[pos..end].to_vec() },
            );
            cursors[k] = end;
            if end == audio.len() {
                must_enqueue(client, &Request::Finish { session: id });
                done[k] = true;
            }
        }
    }

    let mut transcripts: Vec<Vec<Row>> = vec![Vec::new(); ids.len()];
    let mut finished = 0usize;
    while finished < ids.len() {
        match client.next_event().expect("event stream") {
            Response::Segment { session, start_frame, end_frame, classification } => {
                let k = ids.iter().position(|&id| id == session).expect("known session");
                let cls = classification.expect("no degradation configured");
                transcripts[k].push((start_frame, end_frame, cls.stroke, cls.scores));
            }
            Response::Finished { .. } => finished += 1,
            other => panic!("unexpected event {other:?}"),
        }
    }
    transcripts
}

/// Four sessions multiplexed over one connection: every wire transcript
/// must equal the isolated in-process recognizer bitwise.
#[test]
fn wire_transcripts_match_in_process_recognizers() {
    let server = start_server();
    let addr = server.local_addr();
    let mut client = WireClient::connect(addr).expect("loopback connect");
    let ids: Vec<u64> = vec![900, 901, 902, 903];
    let transcripts = run_over_wire(&mut client, &ids);
    for (k, got) in transcripts.iter().enumerate() {
        assert_eq!(got, &sessions()[k].1, "session {k}: wire transcript diverged");
    }
    drop(client);
    let report = server.shutdown();
    assert_eq!(report.metrics.sessions_finished, 4);
    assert!(report.metrics.wire_connections >= 1);
    assert!(report.metrics.wire_frames_read > 0);
    assert!(report.metrics.wire_frames_written > 0);
    assert_eq!(report.metrics.wire_malformed_frames, 0);
}

/// The lost-ack retry over the wire: a client that re-sends `Open` after
/// pushing (because it never saw the first ack) must keep the session's
/// in-flight DSP state — the final transcript still matches the
/// continuous oracle, and the re-open is counted.
#[test]
fn reopen_after_lost_ack_over_wire_keeps_state() {
    let server = start_server();
    let addr = server.local_addr();
    let mut client = WireClient::connect(addr).expect("loopback connect");
    let (audio, want) = &sessions()[0];
    let id = 77u64;

    must_enqueue(&mut client, &Request::Open { session: id });
    let half = (audio.len() / 2 / CHUNK) * CHUNK;
    for chunk in audio[..half].chunks(CHUNK) {
        must_enqueue(&mut client, &Request::Push { session: id, samples: chunk.to_vec() });
    }
    // The retry: the client never saw the first Open's ack and sends it
    // again. The server must treat it as a touch, not a reset.
    must_enqueue(&mut client, &Request::Open { session: id });
    for chunk in audio[half..].chunks(CHUNK) {
        must_enqueue(&mut client, &Request::Push { session: id, samples: chunk.to_vec() });
    }
    must_enqueue(&mut client, &Request::Finish { session: id });

    let mut rows: Vec<Row> = Vec::new();
    loop {
        match client.next_event().expect("event stream") {
            Response::Segment { session, start_frame, end_frame, classification } => {
                assert_eq!(session, id);
                let cls = classification.expect("no degradation configured");
                rows.push((start_frame, end_frame, cls.stroke, cls.scores));
            }
            Response::Finished { session } => {
                assert_eq!(session, id);
                break;
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
    assert_eq!(&rows, want, "re-open reset in-flight session state");
    drop(client);
    let report = server.shutdown();
    assert_eq!(report.metrics.sessions_reopened, 1);
    assert_eq!(report.metrics.sessions_opened, 1);
    assert_eq!(report.metrics.sessions_finished, 1);
}

/// Admission control propagates to the socket: opens past the session cap
/// come back as `Shedding` frames.
#[test]
fn shedding_verdict_propagates_over_wire() {
    let manager = SessionManager::new(
        engine().clone(),
        ServeConfig {
            shards: Parallelism::Threads(1),
            max_sessions: 2,
            high_water: 2,
            deadline_chunks: None,
            idle_timeout_samples: None,
            ..ServeConfig::default()
        },
    )
    .expect("valid serve config");
    let server = WireServer::bind("127.0.0.1:0", manager).expect("loopback bind");
    let mut client = WireClient::connect(server.local_addr()).expect("loopback connect");
    must_enqueue(&mut client, &Request::Open { session: 1 });
    must_enqueue(&mut client, &Request::Open { session: 2 });
    match client.request(&Request::Open { session: 3 }).expect("verdict") {
        Response::Shedding { session, .. } => assert_eq!(session, 3),
        other => panic!("expected Shedding, got {other:?}"),
    }
    drop(client);
    let report = server.shutdown();
    assert_eq!(report.metrics.sessions_shed, 1);
}

/// Wire trace correlation: every verdict echoes the client-assigned
/// request id, so client- and server-side traces stitch 1:1.
#[test]
fn verdicts_echo_client_assigned_request_ids() {
    let server = start_server();
    let mut client = WireClient::connect(server.local_addr()).expect("loopback connect");
    client.set_next_request_id(5_000);
    let sent = client.peek_next_request_id();
    let resp = client.request(&Request::Open { session: 31 }).expect("verdict");
    assert_eq!(resp.request_id(), Some(sent), "verdict must echo the request id");
    let resp = client
        .request_with_id(&Request::Push { session: 31, samples: vec![0.0; 64] }, 9_999)
        .expect("verdict");
    assert_eq!(resp.request_id(), Some(9_999));
    let resp = client.request(&Request::Finish { session: 31 }).expect("verdict");
    assert_eq!(resp.request_id(), Some(5_001), "auto ids advance by one per send");
    match client.next_event().expect("event stream") {
        Response::Finished { session } => {
            assert_eq!(session, 31);
        }
        other => panic!("unexpected event {other:?}"),
    }
    assert_eq!(
        Response::Finished { session: 31 }.request_id(),
        None,
        "event frames carry no request id"
    );
    drop(client);
    server.shutdown();
}

/// Garbage bytes close the connection and count as a malformed frame;
/// other connections keep working.
#[test]
fn malformed_bytes_close_only_their_connection() {
    let server = start_server();
    let addr = server.local_addr();

    let mut good = WireClient::connect(addr).expect("loopback connect");
    must_enqueue(&mut good, &Request::Open { session: 5 });

    let mut evil = std::net::TcpStream::connect(addr).expect("loopback connect");
    // A length prefix far past MAX_FRAME_LEN.
    evil.write_all(&u32::MAX.to_le_bytes()).expect("write garbage");
    evil.write_all(&[0u8; 16]).expect("write garbage");
    let mut sink = Vec::new();
    // The server closes the stream; read drains to EOF.
    let closed = evil.read_to_end(&mut sink);
    assert!(closed.map_or(true, |_| true));

    // The well-behaved connection is unaffected.
    must_enqueue(&mut good, &Request::Finish { session: 5 });
    match good.next_event().expect("event stream") {
        Response::Finished { session } => assert_eq!(session, 5),
        other => panic!("unexpected event {other:?}"),
    }
    drop(good);
    let report = server.shutdown();
    assert_eq!(report.metrics.wire_malformed_frames, 1);
    assert!(report.metrics.wire_connections >= 2);
}

/// Snapshot migration over the wire: a session exported mid-word from one
/// server imports into another (fresh manager, same engine config) and
/// finishes there with a transcript bitwise equal to the continuous
/// oracle — the `Export`/`Import` frames carry everything the session is.
#[test]
fn export_import_migrates_session_between_servers() {
    let (audio, want) = &sessions()[1];
    let id = 640u64;
    let half = (audio.len() / 2 / CHUNK) * CHUNK;

    let src = start_server();
    let mut src_client = WireClient::connect(src.local_addr()).expect("loopback connect");
    must_enqueue(&mut src_client, &Request::Open { session: id });
    for chunk in audio[..half].chunks(CHUNK) {
        must_enqueue(&mut src_client, &Request::Push { session: id, samples: chunk.to_vec() });
    }
    let snapshot = src_client.export(id).expect("export verdict").expect("live session");
    assert!(src_client.export(id).expect("export verdict").is_none(), "export removed it");
    // Events produced before the export still belong to the source server.
    let mut rows: Vec<Row> = Vec::new();
    while let Some(ev) = src_client.try_event() {
        if let Response::Segment { session, start_frame, end_frame, classification } = ev {
            assert_eq!(session, id);
            let cls = classification.expect("no degradation configured");
            rows.push((start_frame, end_frame, cls.stroke, cls.scores));
        }
    }
    drop(src_client);
    let src_report = src.shutdown();
    assert_eq!(src_report.metrics.sessions_live, 0, "export released the session");

    let dst = start_server();
    let mut dst_client = WireClient::connect(dst.local_addr()).expect("loopback connect");
    assert!(
        !dst_client.import(id, b"not a snapshot".to_vec()).expect("import verdict"),
        "garbage bytes must be refused"
    );
    assert!(dst_client.import(id, snapshot).expect("import verdict"), "snapshot imports");
    for chunk in audio[half..].chunks(CHUNK) {
        must_enqueue(&mut dst_client, &Request::Push { session: id, samples: chunk.to_vec() });
    }
    must_enqueue(&mut dst_client, &Request::Finish { session: id });
    loop {
        match dst_client.next_event().expect("event stream") {
            Response::Segment { session, start_frame, end_frame, classification } => {
                assert_eq!(session, id);
                let cls = classification.expect("no degradation configured");
                rows.push((start_frame, end_frame, cls.stroke, cls.scores));
            }
            Response::Finished { session } => {
                assert_eq!(session, id);
                break;
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
    assert_eq!(&rows, want, "migrated wire transcript diverged");
    drop(dst_client);
    let dst_report = dst.shutdown();
    assert_eq!(dst_report.metrics.sessions_resumed, 1);
    assert_eq!(dst_report.metrics.sessions_finished, 1);
    assert_eq!(dst_report.metrics.wire_malformed_frames, 0);
}

/// Shutdown with live connections neither hangs nor loses the report.
#[test]
fn shutdown_with_live_connections_is_clean() {
    let server = start_server();
    let addr = server.local_addr();
    let mut client = WireClient::connect(addr).expect("loopback connect");
    must_enqueue(&mut client, &Request::Open { session: 8 });
    // Client left open on purpose: shutdown must kick it off its socket.
    let report = server.shutdown();
    assert_eq!(report.metrics.sessions_opened, 1);
    assert!(client.next_event().is_err(), "socket must be closed by shutdown");
}
