//! Workspace walking and rule scoping.
//!
//! Maps each `.rs` file to a [`FileScope`] (which crate it belongs to,
//! whether the pipeline rules apply, whether wall-clock reads are allowed)
//! and runs the rules over it. The walker is deliberately free of build
//! metadata: it works from directory layout alone, so it runs identically
//! in CI, in tests, and offline.

use crate::callgraph::CallGraph;
use crate::lexer::lex;
use crate::reach::graph_rules;
use crate::rules::{check, Diagnostic, FileScope};
use crate::scanner::scan;
use crate::symbols::{file_symbols_lexed, FileSymbols};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The Fig. 6 pipeline crates — the scope of the panic-freedom, float-order,
/// determinism, and pub-doc rules.
pub const PIPELINE_CRATES: &[&str] = &[
    "dsp", "spectro", "profile", "dtw", "lang", "corpus", "gesture", "core", "serve", "trace",
    "wire", "snapshot", "obs",
];

/// Crates whose library code may read wall clocks (profiling is their job).
pub const TIME_EXEMPT_CRATES: &[&str] = &["profile", "bench"];

/// Classifies `path` (workspace-relative) into a [`FileScope`].
pub fn classify(path: &Path) -> FileScope {
    let comps: Vec<String> = path
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    let crate_name = match comps.first().map(String::as_str) {
        Some("crates") => comps.get(1).cloned().unwrap_or_default(),
        _ => String::new(), // workspace-root `src/`, `tests/`, `examples/`
    };
    let test_file = comps.iter().any(|c| c == "tests" || c == "benches" || c == "examples")
        || path.file_name().is_some_and(|f| f == "build.rs");
    let pipeline = PIPELINE_CRATES.contains(&crate_name.as_str());
    let allow_time = test_file || TIME_EXEMPT_CRATES.contains(&crate_name.as_str());
    // The one module sanctioned to hold raw `std::arch` SIMD.
    let simd_kernels = comps.len() >= 4
        && comps[..3] == ["crates".to_string(), "dsp".to_string(), "src".to_string()]
        && (comps[3] == "kernels" || comps[3] == "kernels.rs");
    FileScope { crate_name, pipeline, test_file, allow_time, simd_kernels }
}

/// Lints one source string under an explicit scope. `name` is used verbatim
/// in diagnostics.
pub fn lint_source(name: &str, source: &str, scope: &FileScope) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let scanned = scan(&lexed);
    check(name, &lexed, &scanned, scope)
}

/// Lints the file at `root.join(rel)`, classifying it from `rel`.
///
/// # Errors
///
/// Propagates the read error if the file cannot be loaded.
pub fn lint_file(root: &Path, rel: &Path) -> io::Result<Vec<Diagnostic>> {
    let source = fs::read_to_string(root.join(rel))?;
    let scope = classify(rel);
    Ok(lint_source(&rel.display().to_string(), &source, &scope))
}

/// How many worker threads the workspace scan uses. Mirrors the shape of
/// the runtime's `echowrite::config::Parallelism` knob; echolint keeps its
/// own copy so the linter stays dependency-free (it must lint the workspace
/// even when the workspace does not build).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// One worker per available core.
    Auto,
    /// An explicit worker count (`Threads(1)` forces a serial scan).
    Threads(usize),
}

impl Parallelism {
    /// Resolves to a concrete worker count for `n_files` work items.
    fn workers(self, n_files: usize) -> usize {
        let raw = match self {
            Parallelism::Auto => {
                std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
            }
            Parallelism::Threads(n) => n,
        };
        raw.clamp(1, n_files.max(1))
    }
}

/// The output of a full workspace analysis: per-file diagnostics, the
/// graph-rule diagnostics, and the call graph itself (for `--graph dot`).
#[derive(Debug)]
pub struct Analysis {
    /// All diagnostics, sorted by (file, line, rule).
    pub diags: Vec<Diagnostic>,
    /// The resolved workspace call graph.
    pub graph: CallGraph,
}

/// Per-file output of the scan phase, merged in path order.
struct FileResult {
    diags: Vec<Diagnostic>,
    symbols: FileSymbols,
}

/// Lexes, scans, rule-checks, and symbol-extracts one file.
fn process_file(rel: &str, source: &str) -> FileResult {
    let scope = classify(Path::new(rel));
    let lexed = lex(source);
    let scanned = scan(&lexed);
    let diags = check(rel, &lexed, &scanned, &scope);
    let symbols = file_symbols_lexed(rel, &lexed, &scanned, &scope);
    FileResult { diags, symbols }
}

/// Lints every `.rs` file of the workspace at `root`: all of `crates/*/src`
/// plus the suite's root `src/`. Vendored stand-ins (`vendor/`), integration
/// tests, benches, and examples are skipped — they are either third-party
/// idiom or test code by definition.
///
/// Runs the per-file pass in parallel across `par` workers, then the graph
/// pass (panic-reach, alloc-reach, lane wrapper-reachability) over the
/// stitched symbol tables. Diagnostics are merged in path-sorted order, so
/// the output is bitwise-identical for every worker count.
///
/// # Errors
///
/// Propagates directory-walk and file-read errors.
pub fn analyze_workspace(root: &Path, par: Parallelism) -> io::Result<Analysis> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            let src = entry.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    let mut rels: Vec<PathBuf> = files
        .iter()
        .filter_map(|f| f.strip_prefix(root).ok().map(Path::to_path_buf))
        .collect();
    rels.sort();

    // I/O stays serial (ordering and error propagation are simpler and the
    // reads are a small fraction of the scan); the CPU-bound lex/scan/rule
    // work fans out below.
    let inputs: Vec<(String, String)> = rels
        .iter()
        .map(|rel| {
            let source = fs::read_to_string(root.join(rel))?;
            Ok((rel.display().to_string(), source))
        })
        .collect::<io::Result<_>>()?;

    let workers = par.workers(inputs.len());
    let results: Vec<FileResult> = if workers <= 1 {
        inputs.iter().map(|(rel, src)| process_file(rel, src)).collect()
    } else {
        // Strided assignment over an indexed slot table: worker w takes
        // files w, w+workers, … and each result lands back in its path-order
        // slot, so the merge is deterministic regardless of thread timing.
        let mut slots: Vec<Option<FileResult>> = Vec::new();
        slots.resize_with(inputs.len(), || None);
        std::thread::scope(|scope| {
            let inputs = &inputs;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut i = w;
                        while i < inputs.len() {
                            let (rel, src) = &inputs[i];
                            out.push((i, process_file(rel, src)));
                            i += workers;
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                // echolint: allow(no-panic-path) -- a panicked scan worker is unrecoverable; re-raise it
                for (i, r) in h.join().expect("echolint scan worker panicked") {
                    slots[i] = Some(r);
                }
            }
        });
        slots.into_iter().flatten().collect()
    };

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut symbols: Vec<FileSymbols> = Vec::with_capacity(results.len());
    for r in results {
        diags.extend(r.diags);
        symbols.push(r.symbols);
    }
    let graph = CallGraph::build(&symbols);
    diags.extend(graph_rules(&symbols, &graph));
    diags.sort_by(|a, b| {
        a.file.cmp(&b.file).then(a.line.cmp(&b.line)).then(a.rule.cmp(&b.rule)).then(a.message.cmp(&b.message))
    });
    Ok(Analysis { diags, graph })
}

/// [`analyze_workspace`] with auto parallelism, returning diagnostics only.
///
/// # Errors
///
/// Propagates directory-walk and file-read errors.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    analyze_workspace(root, Parallelism::Auto).map(|a| a.diags)
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_pipeline_vs_not() {
        let dsp = classify(Path::new("crates/dsp/src/fft.rs"));
        assert!(dsp.pipeline && !dsp.test_file && !dsp.allow_time);
        assert_eq!(dsp.crate_name, "dsp");

        let profile = classify(Path::new("crates/profile/src/lib.rs"));
        assert!(profile.pipeline && profile.allow_time);

        let synth = classify(Path::new("crates/synth/src/tone.rs"));
        assert!(!synth.pipeline);

        let suite = classify(Path::new("src/bin/repro.rs"));
        assert!(!suite.pipeline && suite.crate_name.is_empty());

        // The serving layer is a pipeline crate: results flow through it, so
        // every determinism rule applies, and unlike crates/profile it gets
        // NO blanket time exemption — its metrics module must carry reasoned
        // per-line allow markers instead.
        let serve = classify(Path::new("crates/serve/src/manager.rs"));
        assert!(serve.pipeline && !serve.allow_time);
        let serve_metrics = classify(Path::new("crates/serve/src/metrics.rs"));
        assert!(serve_metrics.pipeline && !serve_metrics.allow_time);

        // The tracing layer is likewise a pipeline crate with NO time
        // exemption: its timestamps must come from logical clocks or
        // caller-measured Stopwatch durations, so a raw `std::time` read
        // inside a trace sink is a determinism diagnostic.
        let trace = classify(Path::new("crates/trace/src/recording.rs"));
        assert!(trace.pipeline && !trace.allow_time);
        assert_eq!(trace.crate_name, "trace");
    }

    #[test]
    fn classify_simd_kernel_sanctuary() {
        let kern = classify(Path::new("crates/dsp/src/kernels/mod.rs"));
        assert!(kern.simd_kernels && kern.pipeline);
        assert!(classify(Path::new("crates/dsp/src/kernels/x86.rs")).simd_kernels);
        assert!(classify(Path::new("crates/dsp/src/kernels/neon.rs")).simd_kernels);
        // The rest of dsp — and every other crate — is outside the boundary.
        assert!(!classify(Path::new("crates/dsp/src/fft.rs")).simd_kernels);
        assert!(!classify(Path::new("crates/spectro/src/image.rs")).simd_kernels);
        assert!(!classify(Path::new("src/bin/repro.rs")).simd_kernels);
    }

    #[test]
    fn classify_test_and_bench_files() {
        assert!(classify(Path::new("tests/end_to_end.rs")).test_file);
        assert!(classify(Path::new("crates/bench/benches/frontend.rs")).test_file);
        assert!(classify(Path::new("crates/bench/benches/frontend.rs")).allow_time);
        assert!(classify(Path::new("examples/demo.rs")).test_file);
    }

    #[test]
    fn lint_source_scopes_rules() {
        let bad = "fn f() { x.unwrap(); }";
        let in_pipeline = lint_source("a.rs", bad, &classify(Path::new("crates/dtw/src/x.rs")));
        assert_eq!(in_pipeline.len(), 1);
        let outside = lint_source("a.rs", bad, &classify(Path::new("crates/synth/src/x.rs")));
        assert!(outside.is_empty());
    }
}
