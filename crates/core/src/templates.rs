//! Intrinsic stroke-template generation.
//!
//! The paper's templates are "pre-stored in the system" and are intrinsic
//! to the strokes rather than learned from users (Sec. III-C) — that's what
//! makes EchoWrite training-free. Here the canonical templates are produced
//! by rendering the ideal (jitter-free, tremor-free) writer through the
//! *same* physical channel and signal pipeline used at recognition time, in
//! a silent anechoic scene with no hand/arm clutter, then extracting each
//! stroke's segmented Doppler profile.

use crate::config::EchoWriteConfig;
use crate::pipeline::Pipeline;
use echowrite_dtw::TemplateLibrary;
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_synth::{scene::BodyModel, DeviceProfile, EnvironmentProfile, Scene};

/// Generates the six canonical stroke templates under a configuration.
///
/// # Panics
///
/// Panics if the configuration is invalid or a template cannot be segmented
/// (which would indicate inconsistent thresholds).
pub fn generate(config: &EchoWriteConfig) -> TemplateLibrary {
    generate_for_writer(config, &WriterParams::canonical())
}

/// Generates templates for a custom canonical writer (e.g. a different
/// writing-plane geometry). Randomness in the writer is ignored — the
/// template writer must be deterministic, so jitter and tremor are zeroed.
pub fn generate_for_writer(config: &EchoWriteConfig, writer: &WriterParams) -> TemplateLibrary {
    // echolint: allow(no-panic-path) -- documented `# Panics` contract of generate()
    config.validate().expect("invalid config for template generation");
    let params = WriterParams {
        duration_jitter: 0.0,
        amplitude_jitter: 0.0,
        centre_jitter: 0.0,
        tremor: 0.0,
        ..writer.clone()
    };
    // Templates are produced through the *same* pipeline (including the
    // configured front-end) used at recognition time.
    let pipeline = Pipeline::new(config.clone());
    let scene = Scene::new(
        DeviceProfile::mate9(),
        EnvironmentProfile::silent(),
        0,
    )
    .with_body(BodyModel::finger_only());

    let pairs = Stroke::ALL.map(|stroke| {
        let perf = Writer::new(params.clone(), 0).write_stroke(stroke);
        let mic = scene.render(&perf.trajectory);
        let analysis = pipeline.analyze(&mic);
        let seg = analysis
            .segments
            .iter()
            .max_by_key(|s| s.len())
            // echolint: allow(no-panic-path) -- documented `# Panics`: unsegmentable template means inconsistent thresholds
            .unwrap_or_else(|| panic!("template stroke {stroke} produced no segment"));
        (stroke, analysis.profile.slice(seg.start, seg.end).shifts().to_vec())
    });
    // echolint: allow(no-panic-path) -- Stroke::ALL.map yields exactly the six required templates
    TemplateLibrary::new(pairs).expect("all six templates generated")
}

#[cfg(test)]
mod tests {
    use super::*;
    use echowrite_dtw::{dtw_distance, DtwConfig};

    #[test]
    fn generates_six_distinct_templates() {
        let lib = generate(&EchoWriteConfig::paper());
        for (s, t) in lib.iter() {
            assert!(t.len() >= 5, "{s} template too short: {}", t.len());
        }
        // Every pair of templates must be distinguishable under DTW.
        for a in Stroke::ALL {
            for b in Stroke::ALL {
                if a < b {
                    let d = dtw_distance(lib.template(a), lib.template(b), DtwConfig::default());
                    assert!(d > 2.0, "templates {a} and {b} nearly identical: {d}");
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = EchoWriteConfig::paper();
        let a = generate(&cfg);
        let b = generate(&cfg);
        for s in Stroke::ALL {
            assert_eq!(a.template(s), b.template(s));
        }
    }

    #[test]
    fn templates_have_expected_signs() {
        let lib = generate(&EchoWriteConfig::paper());
        // S1 recedes (negative), S2 approaches (positive peak dominates).
        let peak = |t: &[f64]| {
            t.iter().fold((0.0f64, 0.0f64), |(mx, mn), &v| (mx.max(v), mn.min(v)))
        };
        let (s1_max, s1_min) = peak(lib.template(Stroke::S1));
        assert!(s1_min.abs() > s1_max, "S1 should be negative-dominant");
        let (s2_max, s2_min) = peak(lib.template(Stroke::S2));
        assert!(s2_max > s2_min.abs(), "S2 should be positive-dominant");
    }

    #[test]
    fn curved_templates_change_sign() {
        let lib = generate(&EchoWriteConfig::paper());
        {
            let s = Stroke::S5;
            let t = lib.template(s);
            let has_pos = t.iter().any(|&v| v > 5.0);
            let has_neg = t.iter().any(|&v| v < -5.0);
            assert!(has_pos && has_neg, "{s} arc should cross zero");
        }
    }
}
