//! Table I / Fig. 14 — the word-recognition workload unit.
//!
//! One iteration = recognizing a whole Table-I word (audio → strokes →
//! Bayesian top-5 candidates), for a short, a medium, and a long word.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use echowrite_bench::{engine, word_trace};
use std::hint::black_box;

fn bench_words(c: &mut Criterion) {
    let e = engine();
    let mut g = c.benchmark_group("fig14_word_recognition");
    g.sample_size(10);
    for word in ["me", "water", "question"] {
        let audio = word_trace(word, 11);
        g.bench_with_input(BenchmarkId::new("recognize_word", word), &audio, |b, a| {
            b.iter(|| e.recognize_word(black_box(a)))
        });
    }
    g.finish();
}

fn bench_decode_only(c: &mut Criterion) {
    let e = engine();
    let mut g = c.benchmark_group("fig14_decode_only");
    for word in ["me", "water", "question"] {
        let seq = e.scheme().encode_word(word).unwrap();
        g.bench_with_input(BenchmarkId::new("decode", word), &seq, |b, s| {
            b.iter(|| e.decoder().decode(black_box(s)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_words, bench_decode_only);
criterion_main!(benches);
