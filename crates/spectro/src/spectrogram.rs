//! The spectrogram matrix type.

use echowrite_dsp::StftConfig;
use std::fmt;

/// A time–frequency magnitude matrix: `rows` frequency bins × `cols` time
/// frames, with metadata tying rows to physical frequencies.
///
/// Row 0 is the lowest frequency of the represented band. `carrier_row` is
/// the row of the probe-tone carrier (the "centre frequency bin" `cf` of the
/// paper's Algorithm 1).
///
/// # Example
///
/// ```
/// use echowrite_spectro::Spectrogram;
/// let mut s = Spectrogram::zeros(5, 3);
/// s.set(2, 1, 7.0);
/// assert_eq!(s.get(2, 1), 7.0);
/// assert_eq!(s.carrier_row(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrogram {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
    carrier_row: usize,
    /// Frequency step between rows, Hz (0 when unknown).
    bin_hz: f64,
    /// Time step between columns, seconds (0 when unknown).
    hop_s: f64,
}

impl Spectrogram {
    /// Creates a zero-filled spectrogram with the carrier at the middle row.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0, "a spectrogram needs at least one row");
        Spectrogram {
            rows,
            cols,
            data: vec![0.0; rows * cols],
            carrier_row: rows / 2,
            bin_hz: 0.0,
            hop_s: 0.0,
        }
    }

    /// Builds a spectrogram from per-frame magnitude columns (each inner
    /// vector is one time frame over the same band).
    ///
    /// # Panics
    ///
    /// Panics if frames are empty or have differing lengths.
    pub fn from_frames(frames: &[Vec<f64>]) -> Self {
        assert!(!frames.is_empty(), "no frames supplied");
        // echolint: allow(no-panic-path) -- non-emptiness asserted on the line above
        let rows = frames[0].len();
        assert!(rows > 0, "frames must be non-empty");
        let cols = frames.len();
        let mut s = Spectrogram::zeros(rows, cols);
        for (c, frame) in frames.iter().enumerate() {
            assert_eq!(frame.len(), rows, "frame {c} has inconsistent length");
            for (r, &v) in frame.iter().enumerate() {
                s.set(r, c, v);
            }
        }
        s
    }

    /// Builds a spectrogram from one flat frame-major buffer: frame `c`
    /// occupies `buf[c*rows .. (c+1)*rows]`. This is the layout the
    /// zero-allocation STFT band paths produce, and the transpose into the
    /// row-major matrix happens in a single pass here.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero or `buf.len() != rows * cols`.
    pub fn from_frame_major(rows: usize, cols: usize, buf: &[f64]) -> Self {
        assert!(rows > 0, "a spectrogram needs at least one row");
        assert_eq!(
            buf.len(),
            rows * cols,
            "frame-major buffer length {} != rows {rows} × cols {cols}",
            buf.len()
        );
        let mut s = Spectrogram::zeros(rows, cols);
        for (c, frame) in buf.chunks_exact(rows).enumerate() {
            for (r, &v) in frame.iter().enumerate() {
                s.data[r * cols + c] = v;
            }
        }
        s
    }

    /// Builds the paper's region-of-interest spectrogram from full-band STFT
    /// frames: crops to `[carrier − span, carrier + span]` Hz and records
    /// frequency/time metadata from the STFT configuration.
    ///
    /// With the paper's parameters (`carrier` 20 kHz, `span` 470.6 Hz,
    /// N = 8192 at 44.1 kHz) the result has 175 rows where the full frame had
    /// 4097 — the "column size reduced from 8192 to 350" optimization (the
    /// paper counts both real and mirrored halves).
    ///
    /// # Panics
    ///
    /// Panics if the ROI exceeds the frame band or frames are inconsistent.
    pub fn roi_from_stft(frames: &[Vec<f64>], config: &StftConfig, carrier: f64, span: f64) -> Self {
        assert!(!frames.is_empty(), "no frames supplied");
        let lo = config.frequency_bin(carrier - span);
        let hi = config.frequency_bin(carrier + span);
        let carrier_bin = config.frequency_bin(carrier);
        // echolint: allow(no-panic-path) -- non-emptiness asserted at function entry
        assert!(hi < frames[0].len(), "ROI exceeds the supplied band");
        let rows = hi - lo + 1;
        let mut s = Spectrogram::zeros(rows, frames.len());
        s.carrier_row = carrier_bin - lo;
        s.bin_hz = config.sample_rate / config.fft_size as f64;
        s.hop_s = config.hop_seconds();
        for (c, frame) in frames.iter().enumerate() {
            // echolint: allow(no-panic-path) -- non-emptiness asserted at function entry
            assert_eq!(frame.len(), frames[0].len(), "frame {c} inconsistent");
            for r in 0..rows {
                s.set(r, c, frame[lo + r]);
            }
        }
        s
    }

    /// Number of frequency rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of time columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The carrier (centre-frequency) row index.
    #[inline]
    pub fn carrier_row(&self) -> usize {
        self.carrier_row
    }

    /// Overrides the carrier row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn set_carrier_row(&mut self, row: usize) {
        assert!(row < self.rows, "carrier row {row} out of range");
        self.carrier_row = row;
    }

    /// Frequency step between rows in Hz (0 when built without metadata).
    #[inline]
    pub fn bin_hz(&self) -> f64 {
        self.bin_hz
    }

    /// Sets the frequency/time metadata (used by alternative front-ends
    /// that build the matrix directly).
    ///
    /// # Panics
    ///
    /// Panics if either step is non-positive.
    pub fn set_metadata(&mut self, bin_hz: f64, hop_s: f64) {
        assert!(bin_hz > 0.0 && hop_s > 0.0, "metadata steps must be positive");
        self.bin_hz = bin_hz;
        self.hop_s = hop_s;
    }

    /// Time step between columns in seconds (0 when built without metadata).
    #[inline]
    pub fn hop_seconds(&self) -> f64 {
        self.hop_s
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index ({row},{col}) out of range");
        self.data[row * self.cols + col]
    }

    /// Sets the value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, v: f64) {
        assert!(row < self.rows && col < self.cols, "index ({row},{col}) out of range");
        self.data[row * self.cols + col] = v;
    }

    /// The raw backing slice, row-major.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the raw backing slice, row-major.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One time frame (column) as a fresh vector.
    pub fn column(&self, col: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, col)).collect()
    }

    /// Appends a column (used by the streaming pipeline's 5-frame buffers).
    ///
    /// # Panics
    ///
    /// Panics if `frame.len() != rows`.
    pub fn push_column(&mut self, frame: &[f64]) {
        assert_eq!(frame.len(), self.rows, "column length mismatch");
        // Row-major layout: rebuild with one extra column.
        let mut data = Vec::with_capacity(self.rows * (self.cols + 1));
        for (r, &v) in frame.iter().enumerate() {
            data.extend_from_slice(&self.data[r * self.cols..(r + 1) * self.cols]);
            data.push(v);
        }
        self.cols += 1;
        self.data = data;
    }

    /// A view of the sub-range of columns `[lo, hi)` as a new spectrogram.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid.
    pub fn slice_cols(&self, lo: usize, hi: usize) -> Spectrogram {
        assert!(lo <= hi && hi <= self.cols, "invalid column range {lo}..{hi}");
        let mut s = Spectrogram::zeros(self.rows, hi - lo);
        s.carrier_row = self.carrier_row;
        s.bin_hz = self.bin_hz;
        s.hop_s = self.hop_s;
        for r in 0..self.rows {
            for c in lo..hi {
                s.set(r, c - lo, self.get(r, c));
            }
        }
        s
    }

    /// Maximum value in the matrix (0.0 when empty).
    pub fn max_value(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &v| m.max(v))
    }

    /// Fraction of non-zero cells.
    pub fn occupancy(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().filter(|&&v| v != 0.0).count() as f64 / self.data.len() as f64
    }

    /// Whether every cell is exactly 0.0 or 1.0.
    pub fn is_binary(&self) -> bool {
        self.data.iter().all(|&v| v == 0.0 || v == 1.0)
    }

    /// The Doppler shift in Hz represented by a row (row − carrier_row,
    /// scaled by the bin width).
    pub fn row_to_shift_hz(&self, row: usize) -> f64 {
        (row as f64 - self.carrier_row as f64) * self.bin_hz
    }
}

impl fmt::Display for Spectrogram {
    /// Renders a coarse ASCII heat map (highest frequency on top), used by
    /// the examples to visualize Fig. 8-style stages in the terminal.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const SHADES: &[u8] = b" .:-=+*#%@";
        let max = self.max_value().max(f64::MIN_POSITIVE);
        for r in (0..self.rows).rev() {
            for c in 0..self.cols {
                let v = (self.get(r, c) / max * (SHADES.len() - 1) as f64).round() as usize;
                write!(f, "{}", SHADES[v.min(SHADES.len() - 1)] as char)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let mut s = Spectrogram::zeros(4, 3);
        assert_eq!(s.rows(), 4);
        assert_eq!(s.cols(), 3);
        assert_eq!(s.get(3, 2), 0.0);
        s.set(3, 2, 5.0);
        assert_eq!(s.get(3, 2), 5.0);
        assert_eq!(s.max_value(), 5.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Spectrogram::zeros(2, 2).get(2, 0);
    }

    #[test]
    fn from_frames_transposes_correctly() {
        // Two frames (columns) of three bins (rows).
        let s = Spectrogram::from_frames(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.cols(), 2);
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(0, 1), 4.0);
        assert_eq!(s.get(2, 1), 6.0);
        assert_eq!(s.column(1), vec![4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn from_frames_rejects_ragged_input() {
        Spectrogram::from_frames(&[vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    fn from_frame_major_matches_from_frames() {
        let frames = [vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let flat: Vec<f64> = frames.iter().flatten().copied().collect();
        let a = Spectrogram::from_frames(&frames);
        let b = Spectrogram::from_frame_major(3, 2, &flat);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "frame-major buffer length")]
    fn from_frame_major_rejects_wrong_len() {
        Spectrogram::from_frame_major(3, 2, &[0.0; 5]);
    }

    #[test]
    fn roi_crop_matches_paper_dimensions() {
        let cfg = StftConfig::paper();
        let full = vec![vec![0.0; cfg.fft_size / 2 + 1]; 4];
        let s = Spectrogram::roi_from_stft(&full, &cfg, 20_000.0, 470.6);
        // 470.6 Hz at 5.38 Hz/bin ≈ 87 bins each side → 175 rows.
        assert!((s.rows() as i64 - 175).abs() <= 2, "rows {}", s.rows());
        assert_eq!(s.cols(), 4);
        // Carrier row sits centred.
        assert!((s.carrier_row() as i64 - (s.rows() / 2) as i64).abs() <= 1);
        assert!((s.bin_hz() - 5.3833).abs() < 0.01);
        assert!((s.hop_seconds() - 0.02322).abs() < 1e-4);
    }

    #[test]
    fn roi_preserves_values() {
        let cfg = StftConfig::paper();
        let mut frame = vec![0.0; cfg.fft_size / 2 + 1];
        let carrier_bin = cfg.frequency_bin(20_000.0);
        frame[carrier_bin] = 9.0;
        frame[carrier_bin + 10] = 4.0;
        let s = Spectrogram::roi_from_stft(&[frame], &cfg, 20_000.0, 470.6);
        assert_eq!(s.get(s.carrier_row(), 0), 9.0);
        assert_eq!(s.get(s.carrier_row() + 10, 0), 4.0);
    }

    #[test]
    fn row_to_shift_uses_carrier() {
        let cfg = StftConfig::paper();
        let full = vec![vec![0.0; cfg.fft_size / 2 + 1]; 1];
        let s = Spectrogram::roi_from_stft(&full, &cfg, 20_000.0, 470.6);
        assert_eq!(s.row_to_shift_hz(s.carrier_row()), 0.0);
        let up = s.row_to_shift_hz(s.carrier_row() + 2);
        assert!((up - 2.0 * s.bin_hz()).abs() < 1e-12);
        assert!(s.row_to_shift_hz(0) < 0.0);
    }

    #[test]
    fn push_column_appends() {
        let mut s = Spectrogram::from_frames(&[vec![1.0, 2.0]]);
        s.push_column(&[3.0, 4.0]);
        assert_eq!(s.cols(), 2);
        assert_eq!(s.get(0, 1), 3.0);
        assert_eq!(s.get(1, 1), 4.0);
        // Old data unchanged.
        assert_eq!(s.get(0, 0), 1.0);
    }

    #[test]
    fn slice_cols_extracts_range() {
        let s = Spectrogram::from_frames(&[
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ]);
        let mid = s.slice_cols(1, 3);
        assert_eq!(mid.cols(), 2);
        assert_eq!(mid.get(0, 0), 2.0);
        assert_eq!(mid.get(1, 1), 30.0);
        assert_eq!(mid.carrier_row(), s.carrier_row());
    }

    #[test]
    fn occupancy_and_binary() {
        let mut s = Spectrogram::zeros(2, 2);
        assert_eq!(s.occupancy(), 0.0);
        assert!(s.is_binary());
        s.set(0, 0, 1.0);
        assert_eq!(s.occupancy(), 0.25);
        assert!(s.is_binary());
        s.set(1, 1, 0.5);
        assert!(!s.is_binary());
    }

    #[test]
    fn display_renders_grid() {
        let mut s = Spectrogram::zeros(2, 3);
        s.set(1, 0, 1.0);
        let text = s.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 3);
        // Highest row first; the hot cell appears in the first line.
        assert!(lines[0].starts_with('@'));
        assert!(lines[1].starts_with(' '));
    }
}
