//! Robustness demo: the same strokes recognized in the paper's three rooms
//! and on both devices (paper Sec. V-A2, Figs. 11–12 in miniature).
//!
//! ```sh
//! cargo run --release --example noisy_environments
//! ```

use echowrite::EchoWrite;
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};

fn main() {
    let engine = EchoWrite::new();
    let reps = 8u64;

    println!("per-stroke recognition accuracy over {reps} trials each:\n");
    println!(
        "{:<14} {:<14} S1    S2    S3    S4    S5    S6    mean",
        "device", "room"
    );
    for device in [DeviceProfile::mate9(), DeviceProfile::watch2()] {
        for env in EnvironmentProfile::all_paper_rooms() {
            let mut row = String::new();
            let mut total_ok = 0usize;
            for stroke in Stroke::ALL {
                let mut ok = 0usize;
                for rep in 0..reps {
                    let seed = rep * 97 + stroke.index() as u64 * 13;
                    let perf =
                        Writer::new(WriterParams::nominal(), seed).write_stroke(stroke);
                    let scene = Scene::new(device.clone(), env.clone(), seed);
                    let mic = scene.render(&perf.trajectory);
                    let rec = engine.recognize_strokes(&mic);
                    let best = rec
                        .classifications
                        .iter()
                        .zip(&rec.segments)
                        .max_by_key(|(_, s)| s.len())
                        .map(|(c, _)| c.stroke);
                    if best == Some(stroke) {
                        ok += 1;
                    }
                }
                total_ok += ok;
                row.push_str(&format!("{:<6}", format!("{}/{}", ok, reps)));
            }
            let mean = total_ok as f64 / (reps as usize * 6) as f64;
            println!("{:<14} {:<14} {row}{:.0}%", device.name, env.name, mean * 100.0);
        }
    }

    println!("\nExpected shape (paper): all conditions in the low-to-mid 90s,");
    println!("the resting zone slightly worst, watch ≈ phone.");
}
