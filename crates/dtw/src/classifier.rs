//! Nearest-template stroke classification.
//!
//! The matching distance is a weighted composite of three views of the
//! profile, because strokes can share a coarse shape and differ in finer
//! structure:
//!
//! - **raw** DTW on the Hz series (amplitude + shape),
//! - **shape** DTW on z-normalized series (shape only — robust to the
//!   per-performance amplitude jitter that otherwise blurs S2/S3/S6),
//! - a **duration** penalty `|ln(len_probe/len_template)|` (DTW deliberately
//!   forgives time warping, but the six strokes have genuinely different
//!   nominal durations — arcs are longer than lines).

use crate::dtw::{dtw_distance, dtw_distance_pruned, lb_keogh, z_normalize, DtwConfig};
use crate::templates::TemplateLibrary;
use echowrite_gesture::stroke::{Stroke, STROKE_COUNT};
use echowrite_trace::{SmallStr, Stage, TICK_UNSET};

/// Weights of the composite matching distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchWeights {
    /// Weight of the raw-series DTW distance (Hz units).
    pub raw: f64,
    /// Weight of the z-normalized shape DTW distance (unit variance).
    pub shape: f64,
    /// Weight of the |ln duration ratio| penalty.
    pub duration: f64,
}

impl MatchWeights {
    /// Balanced defaults calibrated on the simulator: raw DTW dominates,
    /// with mild shape and duration terms that resolve the positive-bump
    /// strokes (S2/S3/S6) the raw distance alone confuses.
    pub fn stroke_matching() -> Self {
        MatchWeights { raw: 1.0, shape: 20.0, duration: 25.0 }
    }

    /// Raw DTW only (the ablation baseline).
    pub fn raw_only() -> Self {
        MatchWeights { raw: 1.0, shape: 0.0, duration: 0.0 }
    }
}

impl Default for MatchWeights {
    fn default() -> Self {
        MatchWeights::stroke_matching()
    }
}

/// The result of classifying one segmented Doppler profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// The nearest template's stroke.
    pub stroke: Stroke,
    /// DTW distance to each template, indexed by stroke.
    pub distances: [f64; STROKE_COUNT],
    /// Soft scores summing to 1, derived from distances by softmin; these
    /// approximate `P(s|l)` for the Bayesian word decoder.
    pub scores: [f64; STROKE_COUNT],
}

impl Classification {
    /// Strokes ranked best-first by distance.
    pub fn ranking(&self) -> Vec<Stroke> {
        let mut order: Vec<usize> = (0..STROKE_COUNT).collect();
        order.sort_by(|&a, &b| self.distances[a].total_cmp(&self.distances[b]));
        order
            .into_iter()
            // echolint: allow(no-panic-path) -- i ranges over 0..STROKE_COUNT
            .map(|i| Stroke::from_index(i).expect("index < 6"))
            .collect()
    }

    /// The margin between the best and second-best distance — a confidence
    /// proxy.
    pub fn margin(&self) -> f64 {
        let ranked = self.ranking();
        // echolint: allow(no-panic-path) -- ranking() always returns STROKE_COUNT == 6 entries
        self.distances[ranked[1].index()] - self.distances[ranked[0].index()]
    }
}

/// A DTW nearest-template classifier over the six strokes.
///
/// # Example
///
/// ```
/// use echowrite_dtw::{StrokeClassifier, TemplateLibrary};
/// use echowrite_gesture::Stroke;
/// let lib = TemplateLibrary::new(
///     Stroke::ALL.iter().map(|&s| (s, vec![10.0 * s.index() as f64; 6])),
/// ).unwrap();
/// let clf = StrokeClassifier::new(lib);
/// let c = clf.classify(&[29.0, 31.0, 30.0]);
/// assert_eq!(c.stroke, Stroke::S4); // template value 30
/// ```
#[derive(Debug, Clone)]
pub struct StrokeClassifier {
    templates: TemplateLibrary,
    /// Pre-computed z-normalized templates, indexed by stroke.
    shape_templates: [Vec<f64>; STROKE_COUNT],
    config: DtwConfig,
    weights: MatchWeights,
    /// Temperature of the softmin converting distances to scores.
    temperature: f64,
}

impl StrokeClassifier {
    /// Creates a classifier with stroke-matching DTW defaults.
    pub fn new(templates: TemplateLibrary) -> Self {
        let mut shape_templates: [Vec<f64>; STROKE_COUNT] = Default::default();
        for (s, t) in templates.iter() {
            shape_templates[s.index()] = z_normalize(t);
        }
        StrokeClassifier {
            templates,
            shape_templates,
            config: DtwConfig::stroke_matching(),
            weights: MatchWeights::stroke_matching(),
            temperature: 10.0,
        }
    }

    /// Overrides the DTW configuration.
    pub fn with_config(mut self, config: DtwConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the composite-distance weights.
    pub fn with_weights(mut self, weights: MatchWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Overrides the softmin temperature (higher = softer scores).
    ///
    /// # Panics
    ///
    /// Panics if `t` is not positive.
    pub fn with_temperature(mut self, t: f64) -> Self {
        assert!(t > 0.0, "temperature must be positive, got {t}");
        self.temperature = t;
        self
    }

    /// The template library in use.
    pub fn templates(&self) -> &TemplateLibrary {
        &self.templates
    }

    /// Classifies a segmented Doppler profile (shift series in Hz).
    pub fn classify(&self, profile: &[f64]) -> Classification {
        let shape_probe = z_normalize(profile);
        let mut distances = [f64::INFINITY; STROKE_COUNT];
        for (stroke, _) in self.templates.iter() {
            distances[stroke.index()] = self.composite(profile, &shape_probe, stroke);
        }
        let best = distances
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            // echolint: allow(no-panic-path) -- distances is a non-empty fixed [f64; 6] array
            .expect("six distances");
        let scores = softmin(&distances, self.temperature);
        let stroke =
            // echolint: allow(no-panic-path) -- best is an index into [f64; STROKE_COUNT]
            Stroke::from_index(best).expect("index < 6");
        if echowrite_trace::enabled() {
            echowrite_trace::counter(Stage::Dtw, "templates_scored", TICK_UNSET, STROKE_COUNT as f64);
            echowrite_trace::annotated(
                Stage::Dtw,
                "classified",
                TICK_UNSET,
                distances.get(best).copied().unwrap_or(f64::INFINITY),
                SmallStr::from_display(stroke),
            );
        }
        Classification { stroke, distances, scores }
    }

    /// The composite distance of `profile` (with its pre-computed
    /// z-normalization) to one stroke's template.
    fn composite(&self, profile: &[f64], shape_probe: &[f64], stroke: Stroke) -> f64 {
        let w = self.weights;
        let template = self.templates.template(stroke);
        let mut d = w.raw * dtw_distance(profile, template, self.config);
        if w.shape > 0.0 {
            d += w.shape
                * dtw_distance(shape_probe, &self.shape_templates[stroke.index()], self.config);
        }
        if w.duration > 0.0 && !profile.is_empty() && !template.is_empty() {
            d += w.duration * (profile.len() as f64 / template.len() as f64).ln().abs();
        }
        d
    }

    /// Finds the nearest template without computing all six exact distances:
    /// templates are visited in order of their LB_Keogh composite lower
    /// bound, candidates whose bound already exceeds the best-so-far are
    /// skipped outright, and the remaining exact DTWs run with early
    /// abandoning against the shrinking best-so-far budget.
    ///
    /// Returns exactly the stroke [`StrokeClassifier::classify`] would pick
    /// (same index tie-break) and its exact composite distance — only the
    /// per-stroke score vector is skipped.
    pub fn nearest(&self, profile: &[f64]) -> (Stroke, f64) {
        let w = self.weights;
        let shape_probe = z_normalize(profile);

        // Cheap composite lower bound per template.
        let mut order: [(usize, f64, f64, f64); STROKE_COUNT] =
            [(0, 0.0, 0.0, 0.0); STROKE_COUNT];
        for (stroke, template) in self.templates.iter() {
            let i = stroke.index();
            let dur = if w.duration > 0.0 && !profile.is_empty() && !template.is_empty() {
                w.duration * (profile.len() as f64 / template.len() as f64).ln().abs()
            } else {
                0.0
            };
            let lb_raw = if w.raw > 0.0 {
                w.raw * lb_keogh(profile, template, self.config)
            } else {
                0.0
            };
            let lb_shape = if w.shape > 0.0 {
                w.shape * lb_keogh(&shape_probe, &self.shape_templates[i], self.config)
            } else {
                0.0
            };
            order[i] = (i, dur, lb_raw, lb_shape);
        }
        // Most promising first; stable, so index order breaks lb ties.
        order.sort_by(|x, y| (x.1 + x.2 + x.3).total_cmp(&(y.1 + y.2 + y.3)));

        let mut best = f64::INFINITY;
        // echolint: allow(no-panic-path) -- order is a fixed [_; STROKE_COUNT] array
        let mut best_idx = order[0].0;
        let (mut lb_skips, mut abandons, mut full_dtws) = (0u32, 0u32, 0u32);
        for &(idx, dur, lb_raw, lb_shape) in &order {
            if dur + lb_raw + lb_shape > best {
                lb_skips += 1;
                continue;
            }
            // echolint: allow(no-panic-path) -- idx comes from the fixed six-entry order array
            let stroke = Stroke::from_index(idx).expect("index < 6");
            let template = self.templates.template(stroke);
            // Budget left for the raw DTW before the composite provably
            // exceeds `best`; the shape term still contributes at least its
            // lower bound. `inflate` pads the thresholds by a few ULPs so
            // rounding differences can never abandon a true winner.
            let raw = if w.raw > 0.0 {
                let budget = inflate((best - dur - lb_shape) / w.raw);
                match dtw_distance_pruned(profile, template, self.config, Some(budget)) {
                    Some(raw) => raw,
                    None => {
                        abandons += 1;
                        continue;
                    }
                }
            } else {
                dtw_distance(profile, template, self.config)
            };
            let shape = if w.shape > 0.0 {
                let budget = inflate((best - dur - w.raw * raw) / w.shape);
                match dtw_distance_pruned(
                    &shape_probe,
                    &self.shape_templates[idx],
                    self.config,
                    Some(budget),
                ) {
                    Some(shape) => shape,
                    None => {
                        abandons += 1;
                        continue;
                    }
                }
            } else {
                0.0
            };
            full_dtws += 1;
            // Accumulate in `classify`'s exact order (raw, then shape, then
            // duration) so the surviving distance is bit-identical to it.
            let mut d = w.raw * raw;
            if w.shape > 0.0 {
                d += w.shape * shape;
            }
            d += dur;
            if d < best || (d == best && idx < best_idx) {
                best = d;
                best_idx = idx;
            }
        }
        let winner =
            // echolint: allow(no-panic-path) -- best_idx comes from the fixed six-entry order array
            Stroke::from_index(best_idx).expect("index < 6");
        if echowrite_trace::enabled() {
            echowrite_trace::counter(Stage::Dtw, "lb_skips", TICK_UNSET, f64::from(lb_skips));
            echowrite_trace::counter(Stage::Dtw, "early_abandons", TICK_UNSET, f64::from(abandons));
            echowrite_trace::counter(Stage::Dtw, "full_dtws", TICK_UNSET, f64::from(full_dtws));
            echowrite_trace::annotated(
                Stage::Dtw,
                "nearest",
                TICK_UNSET,
                best,
                SmallStr::from_display(winner),
            );
        }
        (winner, best)
    }
}

/// Pads an early-abandon threshold upward by a relative epsilon, so that
/// floating-point accumulation-order differences between the pruned search
/// and the exhaustive `classify` can never prune the true winner. A slightly
/// looser threshold only costs a little pruning, never correctness.
fn inflate(threshold: f64) -> f64 {
    threshold + threshold.abs() * 1e-9 + 1e-12
}

/// Converts distances to a probability-like score vector with a softmin:
/// `score_i ∝ exp(−d_i / t)`. Infinite distances score zero; if all are
/// infinite the scores are uniform.
fn softmin(distances: &[f64; STROKE_COUNT], temperature: f64) -> [f64; STROKE_COUNT] {
    let finite_min = distances.iter().copied().filter(|d| d.is_finite()).fold(f64::INFINITY, f64::min);
    if !finite_min.is_finite() {
        return [1.0 / STROKE_COUNT as f64; STROKE_COUNT];
    }
    let mut scores = [0.0; STROKE_COUNT];
    let mut total = 0.0;
    for (i, &d) in distances.iter().enumerate() {
        if d.is_finite() {
            let s = (-(d - finite_min) / temperature).exp();
            scores[i] = s;
            total += s;
        }
    }
    for s in &mut scores {
        *s /= total;
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;

    fn library() -> TemplateLibrary {
        // Six well-separated constant templates at 0, 20, 40, ... Hz.
        TemplateLibrary::new(
            Stroke::ALL
                .iter()
                .map(|&s| (s, vec![20.0 * s.index() as f64; 8])),
        )
        .unwrap()
    }

    #[test]
    fn classifies_to_nearest_template() {
        let clf = StrokeClassifier::new(library());
        for s in Stroke::ALL {
            let probe = vec![20.0 * s.index() as f64 + 3.0; 5];
            assert_eq!(clf.classify(&probe).stroke, s, "probe near {s}");
        }
    }

    #[test]
    fn distances_are_exact_for_constants() {
        let clf = StrokeClassifier::new(library()).with_weights(MatchWeights::raw_only());
        let c = clf.classify(&[10.0; 4]);
        assert!((c.distances[0] - 10.0).abs() < 1e-12);
        assert!((c.distances[1] - 10.0).abs() < 1e-12);
        assert!((c.distances[2] - 30.0).abs() < 1e-12);
    }

    #[test]
    fn scores_sum_to_one_and_rank_consistently() {
        let clf = StrokeClassifier::new(library());
        let c = clf.classify(&[5.0; 6]);
        let sum: f64 = c.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Best stroke has the highest score.
        let best = c.stroke.index();
        for i in 0..STROKE_COUNT {
            assert!(c.scores[best] >= c.scores[i]);
        }
    }

    #[test]
    fn ranking_sorted_by_distance() {
        let clf = StrokeClassifier::new(library());
        let c = clf.classify(&[42.0; 5]);
        let ranked = c.ranking();
        assert_eq!(ranked[0], Stroke::S3); // template 40 is nearest to 42
        for w in ranked.windows(2) {
            assert!(c.distances[w[0].index()] <= c.distances[w[1].index()]);
        }
    }

    #[test]
    fn margin_reflects_ambiguity() {
        let clf = StrokeClassifier::new(library());
        let confident = clf.classify(&[0.0; 5]); // dead on S1
        let ambiguous = clf.classify(&[10.0; 5]); // between S1 and S2
        assert!(confident.margin() > ambiguous.margin());
        assert!(ambiguous.margin() < 1e-9);
    }

    #[test]
    fn empty_profile_gives_uniform_scores() {
        let clf = StrokeClassifier::new(library());
        let c = clf.classify(&[]);
        for s in c.scores {
            assert!((s - 1.0 / 6.0).abs() < 1e-12);
        }
    }

    #[test]
    fn temperature_softens_scores() {
        let sharp = StrokeClassifier::new(library()).with_temperature(1.0);
        let soft = StrokeClassifier::new(library()).with_temperature(100.0);
        let probe = vec![0.0; 5];
        let cs = sharp.classify(&probe);
        let cf = soft.classify(&probe);
        assert!(cs.scores[0] > cf.scores[0], "low temperature should sharpen");
    }

    #[test]
    #[should_panic(expected = "temperature")]
    fn rejects_bad_temperature() {
        StrokeClassifier::new(library()).with_temperature(0.0);
    }

    /// A library of six distinct wavy templates (closer to real Doppler
    /// profiles than the constant library).
    fn wavy_library() -> TemplateLibrary {
        TemplateLibrary::new(Stroke::ALL.iter().map(|&s| {
            let k = s.index() as f64;
            let t: Vec<f64> = (0..30 + 4 * s.index())
                .map(|i| {
                    let x = i as f64 / (29 + 4 * s.index()) as f64;
                    (60.0 + 15.0 * k) * (std::f64::consts::PI * x).sin()
                        * if k >= 3.0 { -1.0 } else { 1.0 }
                        + 5.0 * (x * 7.0 + k).cos()
                })
                .collect();
            (s, t)
        }))
        .unwrap()
    }

    /// `nearest` must agree with `classify` — same stroke (same index
    /// tie-break) and the exact composite distance of the winner.
    #[test]
    fn nearest_matches_classify_exactly() {
        for clf in [
            StrokeClassifier::new(wavy_library()),
            StrokeClassifier::new(wavy_library()).with_weights(MatchWeights::raw_only()),
            StrokeClassifier::new(library()),
        ] {
            for trial in 0..12 {
                let len = 8 + 5 * trial;
                let probe: Vec<f64> = (0..len)
                    .map(|i| {
                        let x = i as f64 / (len - 1) as f64;
                        70.0 * (std::f64::consts::PI * x).sin()
                            + 8.0 * (x * 11.0 + trial as f64).sin()
                    })
                    .collect();
                let c = clf.classify(&probe);
                let (stroke, dist) = clf.nearest(&probe);
                assert_eq!(stroke, c.stroke, "trial {trial}");
                assert_eq!(dist, c.distances[c.stroke.index()], "trial {trial}");
            }
        }
    }

    #[test]
    fn nearest_handles_ties_and_empty_profiles_like_classify() {
        let clf = StrokeClassifier::new(library()).with_weights(MatchWeights::raw_only());
        // Dead centre between templates 0 (value 0) and 1 (value 20): an
        // exact tie, which classify resolves to the lower index.
        let tied = clf.classify(&[10.0; 4]);
        assert_eq!(clf.nearest(&[10.0; 4]).0, tied.stroke);
        // Empty profile: all distances infinite.
        let empty = clf.classify(&[]);
        let (stroke, dist) = clf.nearest(&[]);
        assert_eq!(stroke, empty.stroke);
        assert_eq!(dist, f64::INFINITY);
    }
}
