//! Streaming (chunked) recognition, mirroring the Android app's buffer
//! loop: "a process … stores collected data in buffer with a size of
//! 5 frames. When the buffer is full, data are fed to the following
//! processing flowchart" (Sec. IV-A).
//!
//! The recognizer accepts arbitrary audio chunks, reprocesses the buffered
//! window as frames complete, and emits a stroke as soon as its segment has
//! been stable for a safety margin (the segmenter's own nine-quiet-frames
//! rule plus a couple of frames). Consumed audio is eventually discarded so
//! memory stays bounded during long sessions.

use crate::engine::EchoWrite;
use echowrite_dtw::Classification;

/// An emitted streaming event: one recognized stroke.
#[derive(Debug, Clone)]
pub struct StrokeEvent {
    /// Classification of the stroke.
    pub classification: Classification,
    /// Segment start, in frames since the session began.
    pub start_frame: usize,
    /// Segment end, in frames since the session began.
    pub end_frame: usize,
}

/// A streaming wrapper around an [`EchoWrite`] engine.
///
/// # Example
///
/// ```
/// use echowrite::{EchoWrite, StreamingRecognizer};
/// let engine = EchoWrite::new();
/// let mut stream = StreamingRecognizer::new(&engine);
/// // Feeding silence produces no events.
/// let events = stream.push(&vec![0.0; 44_100]);
/// assert!(events.is_empty());
/// ```
#[derive(Debug)]
pub struct StreamingRecognizer<'a> {
    engine: &'a EchoWrite,
    buffer: Vec<f64>,
    /// Frozen static background captured from the session's opening frames.
    background: Option<Vec<f64>>,
    /// Frames already dropped from the front of the buffer.
    dropped_frames: usize,
    /// End frame (absolute) of the last emitted stroke.
    emitted_until: usize,
    /// Frames a segment must precede the buffer tail by to be stable.
    stability_margin: usize,
    /// Maximum buffered duration in samples before old audio is trimmed.
    max_samples: usize,
}

impl<'a> StreamingRecognizer<'a> {
    /// Creates a streaming recognizer over an engine.
    pub fn new(engine: &'a EchoWrite) -> Self {
        let cfg = engine.config();
        let margin = cfg.segment.end_run + 2;
        StreamingRecognizer {
            engine,
            buffer: Vec::new(),
            background: None,
            dropped_frames: 0,
            emitted_until: 0,
            stability_margin: margin,
            // Default window: 12 s of audio.
            max_samples: (12.0 * cfg.stft.sample_rate) as usize,
        }
    }

    /// Overrides the maximum buffered window (seconds).
    ///
    /// # Panics
    ///
    /// Panics if the window is shorter than one STFT frame.
    pub fn with_window_seconds(mut self, seconds: f64) -> Self {
        let cfg = self.engine.config();
        let samples = (seconds * cfg.stft.sample_rate) as usize;
        assert!(samples >= cfg.stft.fft_size, "window shorter than one frame");
        self.max_samples = samples;
        self
    }

    /// Appends audio and returns any newly stabilized strokes.
    pub fn push(&mut self, chunk: &[f64]) -> Vec<StrokeEvent> {
        self.buffer.extend_from_slice(chunk);
        let cfg = self.engine.config();
        // Freeze the static background from the session's opening frames
        // (only while the front of the buffer still *is* the opening).
        if self.background.is_none() && self.dropped_frames == 0 {
            let needed = cfg.stft.fft_size + (cfg.enhance.static_frames - 1) * cfg.stft.hop;
            if self.buffer.len() >= needed {
                self.background = self.engine.pipeline().estimate_background(&self.buffer);
            }
        }
        let analysis = self
            .engine
            .pipeline()
            .analyze_with_background(&self.buffer, self.background.as_deref());
        let total_frames = analysis.profile.len();

        let mut events = Vec::new();
        for seg in &analysis.segments {
            let abs_start = seg.start + self.dropped_frames;
            let abs_end = seg.end + self.dropped_frames;
            if abs_start < self.emitted_until {
                continue; // already emitted
            }
            if seg.end + self.stability_margin > total_frames {
                continue; // may still grow
            }
            let sub = analysis.profile.slice(seg.start, seg.end);
            let classification = self.engine.classifier().classify(sub.shifts());
            events.push(StrokeEvent {
                classification,
                start_frame: abs_start,
                end_frame: abs_end,
            });
            self.emitted_until = abs_end;
        }

        // Trim the front if the buffer outgrew the window, keeping frame
        // alignment (whole hops only) and never cutting into a segment that
        // has not been emitted yet (including its backtrack slack).
        if self.buffer.len() > self.max_samples && self.background.is_some() {
            let hop = cfg.stft.hop;
            let excess = self.buffer.len() - self.max_samples;
            let mut limit = total_frames.saturating_sub(self.stability_margin);
            for seg in &analysis.segments {
                let abs_end = seg.end + self.dropped_frames;
                if abs_end > self.emitted_until {
                    limit = limit.min(seg.start.saturating_sub(cfg.segment.max_backtrack));
                }
            }
            let drop_frames = (excess / hop).min(limit);
            if drop_frames > 0 {
                self.buffer.drain(..drop_frames * hop);
                self.dropped_frames += drop_frames;
            }
        }
        events
    }

    /// Recognized stroke count so far is implicit in the events returned by
    /// [`StreamingRecognizer::push`]; this returns the absolute frame up to
    /// which strokes have been emitted.
    pub fn emitted_until(&self) -> usize {
        self.emitted_until
    }

    /// Buffered samples not yet trimmed.
    pub fn buffered_samples(&self) -> usize {
        self.buffer.len()
    }

    /// Total frames of the session processed so far (absolute frame clock).
    pub fn frames_processed(&self) -> usize {
        let cfg = self.engine.config();
        let fft = cfg.stft.fft_size;
        let hop = cfg.stft.hop;
        let in_buffer = if self.buffer.len() < fft {
            0
        } else {
            (self.buffer.len() - fft) / hop + 1
        };
        self.dropped_frames + in_buffer
    }

    /// Clears all state for a new session.
    pub fn reset(&mut self) {
        self.buffer.clear();
        self.background = None;
        self.dropped_frames = 0;
        self.emitted_until = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echowrite_gesture::{Stroke, Writer, WriterParams};
    use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
    use std::sync::OnceLock;

    fn engine() -> &'static EchoWrite {
        static E: OnceLock<EchoWrite> = OnceLock::new();
        E.get_or_init(EchoWrite::new)
    }

    fn render(strokes: &[Stroke], seed: u64) -> Vec<f64> {
        let perf = Writer::new(WriterParams::nominal(), seed).write_sequence(strokes);
        Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), seed)
            .render(&perf.trajectory)
    }

    /// Renders a stroke sequence followed by `tail` seconds of rest (finger
    /// held still, carrier still on — digital zeros would be an unphysical
    /// carrier cutoff).
    fn render_with_tail(strokes: &[Stroke], seed: u64, tail: f64) -> Vec<f64> {
        let perf = Writer::new(WriterParams::nominal(), seed).write_sequence(strokes);
        let mut traj = perf.trajectory;
        let last = *traj.points().last().expect("non-empty");
        traj.hold(last, tail);
        Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), seed)
            .render(&traj)
    }

    #[test]
    fn streaming_matches_offline_for_a_sequence() {
        let e = engine();
        let strokes = [Stroke::S2, Stroke::S5, Stroke::S1];
        let audio = render_with_tail(&strokes, 21, 1.2);
        let offline = e.recognize_strokes(&audio);

        let mut stream = StreamingRecognizer::new(e);
        let mut streamed: Vec<Stroke> = Vec::new();
        // The Android app reads 5-frame buffers = 5 × 1024 samples.
        for chunk in audio.chunks(5 * 1024) {
            for ev in stream.push(chunk) {
                streamed.push(ev.classification.stroke);
            }
        }
        assert_eq!(streamed, offline.strokes(), "streaming vs offline mismatch");
    }

    #[test]
    fn events_carry_monotone_frames() {
        let e = engine();
        let audio = render_with_tail(&[Stroke::S3, Stroke::S6], 5, 1.2);
        let mut stream = StreamingRecognizer::new(e);
        let mut last_end = 0;
        let mut all = Vec::new();
        for chunk in audio.chunks(4096) {
            all.extend(stream.push(chunk));
        }
        assert!(!all.is_empty());
        for ev in &all {
            assert!(ev.start_frame >= last_end);
            assert!(ev.end_frame > ev.start_frame);
            last_end = ev.end_frame;
        }
        assert_eq!(stream.emitted_until(), last_end);
    }

    #[test]
    fn silence_emits_nothing() {
        let e = engine();
        let mut stream = StreamingRecognizer::new(e);
        assert!(stream.push(&vec![0.0; 88_200]).is_empty());
    }

    #[test]
    fn buffer_stays_bounded() {
        let e = engine();
        let mut stream = StreamingRecognizer::new(e).with_window_seconds(2.0);
        let audio = render(&[Stroke::S2], 13);
        for chunk in audio.chunks(8192) {
            stream.push(chunk);
        }
        // Push a long silent tail; the buffer must not grow unboundedly.
        for _ in 0..20 {
            stream.push(&vec![0.0; 22_050]);
        }
        assert!(
            stream.buffered_samples() <= (2.5 * 44_100.0) as usize,
            "buffer grew to {}",
            stream.buffered_samples()
        );
    }

    #[test]
    fn reset_clears_state() {
        let e = engine();
        let mut stream = StreamingRecognizer::new(e);
        stream.push(&render(&[Stroke::S2], 3));
        stream.push(&vec![0.0; 44_100]);
        stream.reset();
        assert_eq!(stream.buffered_samples(), 0);
        assert_eq!(stream.emitted_until(), 0);
    }

    #[test]
    #[should_panic(expected = "window shorter than one frame")]
    fn rejects_tiny_window() {
        let e = engine();
        let _ = StreamingRecognizer::new(e).with_window_seconds(0.01);
    }
}
