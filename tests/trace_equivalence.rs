//! The observability layer's zero-interference guarantee (DESIGN.md §6.5):
//! recognition output — segment boundaries, stroke labels, DTW scores, and
//! decoded words — is bitwise identical whether tracing is disabled, wired
//! to the no-op sink, or wired to the recording sink, on both streaming
//! front-ends. Tracing observes the pipeline; it must never perturb it.
//!
//! Also the Chrome-trace acceptance check: one streaming session through
//! `echowrite-serve` produces a trace with events in every stage lane
//! (stft → enhance → profile → segment → dtw → lang) plus the serve
//! queue/shard events, and the export is well-formed JSON.

use echowrite::{EchoWrite, EchoWriteConfig, StreamingRecognizer};
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_serve::{ServeConfig, ServeEvent, SessionId, SessionManager, SubmitVerdict};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use echowrite_trace::{EventKind, ScopedMode, Stage};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One engine per front-end, both with the causal streaming enhancement.
fn engines() -> &'static [EchoWrite; 2] {
    static E: OnceLock<[EchoWrite; 2]> = OnceLock::new();
    E.get_or_init(|| {
        [
            EchoWrite::with_config(EchoWriteConfig::streaming()),
            EchoWrite::with_config(EchoWriteConfig::streaming_downsampled(32)),
        ]
    })
}

fn render(strokes: &[Stroke], seed: u64, tail: f64) -> Vec<f64> {
    let perf = Writer::new(WriterParams::nominal(), seed).write_sequence(strokes);
    let mut traj = perf.trajectory;
    if tail > 0.0 {
        let last = *traj.points().last().expect("non-empty trajectory");
        traj.hold(last, tail);
    }
    Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), seed).render(&traj)
}

fn audio_pool() -> &'static Vec<Vec<f64>> {
    static P: OnceLock<Vec<Vec<f64>>> = OnceLock::new();
    P.get_or_init(|| {
        vec![
            render(&[Stroke::S2], 3, 1.0),
            render(&[Stroke::S4, Stroke::S1], 11, 1.2),
            // No rest tail: the last stroke is only decidable at finish.
            render(&[Stroke::S3, Stroke::S6, Stroke::S5], 29, 0.0),
        ]
    })
}

/// Everything recognition produces, in a bitwise-comparable form.
#[derive(Debug, PartialEq)]
struct Output {
    events: Vec<(usize, usize, Stroke, [u64; 6])>,
    words: Vec<String>,
}

/// Streams `audio` with the cycled chunk pattern, then decodes the stroke
/// sequence; every float is captured bit-for-bit.
fn run_session(engine: &EchoWrite, audio: &[f64], chunks: &[usize]) -> Output {
    let mut stream = StreamingRecognizer::new(engine);
    let mut events = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < audio.len() {
        let len = chunks[i % chunks.len()].min(audio.len() - pos);
        events.extend(stream.push(&audio[pos..pos + len]));
        pos += len;
        i += 1;
    }
    events.extend(stream.finish());
    let strokes: Vec<Stroke> = events.iter().map(|ev| ev.classification.stroke).collect();
    let words = engine
        .decode_sequence(&strokes)
        .into_iter()
        .map(|c| c.word)
        .collect();
    Output {
        events: events
            .into_iter()
            .map(|ev| {
                (
                    ev.start_frame,
                    ev.end_frame,
                    ev.classification.stroke,
                    ev.classification.scores.map(f64::to_bits),
                )
            })
            .collect(),
        words,
    }
}

/// Runs one session under each sink mode, asserting bitwise-equal output.
fn assert_sink_invariance(engine_idx: usize, audio: &[f64], chunks: &[usize]) {
    let engine = &engines()[engine_idx];
    let baseline = {
        let _scope = echowrite_trace::scoped(ScopedMode::Disabled);
        run_session(engine, audio, chunks)
    };
    let with_noop = {
        let _scope = echowrite_trace::scoped(ScopedMode::Noop);
        run_session(engine, audio, chunks)
    };
    let with_recording = {
        let scope = echowrite_trace::scoped(ScopedMode::Recording(1 << 16));
        let out = run_session(engine, audio, chunks);
        let rec = scope.recording().expect("recording scope has a sink");
        if !out.events.is_empty() {
            assert!(!rec.is_empty(), "a stroke-producing session must record events");
        }
        out
    };
    assert_eq!(baseline, with_noop, "no-op sink perturbed recognition output");
    assert_eq!(baseline, with_recording, "recording sink perturbed recognition output");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random chunkings, random scenario, both front-ends: sink mode never
    /// changes a single output bit.
    #[test]
    fn output_is_bitwise_identical_across_sink_modes(
        chunks in prop::collection::vec(1usize..16_385, 1..12),
        case_idx in 0usize..3,
        engine_idx in 0usize..2,
    ) {
        assert_sink_invariance(engine_idx, &audio_pool()[case_idx], &chunks);
    }
}

/// A fixed edge chunking on both front-ends, outside proptest, so the
/// invariance holds in `--test-threads=1` CI runs even if proptest shrinks.
#[test]
fn output_is_bitwise_identical_for_hop_aligned_chunks() {
    for engine_idx in [0usize, 1] {
        assert_sink_invariance(engine_idx, &audio_pool()[1], &[5 * 1024]);
    }
}

/// The ISSUE acceptance check: a streaming session pushed through the
/// sharded serve layer yields a Chrome trace with events in every pipeline
/// stage lane, spans in each, serve queue/shard events, and parseable JSON
/// framing.
#[test]
fn serve_session_trace_covers_every_stage() {
    let scope = echowrite_trace::scoped(ScopedMode::Recording(1 << 16));

    // Engine construction itself traces template generation, so build it
    // inside the scope: the trace shows startup *and* session work.
    let engine = EchoWrite::with_config(EchoWriteConfig::streaming());
    let gateway = engine.clone();
    let manager = SessionManager::new(engine, ServeConfig::default()).expect("valid serve config");
    let id = SessionId(7);
    assert_eq!(manager.open(id), SubmitVerdict::Enqueued);
    let audio = render(&[Stroke::S2, Stroke::S5], 21, 1.2);
    for chunk in audio.chunks(5 * 1024) {
        // The default queue is deep enough that a single writer never
        // overflows it; quiesce would otherwise mask a real regression.
        assert_eq!(manager.push(id, chunk), SubmitVerdict::Enqueued);
    }
    assert_eq!(manager.finish(id), SubmitVerdict::Enqueued);
    manager.quiesce();

    let mut events = Vec::new();
    manager.try_events(&mut events);
    let strokes: Vec<Stroke> = events
        .iter()
        .filter_map(|ev| match ev {
            ServeEvent::Segment { segment, .. } => {
                segment.classification.as_ref().map(|c| c.stroke)
            }
            _ => None,
        })
        .collect();
    assert!(!strokes.is_empty(), "the session must produce strokes");
    let candidates = gateway.decode_sequence(&strokes);
    assert!(!candidates.is_empty(), "the transcript must decode to candidates");
    // The pruned nearest-neighbour path (LB-Keogh + early abandon) is not on
    // the serve classify flow; drive it directly so its prune counters land
    // in the same trace.
    let ramp: Vec<f64> = (0..40).map(|i| f64::from(i) * 5.0).collect();
    let _ = gateway.classifier().nearest(&ramp);

    let rec = scope.recording().expect("recording scope has a sink").clone();
    let recorded = rec.events();

    // Every pipeline stage lane must be populated, with at least one span.
    for stage in [
        Stage::Stft,
        Stage::Enhance,
        Stage::Profile,
        Stage::Segment,
        Stage::Dtw,
        Stage::Lang,
        Stage::Stream,
        Stage::Serve,
    ] {
        assert!(
            recorded.iter().any(|e| e.stage == stage),
            "no trace events in the {stage} lane"
        );
        assert!(
            recorded.iter().any(|e| e.stage == stage && e.kind == EventKind::Span),
            "no spans in the {stage} lane"
        );
    }
    // The serve lane must carry the shard lifecycle.
    for name in ["session_open", "push", "session_finish"] {
        assert!(
            recorded.iter().any(|e| e.stage == Stage::Serve && e.name == name),
            "serve lane missing {name:?}"
        );
    }
    // DTW observability: the classify counters and the pruned path's
    // lower-bound/early-abandon/full-evaluation tallies.
    for name in ["templates_scored", "classified", "lb_skips", "early_abandons", "full_dtws"] {
        assert!(
            recorded.iter().any(|e| e.stage == Stage::Dtw && e.name == name),
            "dtw lane missing counter {name:?}"
        );
    }
    assert!(
        recorded
            .iter()
            .any(|e| e.stage == Stage::Lang && e.name == "hypothesis"),
        "lang lane missing per-hypothesis events"
    );

    // The export is well-formed Chrome trace_event JSON framing.
    let json = rec.to_chrome_json();
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(json.ends_with("]}"));
    assert!(json.contains("\"ph\":\"X\""), "export must contain complete spans");
    assert!(json.contains("\"ph\":\"M\""), "export must name the stage lanes");
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "unbalanced braces in trace JSON"
    );
    // No raw control characters survive escaping (valid-JSON necessary
    // condition that a full parser would enforce).
    assert!(json.chars().all(|c| c >= ' '), "unescaped control character in trace JSON");

    // And the per-stage summary reports the same coverage.
    let summary = rec.summary_text();
    for lane in ["stft", "enhance", "profile", "segment", "dtw", "lang", "stream", "serve"] {
        assert!(summary.contains(lane), "summary missing the {lane} lane:\n{summary}");
    }
}

/// With tracing disabled (the default), a full session records nothing and
/// `enabled()` stays false throughout — the no-overhead contract's
/// functional half.
#[test]
fn disabled_tracing_records_nothing() {
    let scope = echowrite_trace::scoped(ScopedMode::Disabled);
    assert!(!echowrite_trace::enabled());
    let engine = &engines()[0];
    let audio = &audio_pool()[0];
    let mut stream = StreamingRecognizer::new(engine);
    for chunk in audio.chunks(4096) {
        let _ = stream.push(chunk);
    }
    let _ = stream.finish();
    assert!(!echowrite_trace::enabled());
    assert!(scope.recording().is_none());
}
