//! The transmitted probe tone.

/// Configuration of the inaudible probe tone the speaker emits.
///
/// The paper uses a continuous 20 kHz sinusoid sampled at 44.1 kHz.
///
/// # Example
///
/// ```
/// use echowrite_synth::ToneConfig;
/// let t = ToneConfig::paper();
/// assert_eq!(t.frequency, 20_000.0);
/// assert_eq!(t.sample_rate, 44_100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToneConfig {
    /// Carrier frequency in Hz.
    pub frequency: f64,
    /// Sample rate in Hz.
    pub sample_rate: f64,
    /// Emitted amplitude (full scale = 1.0).
    pub amplitude: f64,
}

impl ToneConfig {
    /// The paper's tone: 20 kHz at 44.1 kHz sampling, full amplitude.
    pub fn paper() -> Self {
        ToneConfig { frequency: 20_000.0, sample_rate: 44_100.0, amplitude: 1.0 }
    }

    /// Generates `n` samples of the transmitted tone.
    pub fn generate(&self, n: usize) -> Vec<f64> {
        let w = std::f64::consts::TAU * self.frequency / self.sample_rate;
        (0..n).map(|i| self.amplitude * (w * i as f64).sin()).collect()
    }

    /// The maximum Doppler shift (Hz) for a scatterer moving at `v` m/s in
    /// a monostatic (co-located speaker/mic) geometry — the paper's Eq. 1.
    ///
    /// `Δf = f₀ · |1 − (c + v)/(c − v)| = 2 f₀ v / (c − v)`
    pub fn max_doppler_shift(&self, v: f64) -> f64 {
        let c = crate::SPEED_OF_SOUND;
        self.frequency * (1.0 - (c + v) / (c - v)).abs()
    }

    /// The region of interest `[f₀ − Δf, f₀ + Δf]` for a maximum finger
    /// speed of `v_max` m/s (paper: 4 m/s ⇒ roughly [19 530, 20 470] Hz).
    pub fn roi(&self, v_max: f64) -> (f64, f64) {
        let df = self.max_doppler_shift(v_max);
        (self.frequency - df, self.frequency + df)
    }
}

impl Default for ToneConfig {
    fn default() -> Self {
        ToneConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_roi_matches_eq1() {
        let t = ToneConfig::paper();
        // The paper computes ~470.6 Hz for v = 4 m/s.
        let df = t.max_doppler_shift(4.0);
        assert!((df - 476.2).abs() < 10.0, "Δf = {df}");
        let (lo, hi) = t.roi(4.0);
        assert!(lo > 19_500.0 && lo < 19_560.0, "lo {lo}");
        assert!(hi > 20_440.0 && hi < 20_500.0, "hi {hi}");
    }

    #[test]
    fn doppler_shift_zero_at_rest() {
        assert_eq!(ToneConfig::paper().max_doppler_shift(0.0), 0.0);
    }

    #[test]
    fn doppler_shift_monotone_in_speed() {
        let t = ToneConfig::paper();
        assert!(t.max_doppler_shift(2.0) < t.max_doppler_shift(4.0));
    }

    #[test]
    fn generate_produces_unit_sine() {
        let t = ToneConfig { frequency: 11_025.0, sample_rate: 44_100.0, amplitude: 0.5 };
        let s = t.generate(8);
        // 11.025 kHz at 44.1 kHz is a quarter-period per sample: 0, ½, 0, −½…
        assert!(s[0].abs() < 1e-12);
        assert!((s[1] - 0.5).abs() < 1e-12);
        assert!(s[2].abs() < 1e-9);
        assert!((s[3] + 0.5).abs() < 1e-9);
    }

    #[test]
    fn generate_length() {
        assert_eq!(ToneConfig::paper().generate(1000).len(), 1000);
        assert!(ToneConfig::paper().generate(0).is_empty());
    }
}
