//! Text-entry session simulation.
//!
//! Figures 16–18 measure words/letters per minute while participants enter
//! phrase blocks. A session combines:
//!
//! - **motion time** from the participant's (practice-adjusted) writer
//!   parameters — stroke traversal, withdraw, inter-stroke pause,
//! - **cognition** — per-stroke recall/thinking time that shrinks with
//!   practice,
//! - **recognition** — observed strokes sampled from the calibrated
//!   confusion matrix plus the participant's own memory slips, decoded by
//!   the real Algorithm-2 decoder,
//! - **interaction** — candidate selection (auto-commit for top-1, a tap
//!   for lower ranks), word retries when the target misses the top-k list,
//!   and 2-gram next-word prediction that lets frequent continuations be
//!   accepted without writing (the paper's "automatic successive
//!   associations").

use crate::participant::Participant;
use echowrite_dtw::ConfusionMatrix;
use echowrite_gesture::{InputScheme, Stroke};
use echowrite_lang::{NextWordPredictor, WordDecoder};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Interaction-cost constants of a session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Candidates shown (paper: 5).
    pub top_k: usize,
    /// Effective cost of the top-1 auto-commit (the paper commits after
    /// 1 s idle, but the user overlaps it with the next word's first
    /// stroke, so the effective serial cost is smaller).
    pub commit_time: f64,
    /// Time to tap a non-top-1 candidate from the list.
    pub select_time: f64,
    /// Time to scan suggestions and accept a predicted next word.
    pub accept_prediction_time: f64,
    /// How many prediction slots the user actually scans.
    pub prediction_slots: usize,
    /// Maximum rewrites when the word misses the candidate list.
    pub retry_limit: usize,
    /// Whether 2-gram next-word prediction is enabled.
    pub enable_prediction: bool,
}

impl SessionConfig {
    /// The paper's interaction setting.
    pub fn paper() -> Self {
        SessionConfig {
            top_k: 5,
            commit_time: 0.35,
            select_time: 0.8,
            accept_prediction_time: 0.7,
            prediction_slots: 2,
            retry_limit: 1,
            enable_prediction: true,
        }
    }
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig::paper()
    }
}

/// Outcome of entering a word list.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SessionOutcome {
    /// Total session time in seconds.
    pub seconds: f64,
    /// Words entered.
    pub words: usize,
    /// Letters entered (sum of word lengths).
    pub letters: usize,
    /// Words committed incorrectly after exhausting retries.
    pub word_errors: usize,
    /// Words accepted directly from next-word prediction.
    pub predicted_words: usize,
}

impl SessionOutcome {
    /// Words per minute.
    pub fn wpm(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.words as f64 * 60.0 / self.seconds
        }
    }

    /// Letters per minute.
    pub fn lpm(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.letters as f64 * 60.0 / self.seconds
        }
    }

    /// Fraction of words committed correctly.
    pub fn accuracy(&self) -> f64 {
        if self.words == 0 {
            1.0
        } else {
            1.0 - self.word_errors as f64 / self.words as f64
        }
    }
}

/// A text-entry session simulator bound to decoder + confusion + predictor.
#[derive(Debug)]
pub struct TextEntrySession<'a> {
    decoder: &'a WordDecoder,
    confusion: &'a ConfusionMatrix,
    predictor: &'a NextWordPredictor,
    scheme: InputScheme,
    config: SessionConfig,
    rng: ChaCha8Rng,
}

impl<'a> TextEntrySession<'a> {
    /// Creates a session simulator.
    pub fn new(
        decoder: &'a WordDecoder,
        confusion: &'a ConfusionMatrix,
        predictor: &'a NextWordPredictor,
        config: SessionConfig,
        seed: u64,
    ) -> Self {
        TextEntrySession {
            decoder,
            confusion,
            predictor,
            scheme: InputScheme::paper(),
            config,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Samples the observed stroke for a written stroke from the raw
    /// empirical confusion rates.
    fn observe(&mut self, truth: Stroke) -> Stroke {
        let mut u: f64 = self.rng.gen();
        for observed in Stroke::ALL {
            let p = self.confusion.rate(observed, truth);
            if u < p {
                return observed;
            }
            u -= p;
        }
        truth
    }

    /// Time to physically write one stroke at a practice level, seconds.
    fn stroke_motion_time(&self, participant: &Participant, session: usize, stroke: Stroke) -> f64 {
        let w = participant.writer_at(session);
        w.base_duration * stroke.relative_duration() + w.withdraw_duration + w.pause
    }

    /// Enters one word; returns (seconds, correct, predicted).
    fn enter_word(
        &mut self,
        word: &str,
        previous: Option<&str>,
        participant: &Participant,
        session: usize,
    ) -> (f64, bool, bool) {
        // 2-gram prediction: accept the word from suggestions when offered.
        if self.config.enable_prediction {
            if let Some(prev) = previous {
                let preds = self.predictor.predict(prev, self.config.prediction_slots);
                if preds.iter().any(|p| p == word) {
                    return (self.config.accept_prediction_time, true, true);
                }
            }
        }

        let Ok(truth) = self.scheme.encode_word(word) else {
            return (0.0, false, false);
        };
        let slip = participant.slip_at(session);
        let think = participant.think_at(session);

        let mut elapsed = 0.0;
        for attempt in 0..=self.config.retry_limit {
            // Write every stroke (with possible memory slips), observing
            // through the recognizer's confusion statistics.
            let mut observed = Vec::with_capacity(truth.len());
            for &s in &truth {
                elapsed += think + self.stroke_motion_time(participant, session, s);
                let written = if self.rng.gen::<f64>() < slip {
                    // A slip writes a uniformly random other stroke.
                    let mut alt = Stroke::ALL[self.rng.gen_range(0..6usize)];
                    if alt == s {
                        alt = Stroke::ALL[(s.index() + 1) % 6];
                    }
                    alt
                } else {
                    s
                };
                observed.push(self.observe(written));
            }

            let candidates = self.decoder.decode(&observed);
            let rank = candidates.iter().position(|c| c.word == word);
            match rank {
                Some(0) => {
                    elapsed += self.config.commit_time;
                    return (elapsed, true, false);
                }
                Some(r) if r < self.config.top_k => {
                    elapsed += self.config.select_time;
                    return (elapsed, true, false);
                }
                _ => {
                    // Miss: on the last attempt commit whatever is top-1.
                    if attempt == self.config.retry_limit {
                        elapsed += self.config.commit_time;
                        return (elapsed, false, false);
                    }
                    // Otherwise clear and rewrite.
                    elapsed += self.config.select_time;
                }
            }
        }
        unreachable!("loop always returns");
    }

    /// Enters a list of words as one session at a given practice level.
    pub fn enter_words(
        &mut self,
        words: &[&str],
        participant: &Participant,
        session: usize,
    ) -> SessionOutcome {
        let mut out = SessionOutcome::default();
        let mut previous: Option<&str> = None;
        for &w in words {
            let (secs, correct, predicted) = self.enter_word(w, previous, participant, session);
            out.seconds += secs;
            out.words += 1;
            out.letters += w.len();
            if !correct {
                out.word_errors += 1;
            }
            if predicted {
                out.predicted_words += 1;
            }
            previous = Some(w);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echowrite_corpus::Lexicon;
    use echowrite_lang::Dictionary;
    use std::sync::OnceLock;

    fn decoder() -> &'static WordDecoder {
        static D: OnceLock<WordDecoder> = OnceLock::new();
        D.get_or_init(|| {
            WordDecoder::new(Dictionary::build(Lexicon::embedded(), &InputScheme::paper()))
        })
    }

    fn confusion() -> &'static ConfusionMatrix {
        static C: OnceLock<ConfusionMatrix> = OnceLock::new();
        C.get_or_init(|| {
            // A reliable recognizer: 93 % diagonal.
            let mut m = ConfusionMatrix::new();
            for t in Stroke::ALL {
                for _ in 0..93 {
                    m.record(t, t);
                }
                for o in Stroke::ALL {
                    if o != t {
                        m.record(t, o);
                    }
                }
                // 93 correct + 5 spread + 2 extra on a known confuser.
                m.record(t, Stroke::ALL[(t.index() + 1) % 6]);
                m.record(t, Stroke::ALL[(t.index() + 1) % 6]);
            }
            m
        })
    }

    fn predictor() -> &'static NextWordPredictor {
        static P: OnceLock<NextWordPredictor> = OnceLock::new();
        P.get_or_init(NextWordPredictor::embedded)
    }

    fn session(seed: u64) -> TextEntrySession<'static> {
        TextEntrySession::new(decoder(), confusion(), predictor(), SessionConfig::paper(), seed)
    }

    #[test]
    fn outcome_rates() {
        let o = SessionOutcome { seconds: 120.0, words: 16, letters: 60, word_errors: 2, predicted_words: 1 };
        assert!((o.wpm() - 8.0).abs() < 1e-12);
        assert!((o.lpm() - 30.0).abs() < 1e-12);
        assert!((o.accuracy() - 0.875).abs() < 1e-12);
        assert_eq!(SessionOutcome::default().wpm(), 0.0);
        assert_eq!(SessionOutcome::default().accuracy(), 1.0);
    }

    #[test]
    fn entering_words_is_deterministic_per_seed() {
        let p = Participant::new(1, 5);
        let words = ["the", "people", "by", "the", "water"];
        let a = session(3).enter_words(&words, &p, 1);
        let b = session(3).enter_words(&words, &p, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn practice_increases_speed() {
        let p = Participant::new(2, 5);
        let words: Vec<&str> = ["come", "and", "get", "it", "sit", "down", "now", "and", "then"]
            .into();
        let early = session(7).enter_words(&words, &p, 1);
        let late = session(7).enter_words(&words, &p, 13);
        assert!(
            late.wpm() > 1.5 * early.wpm(),
            "practice effect too weak: {} vs {}",
            late.wpm(),
            early.wpm()
        );
    }

    #[test]
    fn prediction_accelerates_frequent_continuations() {
        let p = Participant::new(3, 5);
        // "of the" — "the" is the top bigram successor of "of".
        let words = ["of", "the", "of", "the", "of", "the"];
        let with = session(9).enter_words(&words, &p, 5);
        let mut cfg = SessionConfig::paper();
        cfg.enable_prediction = false;
        let mut s = TextEntrySession::new(decoder(), confusion(), predictor(), cfg, 9);
        let without = s.enter_words(&words, &p, 5);
        assert!(with.predicted_words >= 3);
        assert_eq!(without.predicted_words, 0);
        assert!(with.seconds < without.seconds);
    }

    #[test]
    fn word_accuracy_is_high_with_reliable_recognizer() {
        let p = Participant::new(4, 5);
        let words = ["the", "people", "water", "time", "down", "good", "day"];
        let o = session(11).enter_words(&words, &p, 10);
        assert!(o.accuracy() >= 0.7, "accuracy {}", o.accuracy());
        assert_eq!(o.words, 7);
        assert_eq!(o.letters, 29);
    }

    #[test]
    fn unknown_characters_fail_softly() {
        let p = Participant::new(5, 5);
        let o = session(13).enter_words(&["it's"], &p, 1);
        assert_eq!(o.word_errors, 1);
    }
}
