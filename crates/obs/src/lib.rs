//! `echowrite-obs` — the live introspection plane (DESIGN.md §6.11).
//!
//! A dependency-free HTTP/1.1 admin server that runs beside the wire
//! listener and exposes the serving layer's internals without stopping
//! it: Prometheus metrics, liveness/readiness probes that reflect the
//! admission controller's shed state, the per-shard live session table,
//! on-demand Chrome-trace recording (start/stop/dump without a restart),
//! and targeted dumps of the always-on flight recorder.
//!
//! The plane holds only a [`Weak`](std::sync::Weak) reference to the
//! [`SessionManager`](echowrite_serve::SessionManager): it can never
//! keep the serving layer alive, and every manager-backed endpoint
//! degrades to `503` after the manager shuts down while `/healthz`
//! keeps answering — liveness and readiness stay distinguishable
//! through the whole shutdown sequence.
//!
//! ```no_run
//! use echowrite::{EchoWrite, EchoWriteConfig};
//! use echowrite_obs::ObsServer;
//! use echowrite_serve::{ServeConfig, SessionManager};
//! use std::sync::Arc;
//!
//! let engine = EchoWrite::with_config(EchoWriteConfig::streaming());
//! let manager =
//!     Arc::new(SessionManager::new(engine, ServeConfig::default()).expect("valid config"));
//! let obs = ObsServer::bind("127.0.0.1:0", Arc::downgrade(&manager)).expect("bind");
//! println!("admin plane at http://{}", obs.local_addr());
//! // ... curl http://<addr>/metrics, /sessions, /flight ...
//! obs.shutdown();
//! ```

pub mod http;
pub mod server;

pub use http::{HttpRequest, Method, RequestError};
pub use server::ObsServer;
