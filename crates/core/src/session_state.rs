//! Plain-data snapshots of [`StreamingSession`](crate::StreamingSession)
//! state.
//!
//! A [`SessionState`] captures every *dynamic* field of a session — the
//! front-end's pending audio, the enhancement windows and frozen
//! background, the profile/differentiation tails, the segmenter's
//! interpreter position, the replay oracle's buffered window and dedup
//! intervals, and the per-session sample clock — and nothing that is
//! derived from the engine configuration (FFT plans, FIR taps, thresholds,
//! window coefficients). Restoring a state onto a session built from an
//! identically configured engine therefore resumes *bitwise* where the
//! exported session left off: no wall clocks or other ambient inputs exist
//! anywhere in the captured state, so `restore(export(s))` is deterministic
//! by construction.
//!
//! The types here are deliberately plain data with public fields: the
//! `echowrite-snapshot` crate encodes them into a compact versioned binary
//! form for eviction to disk, shard migration, and crash recovery, and a
//! decoder must be able to build them field by field. All structural
//! invariants are re-validated at restore time
//! ([`StreamingSession::restore_state`](crate::StreamingSession::restore_state)
//! returns [`RestoreError`] instead of panicking on garbage), so a decoded
//! state is never trusted.

use echowrite_dsp::downconvert::StreamingDownconverterState;
use echowrite_dsp::stft::StreamingStftState;
use echowrite_dsp::Complex;
use echowrite_profile::{IncrementalDiffState, ProfileBuilderState, StreamingSegmenterState};
use echowrite_spectro::EnhancerState;
use std::fmt;

/// State extraction for suspendable components: captures every dynamic
/// field into a plain-data value that a snapshot codec can encode.
///
/// The inverse direction is intentionally not part of the trait: restoring
/// needs the engine (to rebuild config-derived plans and validate the state
/// against the configured geometry), so it lives on the concrete types —
/// see [`StreamingSession::restore_state`](crate::StreamingSession::restore_state)
/// and [`StreamingSession::from_state`](crate::StreamingSession::from_state).
pub trait SnapshotState {
    /// The captured plain-data state.
    type State;

    /// Captures the component's dynamic state.
    fn export_state(&self) -> Self::State;
}

/// Complete dynamic state of one [`StreamingSession`](crate::StreamingSession).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionState {
    /// Whether `finish_events` has run.
    pub finished: bool,
    /// Total input samples pushed — the session's logical clock.
    pub samples_in: u64,
    /// Implementation-specific state (incremental or replay).
    pub body: SessionBody,
}

/// The per-implementation half of a [`SessionState`].
// A session export is a short-lived value moved straight into the codec;
// both variants' real weight is in their heap buffers, so boxing the
// larger one would add indirection without shrinking anything that matters.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum SessionBody {
    /// State of the full-window replay oracle.
    Replay(ReplayState),
    /// State of the incremental path.
    Incremental(IncrementalState),
}

/// Dynamic state of the replay (full re-analysis) streaming path.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayState {
    /// The buffered audio window.
    pub buffer: Vec<f64>,
    /// Frozen static background captured from the session's opening frames.
    pub background: Option<Vec<f64>>,
    /// Frames already dropped from the front of the buffer.
    pub dropped_frames: u64,
    /// Absolute `(start, end)` intervals of emitted strokes.
    pub emitted: Vec<(u64, u64)>,
    /// Largest emitted end frame.
    pub emitted_until: u64,
    /// Maximum buffered duration in samples (the window override survives
    /// suspension).
    pub max_samples: u64,
}

/// Dynamic state of the incremental streaming path.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalState {
    /// Front-end state (full-rate STFT or decimating down-converter).
    pub front: FrontState,
    /// Per-column processing chain state.
    pub chain: ChainState,
    /// Raw spectrogram columns produced by the front-end.
    pub frames_in: u64,
    /// The absolute frame up to which strokes have been emitted.
    pub emitted_until: u64,
}

/// State of the incremental path's spectrogram front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontState {
    /// Full-rate streaming STFT state.
    Full(StreamingStftState),
    /// Decimating down-converter front-end state.
    Down(DownState),
}

/// State of the decimating front-end: the streaming down-converter plus the
/// baseband framing cursor.
#[derive(Debug, Clone, PartialEq)]
pub struct DownState {
    /// Streaming down-converter state.
    pub sdc: StreamingDownconverterState,
    /// Baseband samples not yet fully consumed by framing.
    pub baseband: Vec<Complex>,
    /// Absolute baseband index of `baseband[0]`.
    pub base: u64,
    /// Next baseband frame to extract.
    pub next_frame: u64,
}

/// State of the per-column chain: enhancement → MVCE/SMA → differentiation
/// → segmentation.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainState {
    /// Incremental enhancer state.
    pub enhancer: EnhancerState,
    /// Profile builder (MVCE + SMA) state.
    pub builder: ProfileBuilderState,
    /// Noise-robust differentiator state.
    pub diff: IncrementalDiffState,
    /// Segmenter state machine.
    pub segmenter: StreamingSegmenterState,
}

/// Why restoring a [`SessionState`] was refused. The receiving session is
/// left in an unspecified (but memory-safe) state on error; reset it before
/// reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreError {
    /// The state's flavor (incremental vs replay) disagrees with the
    /// engine's resolved streaming mode.
    ModeMismatch,
    /// The state's front-end disagrees with the engine's configured
    /// front-end.
    FrontendMismatch,
    /// A section violates a structural invariant; the message names the
    /// failed check.
    Invalid(&'static str),
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::ModeMismatch => {
                write!(f, "session state flavor disagrees with the engine's streaming mode")
            }
            RestoreError::FrontendMismatch => {
                write!(f, "session state front-end disagrees with the engine's front-end")
            }
            RestoreError::Invalid(msg) => write!(f, "invalid session state: {msg}"),
        }
    }
}

impl std::error::Error for RestoreError {}
