//! Lane-remainder equivalence for the SIMD kernel layer.
//!
//! Every vectorized kernel processes full lanes and then a scalar tail; the
//! off-by-one bugs live at that boundary. These properties pin each public
//! kernel to its `_ref` scalar reference at exactly the awkward lengths —
//! `1`, `lane−1`, `lane+1`, `2·lane+1`, and odd ROI band widths — under
//! whatever backend the dispatcher selected for this process. Running the
//! binary with `ECHOWRITE_SIMD=scalar` turns the same suite into a
//! scalar-vs-scalar self-check (CI runs both).
//!
//! Bitwise-class kernels are compared by `f64::to_bits`; the two
//! reassociating reductions (`fir_complex_dot`, `envelope_charge`) get the
//! documented 1e-9 tolerance.

use echowrite_dsp::kernels;
use echowrite_dsp::Complex;
use proptest::prelude::*;

/// Upper bound of the length sweep — larger than `2·lane+1` for every
/// backend (AVX2's 4 f64 lanes included) plus the odd ROI band widths.
const MAX_LEN: usize = 34;

/// The lengths where a lane/tail split can go wrong, for the selected
/// backend (scalar reports 1 lane; the widths still cover the SIMD shapes).
fn remainder_lengths() -> Vec<usize> {
    let lane = kernels::backend().f64_lanes().max(2);
    let mut ls = vec![1, lane - 1, lane + 1, 2 * lane + 1, 7, 13, 33];
    ls.sort_unstable();
    ls.dedup();
    ls
}

fn sig() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, MAX_LEN)
}

fn complex(re: &[f64], im: &[f64]) -> Vec<Complex> {
    re.iter().zip(im).map(|(&r, &i)| Complex::new(r, i)).collect()
}

#[track_caller]
fn assert_bits(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: lane mismatch at {i}: {x} vs {y}");
    }
}

#[track_caller]
fn assert_bits_c(a: &[Complex], b: &[Complex], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: re mismatch at {i}");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: im mismatch at {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // ---------- Elementwise maps (bitwise) ----------

    #[test]
    fn elementwise_match_ref_at_remainders(
        a in sig(), b in sig(), s in -50.0f64..50.0, alpha in 0.0f64..2.0
    ) {
        for n in remainder_lengths() {
            let (a, b) = (&a[..n], &b[..n]);

            let mut fast = vec![0.0; n];
            let mut slow = vec![0.0; n];
            kernels::mul_into(&mut fast, a, b);
            kernels::mul_into_ref(&mut slow, a, b);
            assert_bits(&fast, &slow, "mul_into");

            let mut fast = a.to_vec();
            let mut slow = a.to_vec();
            kernels::subtract_clamp(&mut fast, s);
            kernels::subtract_clamp_ref(&mut slow, s);
            assert_bits(&fast, &slow, "subtract_clamp");

            let mut fast = a.to_vec();
            let mut slow = a.to_vec();
            kernels::subtract_clamp_bg(&mut fast, b);
            kernels::subtract_clamp_bg_ref(&mut slow, b);
            assert_bits(&fast, &slow, "subtract_clamp_bg");

            let mut fast = a.to_vec();
            let mut slow = a.to_vec();
            kernels::threshold_zero(&mut fast, alpha);
            kernels::threshold_zero_ref(&mut slow, alpha);
            assert_bits(&fast, &slow, "threshold_zero");

            let mut fast = a.to_vec();
            let mut slow = a.to_vec();
            kernels::binarize(&mut fast, s);
            kernels::binarize_ref(&mut slow, s);
            assert_bits(&fast, &slow, "binarize");

            let mut fast = vec![0.0; n];
            let mut slow = vec![0.0; n];
            kernels::abs_diff_broadcast_into(&mut fast, s, b);
            kernels::abs_diff_broadcast_into_ref(&mut slow, s, b);
            assert_bits(&fast, &slow, "abs_diff_broadcast_into");

            let mut fast = a.to_vec();
            let mut slow = a.to_vec();
            kernels::axpy(&mut fast, b, s);
            kernels::axpy_ref(&mut slow, b, s);
            assert_bits(&fast, &slow, "axpy");
        }
    }

    #[test]
    fn scale_complex_matches_ref_at_remainders(re in sig(), im in sig(), w in sig()) {
        let src = complex(&re, &im);
        for n in remainder_lengths() {
            let mut fast = vec![Complex::ZERO; n];
            let mut slow = vec![Complex::ZERO; n];
            kernels::scale_complex_into(&mut fast, &src[..n], &w[..n]);
            kernels::scale_complex_into_ref(&mut slow, &src[..n], &w[..n]);
            assert_bits_c(&fast, &slow, "scale_complex_into");
        }
    }

    // ---------- Structured passes (bitwise) ----------

    #[test]
    fn butterfly_pass_matches_ref_at_remainders(
        ur in sig(), ui in sig(), vr in sig(), vi in sig(), tr in sig(), ti in sig(),
        inverse in any::<bool>()
    ) {
        let (u, v, tw) = (complex(&ur, &ui), complex(&vr, &vi), complex(&tr, &ti));
        for n in remainder_lengths() {
            let (mut fu, mut fv) = (u[..n].to_vec(), v[..n].to_vec());
            let (mut su, mut sv) = (u[..n].to_vec(), v[..n].to_vec());
            kernels::butterfly_pass(&mut fu, &mut fv, &tw[..n], inverse);
            kernels::butterfly_pass_ref(&mut su, &mut sv, &tw[..n], inverse);
            assert_bits_c(&fu, &su, "butterfly_pass u");
            assert_bits_c(&fv, &sv, "butterfly_pass v");
        }
    }

    #[test]
    fn realfft_split_matches_ref_at_remainders(
        pr in sig(), pi in sig(), tr in sig(), ti in sig()
    ) {
        let (packed, tw) = (complex(&pr, &pi), complex(&tr, &ti));
        for m in remainder_lengths() {
            let mut fast = vec![Complex::ZERO; m];
            let mut slow = vec![Complex::ZERO; m];
            kernels::realfft_split(&mut fast, &packed[..m], &tw[..m]);
            kernels::realfft_split_ref(&mut slow, &packed[..m], &tw[..m]);
            // Interior bins only: out[0] (DC) is the caller's business.
            assert_bits_c(&fast[1..], &slow[1..], "realfft_split");
        }
    }

    #[test]
    fn conv1d_matches_ref_at_odd_band_widths(src in sig(), taps in sig(), tn in 0usize..3) {
        let taps = &taps[..[1usize, 3, 5][tn]];
        for n in remainder_lengths() {
            let mut fast = vec![0.0; n];
            let mut slow = vec![0.0; n];
            kernels::conv1d_clamped_into(&mut fast, &src[..n], taps);
            kernels::conv1d_clamped_into_ref(&mut slow, &src[..n], taps);
            assert_bits(&fast, &slow, "conv1d_clamped_into");
        }
    }

    // ---------- Reductions ----------

    #[test]
    fn folds_match_ref_at_remainders(x in sig()) {
        for n in remainder_lengths() {
            let x = &x[..n];
            prop_assert_eq!(kernels::fold_min(x).to_bits(), kernels::fold_min_ref(x).to_bits());
            prop_assert_eq!(kernels::fold_max(x).to_bits(), kernels::fold_max_ref(x).to_bits());
        }
    }

    #[test]
    fn fir_complex_dot_matches_ref_within_1e9(tr in sig(), ti in sig(), x in sig()) {
        let taps = complex(&tr, &ti);
        for n in remainder_lengths() {
            let fast = kernels::fir_complex_dot(&taps[..n], &x[..n]);
            let slow = kernels::fir_complex_dot_ref(&taps[..n], &x[..n]);
            let scale = slow.norm_sqr().sqrt().max(1.0);
            prop_assert!((fast.re - slow.re).abs() <= 1e-9 * scale, "re at n={}", n);
            prop_assert!((fast.im - slow.im).abs() <= 1e-9 * scale, "im at n={}", n);
        }
    }

    #[test]
    fn envelope_charge_matches_ref_within_1e9(
        x in sig(), a in -50.0f64..50.0, b in -50.0f64..50.0
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for n in remainder_lengths() {
            let fast = kernels::envelope_charge(&x[..n], lo, hi);
            let slow = kernels::envelope_charge_ref(&x[..n], lo, hi);
            prop_assert!((fast - slow).abs() <= 1e-9 * slow.max(1.0), "n={}", n);
        }
    }
}

/// Deterministic sweep over every length `0..=33` — the properties above
/// draw from the remainder set, this closes the gap for the lengths in
/// between (and the empty slice, where the folds return their identities).
#[test]
fn elementwise_kernels_match_ref_at_every_small_length() {
    // Tiny LCG so the sweep needs no RNG dependency and never changes.
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut next = move || {
        state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        ((state >> 33) as f64) / (1u64 << 30) as f64 - 1.0
    };
    for n in 0..=33usize {
        let a: Vec<f64> = (0..n).map(|_| next() * 100.0).collect();
        let b: Vec<f64> = (0..n).map(|_| next() * 100.0).collect();
        let mut fast = vec![0.0; n];
        let mut slow = vec![0.0; n];
        kernels::mul_into(&mut fast, &a, &b);
        kernels::mul_into_ref(&mut slow, &a, &b);
        assert_bits(&fast, &slow, "mul_into");

        let mut fast = a.clone();
        let mut slow = a.clone();
        kernels::subtract_clamp_bg(&mut fast, &b);
        kernels::subtract_clamp_bg_ref(&mut slow, &b);
        assert_bits(&fast, &slow, "subtract_clamp_bg");

        assert_eq!(
            kernels::fold_min(&a).to_bits(),
            kernels::fold_min_ref(&a).to_bits(),
            "fold_min at n={n}"
        );
        assert_eq!(
            kernels::fold_max(&a).to_bits(),
            kernels::fold_max_ref(&a).to_bits(),
            "fold_max at n={n}"
        );
    }
}
