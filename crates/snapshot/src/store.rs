//! Pluggable snapshot storage: where suspended sessions live while evicted.
//!
//! The serving layer treats a store as an opaque byte sink keyed by session
//! id — it never inspects snapshot contents, so stores compose freely with
//! codec versioning. Two implementations ship here: [`MemoryStore`] (a
//! mutex-guarded ordered map, for tests and single-process suspend/resume)
//! and [`FileStore`] (one file per session under a spill directory, for
//! eviction across process restarts and crash recovery).

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "snapshot store I/O error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Keyed storage for encoded session snapshots.
///
/// Implementations must be safe to call from multiple shard workers
/// concurrently. `put` replaces any existing snapshot for the same session;
/// `remove` removes what it returns, so a thawed session cannot be resumed
/// twice from the same bytes.
pub trait SnapshotStore: Send + Sync + fmt::Debug {
    /// Persists `bytes` as the snapshot for `session`, replacing any prior
    /// snapshot under the same id.
    fn put(&self, session: u64, bytes: Vec<u8>) -> Result<(), StoreError>;

    /// Removes and returns the snapshot for `session`, or `None` when the
    /// store holds nothing under that id.
    fn remove(&self, session: u64) -> Result<Option<Vec<u8>>, StoreError>;

    /// Whether the store currently holds a snapshot for `session`.
    fn contains(&self, session: u64) -> Result<bool, StoreError>;

    /// All session ids with a stored snapshot, ascending.
    fn sessions(&self) -> Result<Vec<u64>, StoreError>;
}

/// In-process snapshot store backed by an ordered map.
///
/// Suspended sessions survive as long as the store does — suitable for
/// reaper eviction within one process and for tests. Iteration order is
/// the key order, so [`SnapshotStore::sessions`] is deterministic.
#[derive(Debug, Default)]
pub struct MemoryStore {
    map: Mutex<BTreeMap<u64, Vec<u8>>>,
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<u64, Vec<u8>>> {
        // A panicking holder cannot leave the map partially mutated: every
        // critical section is a single BTreeMap operation.
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl SnapshotStore for MemoryStore {
    fn put(&self, session: u64, bytes: Vec<u8>) -> Result<(), StoreError> {
        self.lock().insert(session, bytes);
        Ok(())
    }

    fn remove(&self, session: u64) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(self.lock().remove(&session))
    }

    fn contains(&self, session: u64) -> Result<bool, StoreError> {
        Ok(self.lock().contains_key(&session))
    }

    fn sessions(&self) -> Result<Vec<u64>, StoreError> {
        Ok(self.lock().keys().copied().collect())
    }
}

/// File-backed snapshot store: one `<session-id:016x>.ewsn` file per
/// suspended session under a spill directory.
///
/// Writes go to a temporary sibling first and are renamed into place, so a
/// crash mid-`put` never leaves a torn snapshot under the final name — the
/// strict decoder would reject one anyway, but recovery should not have to
/// discard a session because its *previous* snapshot was overwritten by
/// half of a new one.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
}

impl FileStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(FileStore { dir })
    }

    /// The spill directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, session: u64) -> PathBuf {
        self.dir.join(format!("{session:016x}.ewsn"))
    }
}

impl SnapshotStore for FileStore {
    fn put(&self, session: u64, bytes: Vec<u8>) -> Result<(), StoreError> {
        let final_path = self.path_for(session);
        let tmp_path = self.dir.join(format!("{session:016x}.tmp"));
        fs::write(&tmp_path, &bytes)?;
        fs::rename(&tmp_path, &final_path)?;
        Ok(())
    }

    fn remove(&self, session: u64) -> Result<Option<Vec<u8>>, StoreError> {
        let path = self.path_for(session);
        match fs::read(&path) {
            Ok(bytes) => {
                fs::remove_file(&path)?;
                Ok(Some(bytes))
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StoreError::Io(e)),
        }
    }

    fn contains(&self, session: u64) -> Result<bool, StoreError> {
        match fs::metadata(self.path_for(session)) {
            Ok(_) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(StoreError::Io(e)),
        }
    }

    fn sessions(&self) -> Result<Vec<u64>, StoreError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("ewsn") {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            if stem.len() != 16 {
                continue;
            }
            if let Ok(id) = u64::from_str_radix(stem, 16) {
                out.push(id);
            }
        }
        out.sort_unstable();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("ewsn-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn exercise(store: &dyn SnapshotStore) {
        assert_eq!(store.sessions().unwrap(), Vec::<u64>::new());
        store.put(7, vec![1, 2, 3]).unwrap();
        store.put(3, vec![9]).unwrap();
        store.put(7, vec![4, 5]).unwrap(); // replace
        assert!(store.contains(7).unwrap());
        assert!(!store.contains(99).unwrap());
        assert_eq!(store.sessions().unwrap(), vec![3, 7]);
        assert_eq!(store.remove(7).unwrap(), Some(vec![4, 5]));
        assert_eq!(store.remove(7).unwrap(), None, "remove must remove");
        assert!(!store.contains(7).unwrap());
        assert_eq!(store.sessions().unwrap(), vec![3]);
    }

    #[test]
    fn memory_store_semantics() {
        exercise(&MemoryStore::new());
    }

    #[test]
    fn file_store_semantics() {
        let dir = temp_dir("sem");
        exercise(&FileStore::new(&dir).unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_store_survives_reopen() {
        let dir = temp_dir("reopen");
        {
            let store = FileStore::new(&dir).unwrap();
            store.put(0xdead_beef, vec![7; 1000]).unwrap();
        }
        let store = FileStore::new(&dir).unwrap();
        assert_eq!(store.sessions().unwrap(), vec![0xdead_beef]);
        assert_eq!(store.remove(0xdead_beef).unwrap(), Some(vec![7; 1000]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_store_ignores_foreign_files() {
        let dir = temp_dir("foreign");
        let store = FileStore::new(&dir).unwrap();
        fs::write(dir.join("README.txt"), b"not a snapshot").unwrap();
        fs::write(dir.join("zzzz.ewsn"), b"bad stem").unwrap();
        store.put(5, vec![1]).unwrap();
        assert_eq!(store.sessions().unwrap(), vec![5]);
        let _ = fs::remove_dir_all(&dir);
    }
}
