//! Thread-per-connection TCP server over a [`SessionManager`].
//!
//! Threads (all plain `std::thread`, no runtime):
//!
//! - **accept** — blocks on [`TcpListener::accept`], spawns a
//!   reader/writer pair per connection.
//! - **reader** (per connection) — reads raw bytes into a
//!   [`FrameDecoder`], submits each decoded request to the shared
//!   manager, and forwards the [`SubmitVerdict`] to the connection's
//!   writer — so verdicts leave the socket in request order.
//! - **writer** (per connection) — drains a bounded response channel and
//!   writes encoded frames to the socket. The bounded channel is the
//!   backpressure boundary: a slow socket fills it, producers fall back
//!   from `try_send` to a blocking send, and every such fallback counts
//!   as a write stall.
//! - **router** — owns the manager's detached [`EventStream`] and routes
//!   `Segment`/`Finished`/`Reaped` events to whichever connection opened
//!   the session (last opener wins on cross-connection id reuse). The
//!   router deliberately holds **no** reference to the manager, so
//!   [`WireServer::shutdown`] can reclaim sole ownership and shut the
//!   manager down — which disconnects the event stream and ends the
//!   router.
//!
//! A malformed byte stream (bad length, unknown kind, grammar mismatch)
//! closes its connection: a desynced length-prefixed stream cannot be
//! re-synchronized, so the server never guesses.

use crate::frame::{FrameDecoder, Request as WireRequest, Response};
use echowrite_profile::Stopwatch;
use echowrite_serve::{
    EventStream, FlightReason, Request, ServeMetrics, SessionId, SessionManager, ShutdownReport,
};
use echowrite_trace::{SmallStr, Stage, TICK_UNSET};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Response frames buffered per connection before producers stall.
const WRITE_QUEUE: usize = 256;
/// Socket read buffer size.
const READ_BUF: usize = 64 * 1024;

/// State shared between the accept loop, connections, the router, and
/// shutdown.
struct Shared {
    /// session id → (conn id, response channel) of the connection that
    /// opened it.
    registry: Mutex<BTreeMap<u64, (u64, SyncSender<Response>)>>,
    /// conn id → socket handle, kept so shutdown can unblock readers.
    conns: Mutex<BTreeMap<u64, TcpStream>>,
    /// Reader/writer join handles, drained at shutdown.
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Set once; readers and the accept loop exit when they observe it.
    shutting_down: AtomicBool,
    /// Stalls hit by the router (it has no manager reference, so they are
    /// folded into the wire metrics at shutdown).
    router_stalls: AtomicU64,
    /// Events the router dropped because no connection owned the session
    /// (its opener already disconnected).
    router_orphans: AtomicU64,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Sends a response to a connection's writer, falling back from
/// `try_send` to a blocking send when the bounded queue is full. Returns
/// `false` when the writer is gone (connection closed).
fn send_counted(tx: &SyncSender<Response>, resp: Response, stall: impl FnOnce()) -> bool {
    match tx.try_send(resp) {
        Ok(()) => true,
        Err(TrySendError::Disconnected(_)) => false,
        Err(TrySendError::Full(resp)) => {
            stall();
            tx.send(resp).is_ok()
        }
    }
}

/// A TCP front-end over one [`SessionManager`], serving the frame grammar
/// of [`crate::frame`] on a loopback or LAN socket with only `std::net`.
pub struct WireServer {
    addr: SocketAddr,
    manager: Arc<SessionManager>,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    router: Option<JoinHandle<()>>,
}

impl WireServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback port)
    /// and starts serving `manager`.
    ///
    /// # Errors
    ///
    /// Socket bind failures, and a manager whose event stream was already
    /// detached (the server must own event routing).
    pub fn bind(addr: &str, manager: SessionManager) -> std::io::Result<WireServer> {
        let Some(events) = manager.detach_events() else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "manager event stream already detached",
            ));
        };
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let manager = Arc::new(manager);
        let shared = Arc::new(Shared {
            registry: Mutex::new(BTreeMap::new()),
            conns: Mutex::new(BTreeMap::new()),
            handles: Mutex::new(Vec::new()),
            shutting_down: AtomicBool::new(false),
            router_stalls: AtomicU64::new(0),
            router_orphans: AtomicU64::new(0),
        });

        let router = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || route_events(events, &shared))
        };
        let accept = {
            let shared = Arc::clone(&shared);
            let manager = Arc::clone(&manager);
            std::thread::spawn(move || accept_loop(&listener, &manager, &shared))
        };
        Ok(WireServer { addr, manager, shared, accept: Some(accept), router: Some(router) })
    }

    /// The bound socket address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying manager's metrics (includes the `wire_*` counters).
    pub fn metrics(&self) -> &ServeMetrics {
        self.manager.metrics()
    }

    /// A weak handle to the underlying manager, for side-car planes such
    /// as `echowrite-obs` that must observe the manager without keeping it
    /// alive — [`WireServer::shutdown`] reclaims sole ownership via
    /// `Arc::try_unwrap`, which a strong clone would defeat.
    pub fn manager_handle(&self) -> std::sync::Weak<SessionManager> {
        Arc::downgrade(&self.manager)
    }

    /// Stops accepting, closes every connection, shuts the manager down,
    /// and returns its [`ShutdownReport`]. Idempotent with respect to
    /// clients: connections in flight observe a closed socket.
    pub fn shutdown(mut self) -> ShutdownReport {
        // ordering: Release pairs with the Acquire loads in the accept and
        // reader loops — a thread that observes the flag also observes any
        // state written before shutdown began.
        self.shared.shutting_down.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection; it checks
        // the flag before serving what it accepted.
        if let Ok(stream) = TcpStream::connect(self.addr) {
            drop(stream);
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Kick every live connection off its blocking read.
        for (_, stream) in lock(&self.shared.conns).iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        loop {
            let Some(h) = lock(&self.shared.handles).pop() else { break };
            let _ = h.join();
        }
        // ordering: Relaxed — independent statistics folded in after every
        // producer thread has been joined.
        self.manager
            .metrics()
            .wire_write_stalls
            .add(self.shared.router_stalls.load(Ordering::Relaxed));

        // Every reader/writer has dropped its Arc and the router never had
        // one, so this is the sole remaining handle.
        let report = match Arc::try_unwrap(self.manager) {
            Ok(manager) => manager.shutdown(),
            // Unreachable after the joins above; return an empty report
            // rather than panicking in a shutdown path.
            Err(still_shared) => ShutdownReport {
                metrics: still_shared.metrics().snapshot(),
                events: Vec::new(),
            },
        };
        // Manager shutdown dropped the event senders, so the router's
        // stream has disconnected and the router has exited.
        if let Some(h) = self.router.take() {
            let _ = h.join();
        }
        report
    }
}

// echolint: entry
fn accept_loop(listener: &TcpListener, manager: &Arc<SessionManager>, shared: &Arc<Shared>) {
    let mut next_conn: u64 = 0;
    loop {
        let Ok((stream, _)) = listener.accept() else {
            // ordering: Acquire pairs with the Release store in shutdown.
            if shared.shutting_down.load(Ordering::Acquire) {
                return;
            }
            continue;
        };
        // ordering: Acquire pairs with the Release store in shutdown.
        if shared.shutting_down.load(Ordering::Acquire) {
            drop(stream);
            return;
        }
        let conn_id = next_conn;
        next_conn += 1;
        manager.metrics().wire_connections.inc();
        if echowrite_trace::enabled() {
            echowrite_trace::instant(
                Stage::Wire,
                "conn_accept",
                TICK_UNSET,
                SmallStr::from_display(conn_id),
            );
        }
        let Ok(write_half) = stream.try_clone() else {
            continue;
        };
        lock(&shared.conns).insert(conn_id, write_half);
        let (tx, rx) = sync_channel::<Response>(WRITE_QUEUE);
        let writer = {
            let manager = Arc::clone(manager);
            let Ok(write_stream) = stream.try_clone() else {
                lock(&shared.conns).remove(&conn_id);
                continue;
            };
            std::thread::spawn(move || write_loop(write_stream, &rx, &manager))
        };
        let reader = {
            let manager = Arc::clone(manager);
            let shared = Arc::clone(shared);
            std::thread::spawn(move || {
                read_loop(stream, conn_id, &tx, &manager, &shared);
                drop(tx); // disconnects the writer once the registry is clean
                lock(&shared.conns).remove(&conn_id);
            })
        };
        let mut handles = lock(&shared.handles);
        handles.push(writer);
        handles.push(reader);
    }
}

/// The per-connection read half: socket bytes → frames → manager
/// submissions → verdict frames back through `tx`.
// echolint: entry
fn read_loop(
    mut stream: TcpStream,
    conn_id: u64,
    tx: &SyncSender<Response>,
    manager: &Arc<SessionManager>,
    shared: &Arc<Shared>,
) {
    let metrics = manager.metrics();
    let mut decoder = FrameDecoder::new();
    let mut buf = vec![0u8; READ_BUF];
    // Sessions this connection opened, for registry cleanup at close.
    let mut owned: BTreeSet<u64> = BTreeSet::new();
    'conn: loop {
        let timer = Stopwatch::start();
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => break 'conn,
            Ok(n) => n,
        };
        // ordering: Acquire pairs with the Release store in shutdown.
        if shared.shutting_down.load(Ordering::Acquire) {
            break 'conn;
        }
        let Some(bytes) = buf.get(..n) else { break 'conn };
        decoder.extend(bytes);
        if echowrite_trace::enabled() {
            echowrite_trace::span(
                Stage::Wire,
                "conn_read",
                TICK_UNSET,
                (timer.elapsed_ms() * 1_000.0) as u64,
                n as f64,
            );
        }
        loop {
            let decode_timer = Stopwatch::start();
            let (request_id, req) = match decoder.next_request() {
                Ok(Some(req)) => req,
                Ok(None) => break,
                Err(err) => {
                    metrics.wire_malformed_frames.inc();
                    // A malformed frame is a flight-recorder anomaly: dump
                    // the recent-event rings for the postmortem.
                    manager.trigger_flight_dump(FlightReason::MalformedFrame);
                    if echowrite_trace::enabled() {
                        echowrite_trace::instant(
                            Stage::Wire,
                            "frame_malformed",
                            TICK_UNSET,
                            SmallStr::from_display(format_args!("conn {conn_id}: {err}")),
                        );
                    }
                    break 'conn;
                }
            };
            metrics.wire_frames_read.inc();
            if echowrite_trace::enabled() {
                echowrite_trace::span(
                    Stage::Wire,
                    "frame_decode",
                    TICK_UNSET,
                    (decode_timer.elapsed_ms() * 1_000.0) as u64,
                    1.0,
                );
            }
            let session = req.session();
            if matches!(req, WireRequest::Open { .. } | WireRequest::Import { .. }) {
                // Register before submitting: events for this session may
                // arrive as soon as the shard processes the open (an
                // imported session emits events the same way).
                owned.insert(session);
                lock(&shared.registry).insert(session, (conn_id, tx.clone()));
            }
            let response = match req {
                WireRequest::Open { .. } => Response::from_verdict(
                    request_id,
                    session,
                    manager.submit_tagged(Request::Open(SessionId(session)), request_id),
                ),
                WireRequest::Push { ref samples, .. } => Response::from_verdict(
                    request_id,
                    session,
                    manager.submit_tagged(Request::Push(SessionId(session), samples), request_id),
                ),
                WireRequest::Finish { .. } => Response::from_verdict(
                    request_id,
                    session,
                    manager.submit_tagged(Request::Finish(SessionId(session)), request_id),
                ),
                // Export/Import block this connection's reader until the
                // owning shard processes them — the snapshot must reflect
                // every previously enqueued push — without stalling any
                // other connection.
                WireRequest::Export { .. } => Response::Exported {
                    request_id,
                    session,
                    snapshot: manager.export_session(SessionId(session)),
                },
                WireRequest::Import { snapshot, .. } => Response::Imported {
                    request_id,
                    session,
                    ok: manager.import_session(SessionId(session), snapshot),
                },
            };
            if !send_counted(tx, response, || {
                metrics.wire_write_stalls.inc();
            }) {
                break 'conn;
            }
        }
    }
    let mut registry = lock(&shared.registry);
    for session in owned {
        // Only remove entries still pointing at this connection — a
        // reconnecting client may have re-registered the session already.
        if registry.get(&session).is_some_and(|(owner, _)| *owner == conn_id) {
            registry.remove(&session);
        }
    }
}

/// The per-connection write half: response channel → encoded frames →
/// socket.
// echolint: entry
fn write_loop(mut stream: TcpStream, rx: &Receiver<Response>, manager: &Arc<SessionManager>) {
    let metrics = manager.metrics();
    let mut out = Vec::with_capacity(4096);
    while let Ok(resp) = rx.recv() {
        let timer = Stopwatch::start();
        out.clear();
        crate::frame::encode_response(&mut out, &resp);
        if stream.write_all(&out).is_err() {
            return;
        }
        metrics.wire_frames_written.inc();
        if echowrite_trace::enabled() {
            echowrite_trace::span(
                Stage::Wire,
                "frame_write",
                TICK_UNSET,
                (timer.elapsed_ms() * 1_000.0) as u64,
                out.len() as f64,
            );
        }
    }
    let _ = stream.flush();
}

/// The event router: serve events → the owning connection's writer. Holds
/// no manager reference — exits when the manager's shutdown disconnects
/// the stream.
// echolint: entry
fn route_events(events: EventStream, shared: &Arc<Shared>) {
    while let Some(event) = events.recv() {
        let resp = Response::from_event(event);
        let session = resp.session().0;
        let Some((_, tx)) = lock(&shared.registry).get(&session).cloned() else {
            // ordering: Relaxed — an independent statistic.
            shared.router_orphans.fetch_add(1, Ordering::Relaxed);
            continue;
        };
        let _ = send_counted(&tx, resp, || {
            // ordering: Relaxed — an independent statistic.
            shared.router_stalls.fetch_add(1, Ordering::Relaxed);
        });
    }
}
