//! Offline stand-in for `rand` 0.8.
//!
//! Implements the `Rng` extension trait, the `Standard` distribution, and
//! `seq::SliceRandom` with rand 0.8.5's exact sampling algorithms:
//!
//! - `gen::<f64>()` uses the 53-high-bit construction,
//! - `gen_range` over floats uses the `[1, 2)`-mantissa trick with
//!   `value1_2 * scale + (low - scale)`,
//! - `gen_range` over integers uses widening-multiply rejection with the
//!   `(range << leading_zeros) - 1` zone,
//! - `shuffle` is the end-first Fisher–Yates that draws `u32` indices for
//!   bounds below `u32::MAX`.
//!
//! This keeps every seeded simulator trace identical to one produced by the
//! real crates.

// The int_range macros instantiate `$ty as u32` for $ty == u32 itself;
// the cast is load-bearing for the signed widths.
#![allow(trivial_numeric_casts)]

pub use rand_core::{RngCore, SeedableRng};

pub mod distributions {
    //! The subset of `rand::distributions` the workspace touches.

    use crate::RngCore;

    /// Types that can produce a `T` from an RNG.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform over a type's natural domain
    /// (`[0, 1)` for floats, full range for integers).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 high bits of a u64, scaled by 2^-53 (rand 0.8 `Standard`).
            let fraction = rng.next_u64() >> 11;
            fraction as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            let fraction = rng.next_u32() >> 8;
            fraction as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<u8> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
            rng.next_u32() as u8
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    /// Uniform sampling over a half-open range, one value per call
    /// (rand 0.8's `sample_single`).
    pub trait SampleRange<T> {
        /// Samples one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl SampleRange<f64> for core::ops::Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            let (low, high) = (self.start, self.end);
            assert!(low < high, "gen_range requires low < high");
            let mut scale = high - low;
            loop {
                // A float in [1, 2): exponent 0, top 52 random mantissa bits.
                let value1_2 =
                    f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
                let res = value1_2 * scale + (low - scale);
                if res < high {
                    return res;
                }
                // Pathological rounding at the top of the range: shrink the
                // scale one ULP and retry (upstream's edge-case handling).
                scale = f64::from_bits(scale.to_bits() - 1);
            }
        }
    }

    macro_rules! int_range_32 {
        ($ty:ty) => {
            impl SampleRange<$ty> for core::ops::Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (low, high) = (self.start, self.end);
                    assert!(low < high, "gen_range requires low < high");
                    let range = (high as u32).wrapping_sub(low as u32);
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v = rng.next_u32();
                        let m = (v as u64) * (range as u64);
                        let (hi, lo) = ((m >> 32) as u32, m as u32);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }
    int_range_32!(u32);
    int_range_32!(i32);

    macro_rules! int_range_64 {
        ($ty:ty) => {
            impl SampleRange<$ty> for core::ops::Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (low, high) = (self.start, self.end);
                    assert!(low < high, "gen_range requires low < high");
                    let range = (high as u64).wrapping_sub(low as u64);
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v = rng.next_u64();
                        let m = (v as u128) * (range as u128);
                        let (hi, lo) = ((m >> 64) as u64, m as u64);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }
    int_range_64!(u64);
    int_range_64!(i64);
    int_range_64!(usize);
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T, Rr>(&mut self, range: Rr) -> T
    where
        Rr: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! The subset of `rand::seq` the workspace touches.

    use crate::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (end-first Fisher–Yates, drawing
        /// `u32` indices for small bounds exactly as rand 0.8 does).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    fn gen_index<R: Rng + ?Sized>(rng: &mut R, ubound: usize) -> usize {
        if ubound <= u32::MAX as usize {
            rng.gen_range(0..ubound as u32) as usize
        } else {
            rng.gen_range(0..ubound)
        }
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, gen_index(rng, i + 1));
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[gen_index(rng, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn f64_standard_is_unit_interval_and_deterministic() {
        let mut r = rng(3);
        let xs: Vec<f64> = (0..1000).map(|_| r.gen::<f64>()).collect();
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        let mut r2 = rng(3);
        assert_eq!(xs[0], r2.gen::<f64>());
        // Mean of U[0,1) over 1000 draws should be near 0.5.
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gen_range_float_stays_in_bounds() {
        let mut r = rng(4);
        for _ in 0..1000 {
            let v = r.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&v));
        }
        // Tiny range touching MIN_POSITIVE (the Box–Muller guard case).
        for _ in 0..100 {
            let v = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn gen_range_int_uniformity_and_bounds() {
        let mut r = rng(5);
        let mut counts = [0usize; 6];
        for _ in 0..6000 {
            counts[r.gen_range(0usize..6)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed counts {counts:?}");
        }
        let mut hits = std::collections::HashSet::new();
        for _ in 0..100 {
            hits.insert(r.gen_range(3i32..6));
        }
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = rng(6);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        // Extremely unlikely to be the identity permutation.
        assert_ne!(v, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = rng(7);
        let v = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*v.choose(&mut r).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = rng(8);
        let hits = (0..2000).filter(|_| r.gen_bool(0.25)).count();
        assert!((350..650).contains(&hits), "{hits}");
    }
}
