//! Acceleration-based stroke segmentation (paper Sec. III-B).
//!
//! Writing a stroke is "a short-duration and high-acceleration process":
//! the Doppler shift ramps up quickly. The withdraw between strokes keeps
//! some speed but its acceleration drops notably, and irrelevant body
//! motions have much lower acceleration still. Segmentation therefore
//! thresholds the *first difference of the Doppler profile*:
//!
//! - a stroke is armed at the first frame where |acc| > β; the start point
//!   is found by searching **backward** to the frame whose shift is closest
//!   to zero,
//! - the stroke ends at the first frame from which **nine successive**
//!   frames all have |acc| < γ = β/2.
//!
//! The paper derives its β from Eq. 4 (`Δf′ = 2 f₀ a / v_s`) with its
//! device's frame scale and sets β = 40, γ = 20; [`SegmentConfig::paper`]
//! keeps that derivation parameterised by the actual hop period so it works
//! at any frame rate.

use crate::profile::DopplerProfile;

/// A detected stroke span in spectrogram columns (inclusive start,
/// exclusive end).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrokeSegment {
    /// First column of the stroke.
    pub start: usize,
    /// One past the last column of the stroke.
    pub end: usize,
}

impl StrokeSegment {
    /// Number of columns covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the segment covers no columns.
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }

    /// Midpoint column.
    pub fn mid(&self) -> usize {
        (self.start + self.end) / 2
    }
}

/// Configuration of the segmenter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentConfig {
    /// Arming threshold β on |acc| in Hz **per second** (converted to the
    /// profile's per-frame scale internally).
    pub beta_hz_per_s: f64,
    /// Number of *consecutive* above-β frames required to arm a stroke.
    /// A real stroke onset sustains high acceleration for several frames;
    /// a slow drift crossing the MVCE guard band produces a single-frame
    /// cliff that must not arm.
    pub arm_run: usize,
    /// Release threshold γ as a fraction of β (paper: 1/2).
    pub gamma_ratio: f64,
    /// Number of successive sub-γ frames that end a stroke (paper: 9, at a
    /// hop of 23.2 ms ≈ 0.21 s of quiet).
    pub end_run: usize,
    /// Minimum stroke length in frames; shorter detections are dropped as
    /// noise spikes.
    pub min_frames: usize,
    /// Minimum number of frames with |acc| > γ inside a segment; rejects
    /// single-frame glitches whose quiet tail pads them past `min_frames`.
    pub min_active: usize,
    /// Maximum backward search distance (frames) for the zero-shift start.
    pub max_backtrack: usize,
    /// |shift| below this (Hz) counts as "closest to zero" and stops the
    /// backward start search.
    pub zero_shift_eps: f64,
    /// Maximum |shift| (Hz) allowed at the backtracked start point. A true
    /// stroke begins from rest (shift ≈ 0); a contour jump between two
    /// interference plateaus (e.g. a walking passer-by) does not, and is
    /// rejected.
    pub start_max_hz: f64,
    /// A run of this many consecutive frames with |shift| ≤ `rest_max_hz`
    /// also ends a stroke — the finger has come to rest. This cuts the
    /// segment before the withdraw motion becomes visible, so templates and
    /// probes compare stroke-only profiles.
    pub rest_run: usize,
    /// The |shift| level treated as "at rest" for `rest_run` (Hz).
    pub rest_max_hz: f64,
    /// Minimum peak |shift| (Hz) inside a segment. Deliberate strokes move
    /// the finger fast (the weakest produce ≳ 25 Hz); the slow withdraw
    /// between strokes plateaus well below that and must not segment.
    pub min_peak_hz: f64,
}

impl SegmentConfig {
    /// The paper's thresholds: β derived from Eq. 4 with the finger's
    /// typical acceleration, γ = β/2, nine-point end rule.
    ///
    /// The paper quotes β = 40 in its implementation's per-frame units;
    /// expressed per second at their 23.2 ms hop this sets the arming rate
    /// threshold used here.
    pub fn paper() -> Self {
        SegmentConfig {
            beta_hz_per_s: 130.0,
            arm_run: 2,
            gamma_ratio: 0.5,
            end_run: 9,
            min_frames: 5,
            min_active: 5,
            max_backtrack: 12,
            zero_shift_eps: 2.0,
            start_max_hz: 30.0,
            rest_run: 4,
            rest_max_hz: 6.0,
            min_peak_hz: 20.0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message for non-positive thresholds or degenerate ratios.
    pub fn validate(&self) -> Result<(), String> {
        if self.beta_hz_per_s <= 0.0 {
            return Err(format!("beta must be positive, got {}", self.beta_hz_per_s));
        }
        if !(0.0..1.0).contains(&self.gamma_ratio) || self.gamma_ratio == 0.0 {
            return Err(format!("gamma_ratio must be in (0,1), got {}", self.gamma_ratio));
        }
        if self.end_run == 0 {
            return Err("end_run must be positive".to_string());
        }
        if self.arm_run == 0 {
            return Err("arm_run must be positive".to_string());
        }
        if self.rest_run == 0 {
            return Err("rest_run must be positive".to_string());
        }
        if self.rest_max_hz < 0.0 {
            return Err("rest_max_hz must be non-negative".to_string());
        }
        Ok(())
    }
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig::paper()
    }
}

/// The acceleration-based stroke segmenter.
///
/// # Example
///
/// ```
/// use echowrite_profile::{DopplerProfile, Segmenter, SegmentConfig};
/// // A quiet profile produces no segments.
/// let p = DopplerProfile::new(vec![0.0; 50], 0.023);
/// let segs = Segmenter::new(SegmentConfig::paper()).segment(&p);
/// assert!(segs.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Segmenter {
    config: SegmentConfig,
}

impl Segmenter {
    /// Creates a segmenter.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: SegmentConfig) -> Self {
        if let Err(msg) = config.validate() {
            // echolint: allow(no-panic-path) -- documented `# Panics` contract of Segmenter::new
            panic!("invalid segmenter config: {msg}");
        }
        Segmenter { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SegmentConfig {
        &self.config
    }

    /// Detects stroke segments in a Doppler profile.
    pub fn segment(&self, profile: &DopplerProfile) -> Vec<StrokeSegment> {
        let shifts = profile.shifts();
        let n = shifts.len();
        if n < self.config.min_frames.max(5) {
            return Vec::new();
        }
        // Acceleration in Hz/frame; thresholds scaled to the hop period.
        let acc = profile.acceleration();
        let beta = self.config.beta_hz_per_s * profile.hop_seconds();
        let gamma = beta * self.config.gamma_ratio;

        let mut segments = Vec::new();
        let mut i = 0;
        while i < n {
            // Arm: `arm_run` consecutive |acc| above β.
            let run_end = i + self.config.arm_run;
            if run_end > n || acc[i..run_end].iter().any(|a| a.abs() <= beta) {
                i += 1;
                continue;
            }
            // Backward search to the shift closest to zero.
            let lo = i.saturating_sub(self.config.max_backtrack);
            let mut start = i;
            let mut best = shifts[i].abs();
            let mut j = i;
            while j > lo && best > self.config.zero_shift_eps {
                j -= 1;
                let v = shifts[j].abs();
                if v < best {
                    best = v;
                    start = j;
                } else {
                    // Shift grows again — we passed the rest point.
                    break;
                }
            }

            // A stroke must start from (near) rest; a jump between two
            // interference plateaus does not.
            if best > self.config.start_max_hz {
                i += 1;
                continue;
            }

            // Forward search for the end: `end_run` successive sub-γ points,
            // or the finger resting near zero shift for `rest_run` frames.
            let mut end = n;
            let mut k = i + 1;
            while k < n {
                let quiet_end = (k + self.config.end_run).min(n);
                if acc[k..quiet_end].iter().all(|a| a.abs() < gamma) {
                    end = k;
                    break;
                }
                let rest_end = k + self.config.rest_run;
                if rest_end <= n
                    && shifts[k..rest_end]
                        .iter()
                        .all(|s| s.abs() <= self.config.rest_max_hz)
                {
                    end = k;
                    break;
                }
                k += 1;
            }

            let active = acc[start..end.min(n)]
                .iter()
                .filter(|a| a.abs() > gamma)
                .count();
            let peak = shifts[start..end.min(n)]
                .iter()
                .fold(0.0f64, |m, s| m.max(s.abs()));
            if end - start >= self.config.min_frames
                && active >= self.config.min_active
                && peak >= self.config.min_peak_hz
            {
                segments.push(StrokeSegment { start, end });
            }
            // Resume scanning after the quiet run (or at the end).
            i = end.max(i + 1) + self.config.end_run.min(n - end.min(n));
        }
        segments
    }

    /// Convenience: segments a profile and returns the per-stroke
    /// sub-profiles alongside their spans.
    pub fn extract_strokes(
        &self,
        profile: &DopplerProfile,
    ) -> Vec<(StrokeSegment, DopplerProfile)> {
        self.segment(profile)
            .into_iter()
            .map(|seg| (seg, profile.slice(seg.start, seg.end)))
            .collect()
    }
}

impl Default for Segmenter {
    fn default() -> Self {
        Segmenter::new(SegmentConfig::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOP: f64 = 0.0232;

    /// A synthetic stroke: shift ramps 0 → peak → 0 over `len` frames
    /// starting at `at`, mimicking a minimum-jerk Doppler bump.
    fn add_stroke(shifts: &mut [f64], at: usize, len: usize, peak: f64) {
        for i in 0..len {
            let tau = i as f64 / (len - 1) as f64;
            shifts[at + i] += peak * (std::f64::consts::PI * tau).sin();
        }
    }

    /// A slow drift (withdraw/body motion): low-rate half-sine.
    fn add_slow(shifts: &mut [f64], at: usize, len: usize, peak: f64) {
        add_stroke(shifts, at, len, peak);
    }

    fn seg(profile: &[f64]) -> Vec<StrokeSegment> {
        Segmenter::default().segment(&DopplerProfile::new(profile.to_vec(), HOP))
    }

    #[test]
    fn quiet_profile_has_no_segments() {
        assert!(seg(&[0.0; 80]).is_empty());
    }

    #[test]
    fn too_short_profile_is_ignored() {
        assert!(seg(&[100.0; 3]).is_empty());
    }

    #[test]
    fn detects_a_single_stroke() {
        let mut p = vec![0.0; 80];
        add_stroke(&mut p, 20, 14, 60.0); // 60 Hz peak over ~0.32 s
        let segs = seg(&p);
        assert_eq!(segs.len(), 1, "expected one stroke, got {segs:?}");
        let s = segs[0];
        assert!(s.start >= 16 && s.start <= 22, "start {}", s.start);
        assert!(s.end >= 30 && s.end <= 42, "end {}", s.end);
    }

    #[test]
    fn detects_negative_shift_strokes() {
        let mut p = vec![0.0; 80];
        add_stroke(&mut p, 30, 14, -70.0);
        let segs = seg(&p);
        assert_eq!(segs.len(), 1);
    }

    #[test]
    fn detects_a_series_of_strokes() {
        let mut p = vec![0.0; 300];
        for k in 0..5 {
            add_stroke(&mut p, 30 + k * 50, 14, if k % 2 == 0 { 55.0 } else { -65.0 });
        }
        let segs = seg(&p);
        assert_eq!(segs.len(), 5, "{segs:?}");
        for w in segs.windows(2) {
            assert!(w[0].end <= w[1].start, "segments overlap: {segs:?}");
        }
    }

    /// The paper's key robustness claim (Fig. 10): slow interference —
    /// withdraw motion, multipath, irrelevant hand movement — has low
    /// acceleration and must NOT trigger a segment.
    #[test]
    fn slow_interference_is_rejected() {
        let mut p = vec![0.0; 200];
        add_slow(&mut p, 20, 80, 18.0); // 18 Hz over ~1.9 s: gentle drift
        add_slow(&mut p, 120, 60, -14.0);
        let segs = seg(&p);
        assert!(segs.is_empty(), "slow drift misdetected: {segs:?}");
    }

    #[test]
    fn stroke_among_interference_is_found() {
        let mut p = vec![0.0; 200];
        add_slow(&mut p, 10, 70, 15.0); // background drift
        add_stroke(&mut p, 100, 14, 65.0); // the actual stroke
        let segs = seg(&p);
        assert_eq!(segs.len(), 1, "{segs:?}");
        assert!(segs[0].start >= 92 && segs[0].start <= 104, "{segs:?}");
    }

    #[test]
    fn start_backtracks_to_zero_shift() {
        let mut p = vec![0.0; 80];
        add_stroke(&mut p, 25, 16, 80.0);
        let segs = seg(&p);
        let s = segs[0];
        // The start should sit at (or within a couple frames of) the true
        // stroke onset where the shift was still ~0.
        assert!(
            p[s.start].abs() < 25.0,
            "start shift {} too large at {}",
            p[s.start],
            s.start
        );
    }

    #[test]
    fn min_frames_filters_spikes() {
        let mut p = vec![0.0; 80];
        // A 2-frame glitch: huge acceleration but too short to be a stroke.
        p[40] = 90.0;
        let cfg = SegmentConfig { min_frames: 5, ..SegmentConfig::paper() };
        let segs = Segmenter::new(cfg).segment(&DopplerProfile::new(p, HOP));
        assert!(segs.is_empty(), "{segs:?}");
    }

    #[test]
    fn segment_len_and_mid() {
        let s = StrokeSegment { start: 10, end: 20 };
        assert_eq!(s.len(), 10);
        assert_eq!(s.mid(), 15);
        assert!(!s.is_empty());
        assert!(StrokeSegment { start: 3, end: 3 }.is_empty());
    }

    #[test]
    fn extract_strokes_returns_subprofiles() {
        let mut p = vec![0.0; 120];
        add_stroke(&mut p, 30, 14, 60.0);
        let profile = DopplerProfile::new(p, HOP);
        let pairs = Segmenter::default().extract_strokes(&profile);
        assert_eq!(pairs.len(), 1);
        let (seg, sub) = &pairs[0];
        assert_eq!(sub.len(), seg.len());
        assert!(sub.peak_shift() > 40.0);
    }

    #[test]
    fn config_validation() {
        assert!(SegmentConfig::paper().validate().is_ok());
        assert!(SegmentConfig { beta_hz_per_s: 0.0, ..SegmentConfig::paper() }
            .validate()
            .is_err());
        assert!(SegmentConfig { gamma_ratio: 1.0, ..SegmentConfig::paper() }
            .validate()
            .is_err());
        assert!(SegmentConfig { end_run: 0, ..SegmentConfig::paper() }
            .validate()
            .is_err());
    }

    #[test]
    #[should_panic(expected = "invalid segmenter config")]
    fn segmenter_rejects_bad_config() {
        Segmenter::new(SegmentConfig { beta_hz_per_s: -1.0, ..SegmentConfig::paper() });
    }
}
