//! The Doppler profile: one signed frequency shift per time frame.

/// A sequence of signed Doppler shifts (Hz relative to the carrier), one per
/// spectrogram column.
///
/// Positive values mean the finger is approaching the device. The profile
/// carries its column period so downstream code can convert between frames
/// and seconds.
///
/// # Example
///
/// ```
/// use echowrite_profile::DopplerProfile;
/// let p = DopplerProfile::new(vec![0.0, 10.0, 20.0], 0.023);
/// assert_eq!(p.len(), 3);
/// assert!((p.duration() - 0.069).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DopplerProfile {
    shifts: Vec<f64>,
    hop_s: f64,
}

impl DopplerProfile {
    /// Creates a profile from shift values (Hz) and the column period (s).
    ///
    /// # Panics
    ///
    /// Panics if `hop_s` is not positive.
    pub fn new(shifts: Vec<f64>, hop_s: f64) -> Self {
        assert!(hop_s > 0.0, "hop period must be positive, got {hop_s}");
        DopplerProfile { shifts, hop_s }
    }

    /// The shift values in Hz.
    #[inline]
    pub fn shifts(&self) -> &[f64] {
        &self.shifts
    }

    /// Number of frames.
    #[inline]
    pub fn len(&self) -> usize {
        self.shifts.len()
    }

    /// Whether the profile is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.shifts.is_empty()
    }

    /// Column period in seconds.
    #[inline]
    pub fn hop_seconds(&self) -> f64 {
        self.hop_s
    }

    /// Total duration in seconds.
    pub fn duration(&self) -> f64 {
        self.shifts.len() as f64 * self.hop_s
    }

    /// Appends one frame's shift (Hz) — the streaming path grows its
    /// profile incrementally instead of rebuilding it per chunk.
    #[inline]
    pub fn append(&mut self, shift_hz: f64) {
        self.shifts.push(shift_hz);
    }

    /// A sub-profile over frames `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid.
    pub fn slice(&self, lo: usize, hi: usize) -> DopplerProfile {
        assert!(lo <= hi && hi <= self.shifts.len(), "invalid range {lo}..{hi}");
        DopplerProfile::new(self.shifts[lo..hi].to_vec(), self.hop_s)
    }

    /// Maximum absolute shift in Hz (0 for an empty profile).
    pub fn peak_shift(&self) -> f64 {
        self.shifts.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Mean shift in Hz (0 for an empty profile).
    pub fn mean_shift(&self) -> f64 {
        echowrite_dsp::util::mean(&self.shifts)
    }

    /// The profile's first difference per frame (Hz/frame) computed with the
    /// paper's noise-robust differentiator (Eq. 2) — the "acceleration of
    /// Doppler shift" driving segmentation.
    pub fn acceleration(&self) -> Vec<f64> {
        echowrite_dsp::filters::holoborodko_diff(&self.shifts)
    }

    /// Resamples the profile to `n` points (linear interpolation) — used to
    /// compare profiles of different durations.
    ///
    /// # Panics
    ///
    /// Panics if the profile is empty or `n` is zero.
    pub fn resampled(&self, n: usize) -> Vec<f64> {
        echowrite_dsp::util::resample_linear(&self.shifts, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let p = DopplerProfile::new(vec![1.0, -2.0, 3.0], 0.5);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.shifts(), &[1.0, -2.0, 3.0]);
        assert_eq!(p.hop_seconds(), 0.5);
        assert_eq!(p.duration(), 1.5);
        assert_eq!(p.peak_shift(), 3.0);
        assert!((p.mean_shift() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn peak_uses_absolute_value() {
        let p = DopplerProfile::new(vec![1.0, -5.0, 3.0], 1.0);
        assert_eq!(p.peak_shift(), 5.0);
    }

    #[test]
    fn slice_extracts_subrange() {
        let p = DopplerProfile::new((0..10).map(|i| i as f64).collect(), 0.1);
        let s = p.slice(2, 5);
        assert_eq!(s.shifts(), &[2.0, 3.0, 4.0]);
        assert_eq!(s.hop_seconds(), 0.1);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn slice_rejects_bad_range() {
        DopplerProfile::new(vec![0.0; 3], 1.0).slice(2, 5);
    }

    #[test]
    fn acceleration_of_ramp_is_constant() {
        let p = DopplerProfile::new((0..20).map(|i| 2.0 * i as f64).collect(), 1.0);
        let acc = p.acceleration();
        for v in &acc[2..18] {
            assert!((v - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn resample_preserves_endpoints() {
        let p = DopplerProfile::new(vec![0.0, 5.0, 10.0], 1.0);
        let r = p.resampled(5);
        assert_eq!(r[0], 0.0);
        assert_eq!(r[4], 10.0);
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn empty_profile_behaviour() {
        let p = DopplerProfile::new(vec![], 1.0);
        assert!(p.is_empty());
        assert_eq!(p.peak_shift(), 0.0);
        assert_eq!(p.mean_shift(), 0.0);
        assert_eq!(p.duration(), 0.0);
    }

    #[test]
    #[should_panic(expected = "hop period")]
    fn rejects_zero_hop() {
        DopplerProfile::new(vec![1.0], 0.0);
    }
}
