//! Mean-value-based contour extraction (the paper's Algorithm 1).
//!
//! Multipath makes several blobs appear in each enhanced column: the finger
//! at the largest |shift| and the slower hand/arm/body reflections closer to
//! the carrier. Simply taking the bin with maximum |Δf| is fragile against
//! random fluctuations, so MVCE first infers the overall motion *direction*
//! from the mean of the non-null rows relative to the carrier row, then
//! takes the extreme row on that side:
//!
//! ```text
//! for each column i:
//!     row = non-null rows of column i
//!     if row not empty:
//!         if mean(row) > cf:  DopShift(i) = max(row)
//!         else:               DopShift(i) = min(row)
//! ```
//!
//! followed by a smoothed-moving-average filter (window 3).

use crate::profile::DopplerProfile;
use echowrite_spectro::Spectrogram;

/// The moving-average window Algorithm 1 applies to the raw contour.
pub const SMA_WINDOW: usize = 3;

/// Default carrier guard band in bins: rows within this distance of the
/// carrier are treated as null. Spectral subtraction cannot perfectly cancel
/// the carrier's main lobe when the resting-hand multipath differs from the
/// lead-in frames, so the first couple of bins around the carrier carry
/// residue rather than finger motion. Shifts this small (≲ 5 Hz ≈ 0.05 m/s)
/// are below any deliberate stroke speed.
pub const DEFAULT_GUARD_BINS: usize = 1;

/// Extracts the raw (unsmoothed) contour in *rows relative to the carrier*,
/// ignoring foreground within `guard_bins` of the carrier row.
///
/// Columns with no foreground keep the carrier value (shift 0), matching the
/// algorithm's initialization `DopShift(1:colNum) = cf`.
pub fn extract_contour_rows(spec: &Spectrogram, guard_bins: usize) -> Vec<f64> {
    let cf = spec.carrier_row() as f64;
    let mut out = Vec::with_capacity(spec.cols());
    for c in 0..spec.cols() {
        out.push(contour_row_impl(spec.rows(), cf, guard_bins, |r| spec.get(r, c)));
    }
    out
}

/// One column of Algorithm 1 on an in-memory binary column — the shared
/// kernel of the batch and incremental extractors (row-visit and
/// accumulation order are identical, so the two paths agree bitwise).
pub fn column_contour_row(column: &[f64], carrier_row: usize, guard_bins: usize) -> f64 {
    contour_row_impl(column.len(), carrier_row as f64, guard_bins, |r| column[r])
}

/// The guard deadzone mapping from a contour row offset to Hz:
/// `sign(r)·(|r| − guard)₊ · bin_hz`. Shared by the batch and incremental
/// extractors so both compute the exact same float expression.
pub fn deadzone_hz(row: f64, guard_bins: usize, bin_hz: f64) -> f64 {
    row.signum() * (row.abs() - guard_bins as f64).max(0.0) * bin_hz
}

#[inline]
fn contour_row_impl(
    rows: usize,
    cf: f64,
    guard_bins: usize,
    mut value: impl FnMut(usize) -> f64,
) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    let mut min_row = usize::MAX;
    let mut max_row = 0usize;
    for r in 0..rows {
        if (r as f64 - cf).abs() <= guard_bins as f64 {
            continue;
        }
        if value(r) != 0.0 {
            sum += r as f64;
            count += 1;
            min_row = min_row.min(r);
            max_row = max_row.max(r);
        }
    }
    if count == 0 {
        0.0
    } else if sum / count as f64 > cf {
        max_row as f64 - cf
    } else {
        min_row as f64 - cf
    }
}

/// Runs full MVCE: contour extraction plus the 3-point moving average,
/// returning a [`DopplerProfile`] in Hz.
///
/// Requires the spectrogram's metadata (`bin_hz`, `hop_seconds`) to be set;
/// when absent (hand-built matrices) the shift stays in row units and the
/// hop defaults to 1 s.
///
/// # Example
///
/// ```
/// use echowrite_spectro::Spectrogram;
/// use echowrite_profile::extract_profile;
/// let mut s = Spectrogram::zeros(9, 4); // carrier at row 4
/// s.set(7, 1, 1.0);
/// s.set(7, 2, 1.0);
/// let p = extract_profile(&s);
/// assert!(p.shifts()[1] > 0.0); // foreground above the carrier → positive
/// ```
pub fn extract_profile(spec: &Spectrogram) -> DopplerProfile {
    extract_profile_with_guard(spec, DEFAULT_GUARD_BINS)
}

/// [`extract_profile`] with an explicit carrier guard band.
///
/// The guard is applied as a *deadzone*: rows inside it are ignored during
/// bin selection, and the guard width is subtracted from the surviving
/// contour magnitude (`sign(s)·(|s| − guard)`). Without the subtraction a
/// slow motion crossing the guard would appear as a step in the profile,
/// whose differentiated "acceleration" could falsely arm the segmenter.
pub fn extract_profile_with_guard(spec: &Spectrogram, guard_bins: usize) -> DopplerProfile {
    let bin = if spec.bin_hz() > 0.0 { spec.bin_hz() } else { 1.0 };
    let hop = if spec.hop_seconds() > 0.0 { spec.hop_seconds() } else { 1.0 };
    let rows = extract_contour_rows(spec, guard_bins);
    let hz: Vec<f64> = rows.iter().map(|&r| deadzone_hz(r, guard_bins, bin)).collect();
    let smoothed = echowrite_dsp::filters::moving_average(&hz, SMA_WINDOW);
    DopplerProfile::new(smoothed, hop)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a binary spectrogram with the given foreground cells
    /// (row, col) and carrier at `rows/2`.
    fn binary(rows: usize, cols: usize, cells: &[(usize, usize)]) -> Spectrogram {
        let mut s = Spectrogram::zeros(rows, cols);
        for &(r, c) in cells {
            s.set(r, c, 1.0);
        }
        s
    }

    #[test]
    fn empty_columns_stay_at_carrier() {
        let s = binary(11, 5, &[]);
        let contour = extract_contour_rows(&s, DEFAULT_GUARD_BINS);
        assert_eq!(contour, vec![0.0; 5]);
    }

    #[test]
    fn positive_blob_takes_max_row() {
        // Carrier at row 5. Foreground at rows 7..=9 in column 0: the mean
        // (8) is above the carrier, so MVCE reports the max row, 9.
        let s = binary(11, 1, &[(7, 0), (8, 0), (9, 0)]);
        assert_eq!(extract_contour_rows(&s, DEFAULT_GUARD_BINS), vec![4.0]);
    }

    #[test]
    fn negative_blob_takes_min_row() {
        let s = binary(11, 1, &[(1, 0), (2, 0), (3, 0)]);
        assert_eq!(extract_contour_rows(&s, DEFAULT_GUARD_BINS), vec![-4.0]);
    }

    /// The defining behaviour: a large slow blob near the carrier plus the
    /// finger's fast blob farther out — MVCE must pick the finger bin, not
    /// the naive max-|Δf| of random noise on the wrong side.
    #[test]
    fn finger_beats_multipath_clutter() {
        // Hand clutter rows 4..=6 straddling the carrier (row 5), finger at
        // rows 8..=9. Mean of {4,5,6,8,9} = 6.4 > 5 → direction positive →
        // take max row 9.
        let s = binary(11, 1, &[(4, 0), (5, 0), (6, 0), (8, 0), (9, 0)]);
        assert_eq!(extract_contour_rows(&s, DEFAULT_GUARD_BINS), vec![4.0]);
    }

    #[test]
    fn direction_decision_uses_mean_not_extreme() {
        // One stray pixel far above (row 9) but the bulk below the carrier:
        // mean of {1,2,3,9} = 3.75 < 5 → direction negative → min row 1.
        // A naive max-|shift| rule would have wrongly picked +4.
        let s = binary(11, 1, &[(1, 0), (2, 0), (3, 0), (9, 0)]);
        assert_eq!(extract_contour_rows(&s, DEFAULT_GUARD_BINS), vec![-4.0]);
    }

    #[test]
    fn profile_is_smoothed() {
        // Columns: 0, spike (3 − guard), 0 → SMA window 3 (shrinking at
        // edges) spreads it to s/2, s/3, s/2.
        let s = binary(9, 3, &[(7, 1)]); // carrier row 4, raw shift +3
        let spike = 3.0 - DEFAULT_GUARD_BINS as f64;
        let p = extract_profile(&s);
        assert_eq!(p.shifts()[0], spike / 2.0);
        assert!((p.shifts()[1] - spike / 3.0).abs() < 1e-12);
        assert_eq!(p.shifts()[2], spike / 2.0);
    }

    #[test]
    fn profile_uses_bin_metadata_when_available() {
        use echowrite_dsp::StftConfig;
        let cfg = StftConfig::paper();
        let n = cfg.fft_size / 2 + 1;
        let carrier_bin = cfg.frequency_bin(20_000.0);
        let mut frames = vec![vec![0.0; n]; 3];
        for f in &mut frames {
            f[carrier_bin + 10] = 1.0;
        }
        let s = Spectrogram::roi_from_stft(&frames, &cfg, 20_000.0, 470.6);
        let p = extract_profile(&s);
        // +10 bins, minus the guard deadzone.
        let expect = (10.0 - DEFAULT_GUARD_BINS as f64) * s.bin_hz();
        for v in p.shifts() {
            assert!((v - expect).abs() < 1e-9, "shift {v}");
        }
        assert!((p.hop_seconds() - 0.02322).abs() < 1e-4);
    }

    #[test]
    fn tracks_a_moving_contour() {
        // A blob walking upward over 6 columns.
        let cells: Vec<(usize, usize)> = (0..6).map(|c| (5 + c, c)).collect();
        let s = binary(12, 6, &cells); // carrier row 6
        let contour = extract_contour_rows(&s, DEFAULT_GUARD_BINS);
        // Column c has foreground at row 5+c → raw shift c−1; rows inside
        // the ±2-bin guard band read as 0 (the deadzone subtraction applies
        // only in extract_profile, not to the raw contour).
        let expect: Vec<f64> = (0..6)
            .map(|c| {
                let shift: f64 = c as f64 - 1.0;
                if shift.abs() <= DEFAULT_GUARD_BINS as f64 { 0.0 } else { shift }
            })
            .collect();
        assert_eq!(contour, expect);
    }
}
