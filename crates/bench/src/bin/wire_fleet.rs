//! The loopback client fleet (DESIGN.md §6.9): replays N synthetic
//! recognition sessions over C real TCP connections against a
//! [`WireServer`], checks every wire transcript bitwise against the
//! isolated in-process recognizer, and reports aggregate realtime factor
//! plus request round-trip percentiles — the numbers in `BENCH_wire.json`.
//!
//! ```text
//! cargo run --release -p echowrite-bench --bin wire_fleet -- \
//!     --sessions 512 --conns 16 --shards 4 [--smoke] [--json out.json]
//! ```
//!
//! Each connection multiplexes `sessions / conns` sessions, driving them
//! round-robin one chunk at a time with at most one request outstanding
//! per connection (the server answers verdicts in request order, so the
//! next verdict always resolves the RTT of the request just sent). A
//! `QueueFull` verdict re-submits the same chunk after draining buffered
//! events; `Shedding` aborts the run — admission is configured to accept
//! the whole fleet, so a shed is a bug worth failing on.

use echowrite::{EchoWrite, EchoWriteConfig, Parallelism, StreamingRecognizer};
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_profile::Stopwatch;
use echowrite_serve::{ServeConfig, SessionManager};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use echowrite_wire::{Request, Response, WireClient, WireServer};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::OnceLock;

/// The Android app's 5-frame push size.
const CHUNK: usize = 5 * 1024;

/// A transcript row, scores compared bitwise.
type Row = (u64, u64, Stroke, [f64; 6]);

struct Args {
    sessions: usize,
    conns: usize,
    shards: usize,
    json: Option<String>,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { sessions: 512, conns: 16, shards: 4, json: None, smoke: false };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--sessions" => {
                let v = it.next().ok_or("--sessions needs a value")?;
                args.sessions = v.parse().map_err(|e| format!("--sessions: {e}"))?;
            }
            "--conns" => {
                let v = it.next().ok_or("--conns needs a value")?;
                args.conns = v.parse().map_err(|e| format!("--conns: {e}"))?;
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a value")?;
                args.shards = v.parse().map_err(|e| format!("--shards: {e}"))?;
            }
            "--json" => args.json = Some(it.next().ok_or("--json needs a path")?),
            "--smoke" => args.smoke = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.smoke {
        args.sessions = args.sessions.min(64);
        args.conns = args.conns.min(8);
    }
    if args.sessions == 0 || args.conns == 0 || args.conns > args.sessions {
        return Err("need sessions >= conns >= 1".into());
    }
    Ok(args)
}

/// The down-converted serving engine every fleet session runs.
fn engine() -> &'static EchoWrite {
    static E: OnceLock<EchoWrite> = OnceLock::new();
    E.get_or_init(|| EchoWrite::with_config(EchoWriteConfig::streaming_downsampled(32)))
}

fn render(strokes: &[Stroke], seed: u64, tail: f64) -> Vec<f64> {
    let perf = Writer::new(WriterParams::nominal(), seed).write_sequence(strokes);
    let mut traj = perf.trajectory;
    if tail > 0.0 {
        let last = *traj.points().last().expect("non-empty trajectory");
        traj.hold(last, tail);
    }
    Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), seed).render(&traj)
}

/// The base audios sessions cycle through (session k plays base k % 4),
/// each with its isolated in-process oracle transcript.
fn bases() -> &'static Vec<(Vec<f64>, Vec<Row>)> {
    static B: OnceLock<Vec<(Vec<f64>, Vec<Row>)>> = OnceLock::new();
    B.get_or_init(|| {
        let audios = [
            render(&[Stroke::S2, Stroke::S5], 11, 1.2),
            render(&[Stroke::S4], 23, 1.0),
            render(&[Stroke::S3, Stroke::S6], 31, 0.0),
            render(&[Stroke::S1, Stroke::S2], 47, 1.1),
        ];
        audios
            .into_iter()
            .map(|audio| {
                let mut rec = StreamingRecognizer::new(engine());
                let mut rows: Vec<Row> = Vec::new();
                for chunk in audio.chunks(CHUNK) {
                    for ev in rec.push(chunk) {
                        rows.push((
                            ev.start_frame as u64,
                            ev.end_frame as u64,
                            ev.classification.stroke,
                            ev.classification.scores,
                        ));
                    }
                }
                for ev in rec.finish() {
                    rows.push((
                        ev.start_frame as u64,
                        ev.end_frame as u64,
                        ev.classification.stroke,
                        ev.classification.scores,
                    ));
                }
                (audio, rows)
            })
            .collect()
    })
}

/// What one connection thread brings home.
struct ConnReport {
    /// Round-trip times, one per request, in microseconds.
    rtts_us: Vec<u64>,
    /// `QueueFull` verdicts absorbed (each retried until enqueued).
    queue_full: u64,
    /// Wire transcripts per session id.
    transcripts: BTreeMap<u64, Vec<Row>>,
    /// Fatal error description, if the connection died.
    error: Option<String>,
}

/// Drives this connection's sessions round-robin, one chunk per turn,
/// then drains events until every owned session has finished.
fn run_connection(addr: std::net::SocketAddr, ids: Vec<u64>) -> ConnReport {
    let mut report = ConnReport {
        rtts_us: Vec::new(),
        queue_full: 0,
        transcripts: ids.iter().map(|&id| (id, Vec::new())).collect(),
        error: None,
    };
    let mut client = match WireClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            report.error = Some(format!("connect: {e}"));
            return report;
        }
    };
    // One request outstanding at a time: send, block for the verdict,
    // retry on QueueFull. RTT covers send → verdict.
    let ask = |client: &mut WireClient, req: &Request, report: &mut ConnReport| -> bool {
        loop {
            let timer = Stopwatch::start();
            match client.request(req) {
                Ok(Response::Enqueued { .. }) => {
                    report.rtts_us.push((timer.elapsed_ms() * 1_000.0) as u64);
                    return true;
                }
                Ok(Response::QueueFull { .. }) => {
                    report.rtts_us.push((timer.elapsed_ms() * 1_000.0) as u64);
                    report.queue_full += 1;
                    // Back off briefly so retries don't saturate the wire
                    // while the shard drains (bench crate is time-exempt).
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                Ok(other) => {
                    report.error = Some(format!("unexpected verdict {other:?}"));
                    return false;
                }
                Err(e) => {
                    report.error = Some(format!("request: {e}"));
                    return false;
                }
            }
        }
    };

    for &id in &ids {
        if !ask(&mut client, &Request::Open { session: id }, &mut report) {
            return report;
        }
    }
    let mut cursors: BTreeMap<u64, usize> = ids.iter().map(|&id| (id, 0)).collect();
    let mut live: Vec<u64> = ids.clone();
    while !live.is_empty() {
        let mut still = Vec::with_capacity(live.len());
        for &id in &live {
            let audio = &bases()[(id as usize) % bases().len()].0;
            let pos = cursors[&id];
            let end = (pos + CHUNK).min(audio.len());
            let req = Request::Push { session: id, samples: audio[pos..end].to_vec() };
            if !ask(&mut client, &req, &mut report) {
                return report;
            }
            cursors.insert(id, end);
            if end == audio.len() {
                if !ask(&mut client, &Request::Finish { session: id }, &mut report) {
                    return report;
                }
            } else {
                still.push(id);
            }
        }
        live = still;
    }

    let mut finished = 0usize;
    while finished < ids.len() {
        match client.next_event() {
            Ok(Response::Segment { session, start_frame, end_frame, classification }) => {
                let Some(cls) = classification else {
                    report.error = Some(format!("degraded segment on session {session}"));
                    return report;
                };
                if let Some(rows) = report.transcripts.get_mut(&session) {
                    rows.push((start_frame, end_frame, cls.stroke, cls.scores));
                }
            }
            Ok(Response::Finished { .. }) => finished += 1,
            Ok(other) => {
                report.error = Some(format!("unexpected event {other:?}"));
                return report;
            }
            Err(e) => {
                report.error = Some(format!("event stream: {e}"));
                return report;
            }
        }
    }
    report
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("wire_fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    echowrite_bench::print_bench_environment();
    eprintln!(
        "wire_fleet: sessions={} conns={} shards={} smoke={}",
        args.sessions, args.conns, args.shards, args.smoke
    );

    // Render audio + oracles before the clock starts.
    let total_audio_samples: u64 = (0..args.sessions)
        .map(|k| bases()[k % bases().len()].0.len() as u64)
        .sum();
    let sample_rate = engine().config().stft.sample_rate;

    let manager = SessionManager::new(
        engine().clone(),
        ServeConfig {
            shards: Parallelism::Threads(args.shards),
            // Shallow queues keep enqueue→processed latency bounded; the
            // fleet absorbs the extra QueueFull verdicts with backoff.
            queue_capacity: 256,
            max_sessions: args.sessions + 8,
            high_water: args.sessions + 8,
            deadline_chunks: None,
            idle_timeout_samples: None,
            batch_max: 8,
        },
    )
    .expect("valid serve config");
    let server = WireServer::bind("127.0.0.1:0", manager).expect("loopback bind");
    let addr = server.local_addr();

    // Partition sessions across connections and replay.
    let wall = Stopwatch::start();
    let reports: Vec<ConnReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.conns)
            .map(|c| {
                let ids: Vec<u64> =
                    (0..args.sessions).filter(|k| k % args.conns == c).map(|k| k as u64).collect();
                scope.spawn(move || run_connection(addr, ids))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("connection thread")).collect()
    });
    let wall_s = wall.elapsed_ms() / 1e3;

    let report = server.shutdown();
    let m = &report.metrics;

    // Verify every wire transcript bitwise against its in-process oracle.
    let mut mismatches = 0usize;
    let mut checked = 0usize;
    let mut errors = Vec::new();
    let mut rtts: Vec<u64> = Vec::new();
    let mut queue_full_retries = 0u64;
    for r in &reports {
        if let Some(e) = &r.error {
            errors.push(e.clone());
        }
        queue_full_retries += r.queue_full;
        rtts.extend_from_slice(&r.rtts_us);
        for (&id, rows) in &r.transcripts {
            let want = &bases()[(id as usize) % bases().len()].1;
            checked += 1;
            if rows != want {
                mismatches += 1;
                if mismatches <= 3 {
                    eprintln!("wire_fleet: session {id} transcript diverged from in-process oracle");
                }
            }
        }
    }
    rtts.sort_unstable();
    let p50 = percentile(&rtts, 0.50);
    let p99 = percentile(&rtts, 0.99);
    let audio_s = total_audio_samples as f64 / sample_rate;
    let realtime_factor = if wall_s > 0.0 { audio_s / wall_s } else { 0.0 };

    let env = echowrite_bench::bench_environment();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"crates/bench/src/bin/wire_fleet.rs\",\n",
            "  \"command\": \"cargo run --release -p echowrite-bench --bin wire_fleet -- ",
            "--sessions {sessions} --conns {conns} --shards {shards}\",\n",
            "  \"environment\": {{\n",
            "    \"cpus\": {cpus},\n",
            "    \"effective_parallelism\": {par},\n",
            "    \"simd_backend\": \"{simd}\",\n",
            "    \"simd_features\": [{features}]\n",
            "  }},\n",
            "  \"fleet\": {{\n",
            "    \"sessions\": {sessions},\n",
            "    \"connections\": {conns},\n",
            "    \"shards\": {shards},\n",
            "    \"chunk_samples\": {chunk},\n",
            "    \"audio_seconds_total\": {audio_s:.3},\n",
            "    \"wall_seconds\": {wall_s:.3},\n",
            "    \"aggregate_realtime_factor\": {rtf:.2},\n",
            "    \"rtt_p50_us\": {p50},\n",
            "    \"rtt_p99_us\": {p99},\n",
            "    \"requests\": {requests},\n",
            "    \"queue_full_retries\": {qf},\n",
            "    \"transcripts_checked\": {checked},\n",
            "    \"transcript_mismatches\": {mismatches}\n",
            "  }},\n",
            "  \"server_metrics\": {{\n",
            "    \"sessions_opened\": {opened},\n",
            "    \"sessions_finished\": {finished},\n",
            "    \"sessions_shed\": {shed},\n",
            "    \"pushes\": {pushes},\n",
            "    \"queue_full\": {queue_full},\n",
            "    \"wire_connections\": {wconns},\n",
            "    \"wire_frames_read\": {wread},\n",
            "    \"wire_frames_written\": {wwritten},\n",
            "    \"wire_malformed_frames\": {wmal},\n",
            "    \"wire_write_stalls\": {wstall},\n",
            "    \"push_latency_p99_us\": {push_p99}\n",
            "  }}\n",
            "}}\n",
        ),
        sessions = args.sessions,
        conns = args.conns,
        shards = args.shards,
        cpus = env.cpus,
        par = env.effective_parallelism,
        simd = env.simd_backend,
        features = env
            .simd_features
            .iter()
            .map(|f| format!("\"{f}\""))
            .collect::<Vec<_>>()
            .join(", "),
        chunk = CHUNK,
        audio_s = audio_s,
        wall_s = wall_s,
        rtf = realtime_factor,
        p50 = p50,
        p99 = p99,
        requests = rtts.len(),
        qf = queue_full_retries,
        checked = checked,
        mismatches = mismatches,
        opened = m.sessions_opened,
        finished = m.sessions_finished,
        shed = m.sessions_shed,
        pushes = m.pushes,
        queue_full = m.queue_full,
        wconns = m.wire_connections,
        wread = m.wire_frames_read,
        wwritten = m.wire_frames_written,
        wmal = m.wire_malformed_frames,
        wstall = m.wire_write_stalls,
        push_p99 = m.push_latency_p99_us.map_or_else(|| "null".to_string(), |v| v.to_string()),
    );
    match &args.json {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("wire_fleet: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wire_fleet: wrote {path}");
        }
        None => print!("{json}"),
    }

    let mut ok = true;
    for e in &errors {
        eprintln!("wire_fleet: connection error: {e}");
        ok = false;
    }
    if mismatches > 0 {
        eprintln!("wire_fleet: {mismatches}/{checked} transcripts diverged");
        ok = false;
    }
    if checked != args.sessions {
        eprintln!("wire_fleet: only {checked}/{} transcripts collected", args.sessions);
        ok = false;
    }
    if m.wire_malformed_frames != 0 {
        eprintln!("wire_fleet: {} malformed frames on a clean fleet", m.wire_malformed_frames);
        ok = false;
    }
    if m.sessions_finished != args.sessions as u64 {
        eprintln!(
            "wire_fleet: {}/{} sessions finished",
            m.sessions_finished, args.sessions
        );
        ok = false;
    }
    eprintln!(
        "wire_fleet: realtime_factor={realtime_factor:.2} rtt_p50_us={p50} rtt_p99_us={p99} \
         queue_full_retries={queue_full_retries} ok={ok}"
    );
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
