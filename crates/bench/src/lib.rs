//! Shared fixtures for the EchoWrite benchmarks.
//!
//! Each bench target regenerates the workload behind one paper table or
//! figure (see `DESIGN.md` §5 for the experiment index). The fixtures here
//! render deterministic audio traces once so the benches measure the
//! pipeline, not the synthesizer.

use echowrite::EchoWrite;
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use std::sync::OnceLock;

/// A process-wide engine (template generation costs a few hundred ms).
pub fn engine() -> &'static EchoWrite {
    static E: OnceLock<EchoWrite> = OnceLock::new();
    E.get_or_init(EchoWrite::new)
}

/// Renders a single-stroke trace in the given environment.
pub fn stroke_trace(stroke: Stroke, env: EnvironmentProfile, seed: u64) -> Vec<f64> {
    let perf = Writer::new(WriterParams::nominal(), seed).write_stroke(stroke);
    Scene::new(DeviceProfile::mate9(), env, seed).render(&perf.trajectory)
}

/// Renders a word trace (stroke sequence of `word`) in the meeting room.
pub fn word_trace(word: &str, seed: u64) -> Vec<f64> {
    let seq = engine().scheme().encode_word(word).expect("letters only");
    let perf = Writer::new(WriterParams::nominal(), seed).write_sequence(&seq);
    Scene::new(
        DeviceProfile::mate9(),
        EnvironmentProfile::meeting_room(),
        seed,
    )
    .render(&perf.trajectory)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_render() {
        let t = stroke_trace(Stroke::S2, EnvironmentProfile::meeting_room(), 1);
        assert!(t.len() > 44_100);
        let w = word_trace("me", 1);
        assert!(w.len() > t.len() / 2);
    }
}
