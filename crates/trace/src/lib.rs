//! `echowrite-trace` — dependency-free deterministic observability for the
//! whole EchoWrite pipeline (DESIGN.md §6.5).
//!
//! Three pieces, one crate, zero dependencies:
//!
//! - **Spans and events** ([`span`], [`counter`], [`instant`], [`emit`]):
//!   every pipeline stage boundary — STFT, down-conversion, enhancement,
//!   profile building, segmentation, DTW (with prune/early-abandon
//!   counters), word decoding (candidate sets and per-hypothesis
//!   posteriors), the core streaming push path, and serve shard/queue
//!   events — reports through one static-dispatch gate. Disabled, the
//!   whole thing is a single relaxed atomic load per site (a constant
//!   `false` under the `off` feature), and recognition output is bitwise
//!   identical either way.
//! - **The recording sink** ([`RecordingSink`]): a bounded ring buffer
//!   exporting Chrome `trace_event` JSON and a per-stage latency/counter
//!   summary.
//! - **Metric primitives** ([`metrics`]): the lock-free counters, gauges,
//!   histograms, and the Prometheus text writer shared by
//!   `echowrite-serve` and the offline harness.
//!
//! # Timestamp policy
//!
//! This crate never reads a clock — echolint's determinism rule applies to
//! it in full, with no time exemption. Event timestamps (`tick_us`) are
//! *logical audio time*: microseconds derived from samples pushed or
//! frames emitted, converted by the caller (see [`samples_to_us`]). Span
//! durations (`wall_us`) are measured by callers that own a quarantined
//! `echowrite_profile::Stopwatch` and passed in as plain numbers.

pub mod event;
pub mod flight;
pub mod metrics;
pub mod recording;
pub mod sink;

pub use event::{EventKind, SmallStr, Stage, TraceEvent, TICK_UNSET};
pub use flight::{flight_to_chrome_json, FlightEntry, FlightRing, DEFAULT_FLIGHT_CAPACITY};
pub use recording::{RecordingSink, StageSummary, DEFAULT_CAPACITY};
pub use sink::{
    disable, emit, enabled, install_custom, install_noop, install_recording, scoped, NoopSink,
    ScopedMode, ScopedTrace, TraceSink,
};

/// Converts a sample count at `sample_rate` Hz to microseconds of audio
/// time — the logical tick axis of every trace.
#[inline]
pub fn samples_to_us(samples: u64, sample_rate: f64) -> u64 {
    if sample_rate <= 0.0 {
        return 0;
    }
    (samples as f64 * 1_000_000.0 / sample_rate) as u64
}

/// Emits a completed span: `wall_us` is the caller-measured duration
/// (quarantined `Stopwatch`), `value` an optional payload such as frames
/// processed.
#[inline]
pub fn span(stage: Stage, name: &'static str, tick_us: u64, wall_us: u64, value: f64) {
    if !enabled() {
        return;
    }
    emit(TraceEvent {
        stage,
        name,
        kind: EventKind::Span,
        tick_us,
        wall_us,
        value,
        detail: SmallStr::empty(),
    });
}

/// Emits a completed span carrying a provenance string — used where the
/// span's identity matters downstream, e.g. serve push spans tagged with
/// the wire request id they answer.
#[inline]
pub fn span_detailed(
    stage: Stage,
    name: &'static str,
    tick_us: u64,
    wall_us: u64,
    value: f64,
    detail: SmallStr,
) {
    if !enabled() {
        return;
    }
    emit(TraceEvent { stage, name, kind: EventKind::Span, tick_us, wall_us, value, detail });
}

/// Emits a counter sample.
#[inline]
pub fn counter(stage: Stage, name: &'static str, tick_us: u64, value: f64) {
    if !enabled() {
        return;
    }
    emit(TraceEvent {
        stage,
        name,
        kind: EventKind::Counter,
        tick_us,
        wall_us: 0,
        value,
        detail: SmallStr::empty(),
    });
}

/// Emits an instant marker with a provenance string.
#[inline]
pub fn instant(stage: Stage, name: &'static str, tick_us: u64, detail: SmallStr) {
    if !enabled() {
        return;
    }
    emit(TraceEvent {
        stage,
        name,
        kind: EventKind::Instant,
        tick_us,
        wall_us: 0,
        value: 0.0,
        detail,
    });
}

/// Emits an instant carrying both a value and a provenance string — used
/// for decision provenance such as per-hypothesis decoder posteriors.
#[inline]
pub fn annotated(stage: Stage, name: &'static str, tick_us: u64, value: f64, detail: SmallStr) {
    if !enabled() {
        return;
    }
    emit(TraceEvent {
        stage,
        name,
        kind: EventKind::Instant,
        tick_us,
        wall_us: 0,
        value,
        detail,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_to_us_conversion() {
        assert_eq!(samples_to_us(44_100, 44_100.0), 1_000_000);
        assert_eq!(samples_to_us(0, 44_100.0), 0);
        assert_eq!(samples_to_us(100, 0.0), 0);
        assert_eq!(samples_to_us(22_050, 44_100.0), 500_000);
    }

    #[test]
    #[cfg(not(feature = "off"))]
    fn helpers_emit_into_scoped_recording() {
        let guard = scoped(ScopedMode::Recording(64));
        span(Stage::Stream, "push", 1_000, 250, 5.0);
        counter(Stage::Dtw, "lb_skip", TICK_UNSET, 3.0);
        instant(Stage::Segment, "stroke_open", 2_000, SmallStr::empty());
        annotated(Stage::Lang, "hypothesis", TICK_UNSET, -4.2, SmallStr::new("cat"));
        let sink = guard.recording().expect("recording sink");
        let events = sink.events();
        assert_eq!(events.len(), 4);
        // Tickless events inherited the last explicit tick.
        assert_eq!(events.get(1).map(|e| e.tick_us), Some(1_000));
        assert_eq!(events.get(3).map(|e| e.detail.as_str()), Some("cat"));
    }

    #[test]
    fn helpers_are_inert_when_disabled() {
        let _guard = scoped(ScopedMode::Disabled);
        // No sink installed: these must simply return.
        span(Stage::Stft, "x", 0, 0, 0.0);
        counter(Stage::Stft, "x", 0, 1.0);
        instant(Stage::Stft, "x", 0, SmallStr::empty());
        annotated(Stage::Stft, "x", 0, 1.0, SmallStr::empty());
    }
}
