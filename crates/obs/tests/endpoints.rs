//! End-to-end tests of the admin plane over real loopback sockets: all
//! five endpoint groups, readiness under shed, the trace lifecycle, and
//! the malformed-request fuzz contract (a bad request closes only its
//! own connection and bumps `obs_malformed_requests`).

use echowrite::{EchoWrite, EchoWriteConfig, Parallelism};
use echowrite_obs::ObsServer;
use echowrite_serve::{Request, ServeConfig, SessionId, SessionManager};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

fn manager(cfg: ServeConfig) -> Arc<SessionManager> {
    let engine = EchoWrite::with_config(EchoWriteConfig::streaming());
    Arc::new(SessionManager::new(engine, cfg).expect("valid config"))
}

fn one_shard() -> ServeConfig {
    ServeConfig { shards: Parallelism::Threads(1), ..ServeConfig::default() }
}

/// Sends raw bytes and returns (status line, full body) once the server
/// closes the connection.
fn raw(addr: SocketAddr, bytes: &[u8]) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(bytes).expect("write");
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    let status = response.lines().next().unwrap_or_default().to_string();
    let body = response.split("\r\n\r\n").nth(1).unwrap_or_default().to_string();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    raw(addr, format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
}

fn post(addr: SocketAddr, path: &str) -> (String, String) {
    raw(addr, format!("POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: 0\r\n\r\n").as_bytes())
}

fn status_code(status_line: &str) -> u16 {
    status_line.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("status code")
}

#[test]
fn serves_metrics_health_sessions_and_flight() {
    let m = manager(one_shard());
    let obs = ObsServer::bind("127.0.0.1:0", Arc::downgrade(&m)).expect("bind");
    let addr = obs.local_addr();

    // Traffic with a tagged request id so flight dumps carry it.
    assert!(matches!(
        m.submit_tagged(Request::Open(SessionId(7)), 600),
        echowrite_serve::SubmitVerdict::Enqueued
    ));
    let _ = m.submit_tagged(Request::Push(SessionId(7), &[0.0; 2048]), 601);
    m.quiesce();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status_code(&status), 200);
    assert_eq!(body, "ok\n");

    let (status, body) = get(addr, "/readyz");
    assert_eq!(status_code(&status), 200, "not shedding: {body}");

    let (status, body) = get(addr, "/metrics");
    assert_eq!(status_code(&status), 200);
    assert!(body.contains("# TYPE echowrite_serve_sessions_opened_total counter"));
    assert!(
        body.contains("echowrite_serve_obs_requests_total"),
        "admin plane must count itself: {body}"
    );

    let (status, body) = get(addr, "/sessions");
    assert_eq!(status_code(&status), 200);
    assert!(body.contains("\"session\":7"), "live session listed: {body}");
    assert!(body.contains("\"samples_in\":2048"), "ingest counter: {body}");
    assert!(body.contains("\"suspended\":false"));

    let (status, body) = get(addr, "/flight");
    assert_eq!(status_code(&status), 200);
    assert!(body.starts_with("{\"displayTimeUnit\""), "Chrome-trace shape: {body}");
    assert!(body.contains("\"req\":601"), "flight entries carry request ids: {body}");

    let (status, body) = get(addr, "/flight/7");
    assert_eq!(status_code(&status), 200);
    assert!(body.contains("\"sid\":7"));
    let (status, body) = get(addr, "/flight/999");
    assert_eq!(status_code(&status), 200);
    assert!(!body.contains("\"sid\":7"), "filtered dump must exclude other sessions: {body}");
    let (status, _) = get(addr, "/flight/not-a-number");
    assert_eq!(status_code(&status), 400);

    let (status, _) = get(addr, "/nope");
    assert_eq!(status_code(&status), 404);
    let (status, _) = post(addr, "/nope");
    assert_eq!(status_code(&status), 405);

    obs.shutdown();
}

#[test]
fn readyz_reflects_shed_state_and_manager_loss() {
    let m = manager(ServeConfig { max_sessions: 1, high_water: 1, ..one_shard() });
    let obs = ObsServer::bind("127.0.0.1:0", Arc::downgrade(&m)).expect("bind");
    let addr = obs.local_addr();

    let _ = m.open(SessionId(1));
    m.quiesce();
    let (status, _) = get(addr, "/readyz");
    assert_eq!(status_code(&status), 200, "below high water");

    // The second open trips the hysteresis latch: not ready.
    let _ = m.open(SessionId(2));
    let (status, body) = get(addr, "/readyz");
    assert_eq!(status_code(&status), 503, "shedding must fail readiness");
    assert_eq!(body, "shedding\n");
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status_code(&status), 200, "liveness is not readiness");

    // Drop the manager: every manager-backed endpoint degrades to 503,
    // liveness still answers.
    m.quiesce();
    drop(m);
    for path in ["/readyz", "/metrics", "/sessions", "/flight"] {
        let (status, _) = get(addr, path);
        assert_eq!(status_code(&status), 503, "{path} after manager shutdown");
    }
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status_code(&status), 200);

    obs.shutdown();
}

#[test]
fn trace_lifecycle_records_without_restart() {
    let m = manager(one_shard());
    let obs = ObsServer::bind("127.0.0.1:0", Arc::downgrade(&m)).expect("bind");
    let addr = obs.local_addr();

    let (status, _) = get(addr, "/trace/dump");
    assert_eq!(status_code(&status), 404, "nothing recorded yet");
    let (status, _) = post(addr, "/trace/stop");
    assert_eq!(status_code(&status), 409, "stop before start");

    let (status, _) = post(addr, "/trace/start");
    assert_eq!(status_code(&status), 200);
    let (status, _) = post(addr, "/trace/start");
    assert_eq!(status_code(&status), 409, "double start");

    // Traffic while the gate is on lands in the recording.
    let _ = m.open(SessionId(3));
    let _ = m.push(SessionId(3), &[0.0; 2048]);
    m.quiesce();

    let (status, _) = post(addr, "/trace/stop");
    assert_eq!(status_code(&status), 200);
    assert!(!echowrite_trace::enabled(), "stop must gate tracing off");

    let (status, body) = get(addr, "/trace/dump");
    assert_eq!(status_code(&status), 200);
    assert!(body.contains("\"traceEvents\""), "Chrome-trace dump: {body}");
    assert!(body.contains("\"push\""), "serve spans recorded: {body}");

    obs.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite (c): any malformed request line gets a 400 (or a plain
    /// close), closes only its own connection, bumps the malformed
    /// counter, and leaves the plane serving other connections.
    #[test]
    fn malformed_requests_are_isolated(
        junk in prop::collection::vec(1u8..255, 1..64),
    ) {
        let m = manager(one_shard());
        let obs = ObsServer::bind("127.0.0.1:0", Arc::downgrade(&m)).expect("bind");
        let addr = obs.local_addr();

        // Force the request line to be malformed regardless of the drawn
        // bytes: prefix a method no route accepts.
        let mut request = b"XQ-".to_vec();
        request.extend(junk.iter().copied().filter(|&b| b != b'\r' && b != b'\n'));
        request.extend_from_slice(b"\r\n\r\n");
        let before = m.metrics().obs_malformed_requests.get();
        let (status, _) = raw(addr, &request);
        // Either a 400 answer or (for non-UTF-8 garbage) the same 400 —
        // never a success, never a hang.
        prop_assert_eq!(status_code(&status), 400);
        prop_assert_eq!(m.metrics().obs_malformed_requests.get(), before + 1);

        // The plane is unharmed: a well-formed request on a fresh
        // connection still succeeds.
        let (status, body) = get(addr, "/healthz");
        prop_assert_eq!(status_code(&status), 200);
        prop_assert_eq!(body.as_str(), "ok\n");

        obs.shutdown();
        m.quiesce();
    }
}
