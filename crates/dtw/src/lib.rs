//! Dynamic time warping and stroke classification (paper Sec. III-C).
//!
//! EchoWrite recognizes a segmented Doppler profile by matching it against
//! six pre-stored stroke templates with dynamic time warping, which
//! "outperforms other methods by taking stretch and contraction into
//! consideration" — the same stroke written faster or slower warps onto the
//! same template. Because the templates are intrinsic to the strokes (not
//! learned from users), the system is training-free.
//!
//! This crate provides:
//! - [`dtw`]: full and Sakoe-Chiba-banded DTW with optional path-length
//!   normalization,
//! - [`templates::TemplateLibrary`]: the labeled template store,
//! - [`classifier::StrokeClassifier`]: nearest-template classification with
//!   soft per-stroke likelihoods (the `P(sᵢ|lᵢ)` terms of Eq. 7),
//! - [`confusion::ConfusionMatrix`]: per-class accuracy and the empirical
//!   confusion statistics that drive the paper's stroke-correction rules.

pub mod classifier;
pub mod confusion;
pub mod dtw;
pub mod templates;

pub use classifier::{Classification, StrokeClassifier};
pub use confusion::ConfusionMatrix;
pub use dtw::{dtw_distance, dtw_distance_pruned, lb_keogh, DtwConfig};
pub use templates::TemplateLibrary;
