//! User-defined input schemes (the paper's Sec. VII-C future work).
//!
//! ```sh
//! cargo run --release --example custom_scheme
//! ```
//!
//! Builds an alternative letter→stroke mapping, validates it (every letter
//! mapped, no empty gesture group), rebuilds the dictionary, and compares
//! its T9-style collision statistics against the paper scheme.

use echowrite_corpus::Lexicon;
use echowrite_gesture::{InputScheme, Stroke};
use echowrite_lang::{Dictionary, WordDecoder};

fn main() {
    let paper = InputScheme::paper();

    // A deliberately different mapping: letters assigned to strokes by
    // their alphabet position (round-robin).
    let round_robin = InputScheme::from_pairs(
        ('A'..='Z')
            .enumerate()
            .map(|(i, c)| (c, Stroke::from_index(i % 6).expect("index < 6"))),
    )
    .expect("round-robin scheme is total");

    // An invalid scheme is rejected with a useful error.
    let broken = InputScheme::from_pairs(('A'..='Z').map(|c| (c, Stroke::S1)));
    println!("degenerate scheme rejected: {}\n", broken.unwrap_err());

    let lexicon = Lexicon::embedded();
    for (name, scheme) in [("paper", &paper), ("round-robin", &round_robin)] {
        let dict = Dictionary::build(lexicon, scheme);
        println!("scheme {name:<12} groups {:?}", scheme.group_sizes());
        println!(
            "  {} words → {} distinct stroke sequences (collision factor {:.2})",
            dict.len(),
            dict.sequence_count(),
            dict.mean_collision()
        );

        // How ambiguous is a common word under each scheme?
        let decoder = WordDecoder::new(dict);
        for word in ["the", "water", "can"] {
            let seq = scheme.encode_word(word).expect("letters only");
            let cands = decoder.decode(&seq);
            let rank = cands.iter().position(|c| c.word == word);
            println!(
                "  {word:<6} -> [{}] rank {:?} among {:?}",
                echowrite_gesture::stroke::format_sequence(&seq),
                rank.map(|r| r + 1),
                cands.iter().map(|c| c.word.as_str()).collect::<Vec<_>>()
            );
        }
        println!();
    }

    println!("The paper scheme groups letters by their natural first/second");
    println!("stroke, which both aids memorability and keeps collisions low.");
}
