//! End-to-end integration tests: raw simulated microphone audio through the
//! complete recognition stack.

use echowrite::EchoWrite;
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use std::sync::OnceLock;

fn engine() -> &'static EchoWrite {
    static E: OnceLock<EchoWrite> = OnceLock::new();
    E.get_or_init(EchoWrite::new)
}

fn render(strokes: &[Stroke], seed: u64, env: EnvironmentProfile) -> Vec<f64> {
    let perf = Writer::new(WriterParams::nominal(), seed).write_sequence(strokes);
    Scene::new(DeviceProfile::mate9(), env, seed).render(&perf.trajectory)
}

#[test]
fn all_six_strokes_recognized_in_meeting_room() {
    let e = engine();
    let mut correct = 0;
    for (i, &stroke) in Stroke::ALL.iter().enumerate() {
        let audio = render(&[stroke], 100 + i as u64, EnvironmentProfile::meeting_room());
        let rec = e.recognize_strokes(&audio);
        if rec.strokes() == vec![stroke] {
            correct += 1;
        }
    }
    assert!(correct >= 5, "only {correct}/6 strokes recognized end-to-end");
}

#[test]
fn words_of_each_length_class_decode_into_top5() {
    let e = engine();
    let mut hits = 0;
    let words = ["me", "the", "water", "people"];
    for (i, word) in words.iter().enumerate() {
        let seq = e.scheme().encode_word(word).unwrap();
        let audio = render(&seq, 500 + i as u64, EnvironmentProfile::meeting_room());
        let rec = e.recognize_word(&audio);
        if rec.in_top(word, 5) {
            hits += 1;
        }
    }
    assert!(hits >= 3, "only {hits}/4 words reached the top-5 list");
}

#[test]
fn recognition_is_deterministic() {
    let e = engine();
    let audio = render(
        &[Stroke::S5, Stroke::S2],
        77,
        EnvironmentProfile::lab_area(),
    );
    let a = e.recognize_word(&audio);
    let b = e.recognize_word(&audio);
    assert_eq!(a.strokes.strokes(), b.strokes.strokes());
    assert_eq!(
        a.candidates.iter().map(|c| &c.word).collect::<Vec<_>>(),
        b.candidates.iter().map(|c| &c.word).collect::<Vec<_>>()
    );
}

#[test]
fn multi_stroke_sequences_segment_correctly() {
    let e = engine();
    let strokes = [Stroke::S2, Stroke::S3, Stroke::S6, Stroke::S1];
    let audio = render(&strokes, 31, EnvironmentProfile::meeting_room());
    let rec = e.recognize_strokes(&audio);
    assert_eq!(
        rec.segments.len(),
        strokes.len(),
        "segment count mismatch: {:?}",
        rec.segments
    );
    // Segments must be ordered and disjoint.
    for w in rec.segments.windows(2) {
        assert!(w[0].end <= w[1].start);
    }
}

#[test]
fn silence_and_noise_only_produce_no_strokes() {
    let e = engine();
    // Pure digital silence.
    assert!(e.recognize_strokes(&vec![0.0; 88_200]).strokes().is_empty());
    // A noisy room with no writer at all: hold the finger at rest.
    let mut traj = echowrite_gesture::Trajectory::new(1.0 / 44_100.0);
    traj.hold(echowrite_gesture::Vec3::new(0.05, 0.08, 0.14), 3.0);
    let audio = Scene::new(
        DeviceProfile::mate9(),
        EnvironmentProfile::lab_area(),
        3,
    )
    .render(&traj);
    let rec = e.recognize_strokes(&audio);
    assert!(
        rec.strokes().is_empty(),
        "phantom strokes in a writer-less room: {:?}",
        rec.strokes()
    );
}

#[test]
fn watch_device_works_end_to_end() {
    let e = engine();
    let perf = Writer::new(WriterParams::nominal(), 55).write_stroke(Stroke::S2);
    let audio = Scene::new(
        DeviceProfile::watch2(),
        EnvironmentProfile::meeting_room(),
        55,
    )
    .render(&perf.trajectory);
    let rec = e.recognize_strokes(&audio);
    assert_eq!(rec.strokes(), vec![Stroke::S2]);
}

#[test]
fn timing_is_faster_than_realtime() {
    let e = engine();
    let audio = render(&[Stroke::S4], 9, EnvironmentProfile::meeting_room());
    let rec = e.recognize_word(&audio);
    let audio_ms = audio.len() as f64 / 44.1;
    assert!(
        rec.strokes.timing.total_ms() < audio_ms / 2.0,
        "pipeline {} ms for {} ms of audio",
        rec.strokes.timing.total_ms(),
        audio_ms
    );
}

#[test]
fn decode_soft_and_confusion_paths_agree_on_clean_input() {
    // Individual seeds can produce genuinely sloppy strokes (that is the
    // realism the error model needs), so require a majority of seeds to
    // agree rather than every one.
    let e = engine();
    let seq = e.scheme().encode_word("and").unwrap();
    let mut both_agree = 0;
    for seed in [11u64, 15, 23] {
        let audio = render(&seq, seed, EnvironmentProfile::meeting_room());
        let word_rec = e.recognize_word(&audio);
        let seq_candidates = e.decode_sequence(&word_rec.strokes.strokes());
        if word_rec.in_top("and", 5) && seq_candidates.iter().any(|c| c.word == "and") {
            both_agree += 1;
        }
    }
    assert!(both_agree >= 2, "only {both_agree}/3 seeds decoded 'and'");
}
