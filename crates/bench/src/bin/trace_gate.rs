//! The tracing overhead gate (CI's `trace-overhead` job).
//!
//! Measures the steady-state per-push latency of the incremental streaming
//! path twice in the same process — tracing disabled vs the recording sink
//! — and **fails (exit 1) when the recording sink costs more than 5%**.
//! In-process A/B is the only comparison that is meaningful across CI
//! runner generations; the committed `BENCH_streaming.json` baseline is
//! reported alongside for context and enforced only when
//! `TRACE_GATE_STRICT=1` (same-machine reruns).
//!
//! With `--trace-out <path>` the gate also streams one full session under
//! the recording sink and writes the Chrome `trace_event` JSON there, so
//! CI can upload the trace as an artifact.
//!
//! ```sh
//! cargo run --release -p echowrite-bench --bin trace_gate -- --trace-out trace.json
//! ```

use echowrite::{EchoWrite, EchoWriteConfig, StreamingRecognizer};
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use echowrite_trace::ScopedMode;
use std::time::Instant;

const SAMPLE_RATE: usize = 44_100;
const SESSION_SECONDS: usize = 12;
/// Five STFT hops per push — the chunk an audio callback would hand over.
const CHUNK: usize = 5 * 1024;
/// Pushes measured per round (steady state, cycling the session audio).
const PUSHES_PER_ROUND: usize = 120;
/// Alternating disabled/recording rounds; the per-mode minimum defeats
/// transient CI noise (thermal ramps, neighbor VMs).
const ROUNDS: usize = 5;
/// The budget: recording-sink pushes may cost at most 5% over disabled.
const MAX_RATIO: f64 = 1.05;

/// The 12 s four-stroke session `BENCH_streaming.json` was measured on.
fn session_audio() -> Vec<f64> {
    let strokes = [Stroke::S2, Stroke::S4, Stroke::S1, Stroke::S3];
    let perf = Writer::new(WriterParams::nominal(), 7).write_sequence(&strokes);
    let mut audio = Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), 7)
        .render(&perf.trajectory);
    audio.resize(SESSION_SECONDS * SAMPLE_RATE, 0.0);
    audio
}

/// Mean per-push nanoseconds for one round under `mode`: 6 s prefill, then
/// `PUSHES_PER_ROUND` timed pushes cycling the audio.
fn round_mean_ns(engine: &EchoWrite, audio: &[f64], mode: ScopedMode) -> f64 {
    let _scope = echowrite_trace::scoped(mode);
    let mut stream = StreamingRecognizer::new(engine);
    let mut pos = 0;
    while pos < 6 * SAMPLE_RATE {
        let end = (pos + CHUNK).min(audio.len());
        let _ = stream.push(&audio[pos..end]);
        pos = end;
    }
    let start = Instant::now();
    for _ in 0..PUSHES_PER_ROUND {
        if pos + CHUNK > audio.len() {
            pos = 0;
        }
        let _ = stream.push(&audio[pos..pos + CHUNK]);
        pos += CHUNK;
    }
    start.elapsed().as_nanos() as f64 / PUSHES_PER_ROUND as f64
}

/// Extracts `"mean_ns": <f64>` for the named result from a committed bench
/// JSON file (hand-rolled: the repo vendors no JSON parser).
fn baseline_mean_ns(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"name\": \"{name}\"");
    let entry = json.split('{').find(|chunk| chunk.contains(&needle))?;
    let after = entry.split("\"mean_ns\":").nth(1)?;
    let number: String = after
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    number.parse().ok()
}

/// Streams one full session under the recording sink and writes the Chrome
/// trace JSON to `path`.
fn write_trace_artifact(engine: &EchoWrite, audio: &[f64], path: &str) {
    let scope = echowrite_trace::scoped(ScopedMode::Recording(echowrite_trace::DEFAULT_CAPACITY));
    let mut stream = StreamingRecognizer::new(engine);
    let mut strokes = Vec::new();
    for chunk in audio.chunks(CHUNK) {
        strokes.extend(stream.push(chunk));
    }
    strokes.extend(stream.finish());
    let observed: Vec<Stroke> = strokes.iter().map(|ev| ev.classification.stroke).collect();
    let _ = engine.decode_sequence(&observed);
    let rec = scope.recording().expect("recording scope has a sink");
    std::fs::write(path, rec.to_chrome_json()).expect("write trace artifact");
    println!("{}", rec.summary_text());
    println!("trace artifact: {} events -> {path}", rec.len());
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut trace_out = None;
    while let Some(arg) = args.next() {
        if arg == "--trace-out" {
            trace_out = Some(args.next().expect("--trace-out requires a path"));
        }
    }

    let engine = EchoWrite::with_config(EchoWriteConfig::streaming());
    let audio = session_audio();

    // Warm-up: fault in templates, FFT plans, and the page cache.
    let _ = round_mean_ns(&engine, &audio, ScopedMode::Disabled);

    let mut disabled_min = f64::INFINITY;
    let mut recording_min = f64::INFINITY;
    for round in 0..ROUNDS {
        let d = round_mean_ns(&engine, &audio, ScopedMode::Disabled);
        let r = round_mean_ns(&engine, &audio, ScopedMode::Recording(1 << 16));
        if d < disabled_min {
            disabled_min = d;
        }
        if r < recording_min {
            recording_min = r;
        }
        println!("round {round}: disabled {d:.0} ns/push, recording {r:.0} ns/push");
    }
    let ratio = recording_min / disabled_min;
    println!(
        "per-push minimum: disabled {disabled_min:.0} ns, recording {recording_min:.0} ns \
         (ratio {ratio:.3}, budget {MAX_RATIO})"
    );

    // Context: the committed cross-machine baseline. Informational unless
    // TRACE_GATE_STRICT=1 (absolute nanoseconds are machine-specific).
    let strict = std::env::var("TRACE_GATE_STRICT").is_ok_and(|v| v == "1");
    let mut baseline_failed = false;
    match std::fs::read_to_string("BENCH_streaming.json")
        .ok()
        .as_deref()
        .and_then(|json| baseline_mean_ns(json, "streaming_push/incremental/12s"))
    {
        Some(base) => {
            let vs = recording_min / base;
            println!(
                "vs BENCH_streaming.json streaming_push/incremental/12s ({base:.0} ns): \
                 {vs:.3}x{}",
                if strict { " [strict]" } else { " [informational]" }
            );
            if strict && vs > MAX_RATIO {
                baseline_failed = true;
            }
        }
        None => println!("BENCH_streaming.json baseline not found; skipping comparison"),
    }

    if let Some(path) = trace_out {
        write_trace_artifact(&engine, &audio, &path);
    }

    if ratio > MAX_RATIO {
        eprintln!(
            "FAIL: recording sink costs {:.1}% per push (budget {:.0}%)",
            (ratio - 1.0) * 100.0,
            (MAX_RATIO - 1.0) * 100.0
        );
        std::process::exit(1);
    }
    if baseline_failed {
        eprintln!("FAIL: per-push latency regressed >5% vs BENCH_streaming.json (strict mode)");
        std::process::exit(1);
    }
    println!("PASS: tracing overhead within budget");
}
