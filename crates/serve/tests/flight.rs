//! Integration tests for the observability plane's serve-side half
//! (DESIGN.md §6.11): the always-on per-shard flight ring, anomaly dump
//! artifacts, and the live introspection table.

use echowrite::{EchoWrite, EchoWriteConfig, Parallelism};
use echowrite_serve::{
    FlightOptions, FlightReason, ReapPolicy, Request, ServeConfig, SessionId, SessionManager,
    SubmitVerdict,
};
use echowrite_snapshot::MemoryStore;
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ewsn-flight-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn manager(cfg: ServeConfig) -> SessionManager {
    let engine = EchoWrite::with_config(EchoWriteConfig::streaming());
    SessionManager::new(engine, cfg).expect("valid config")
}

/// Blocks until `n` flight dumps have been written (the worker polls its
/// trigger only between batches, so dumps land asynchronously).
fn wait_for_dumps(m: &SessionManager, n: u64) {
    for _ in 0..500 {
        if m.metrics().flight_dumps.get() >= n {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    panic!("timed out waiting for {n} flight dumps ({} seen)", m.metrics().flight_dumps.get());
}

/// Cheap Chrome-trace well-formedness check on a dump artifact.
fn assert_chrome_trace_shape(json: &str) {
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), "header: {json}");
    assert!(json.ends_with("]}"), "trailer");
    assert_eq!(json.matches('{').count(), json.matches('}').count(), "balanced braces");
}

/// The flight ring records tagged pushes independent of the global trace
/// gate, and `flight_snapshot` filters per session.
#[test]
fn tagged_pushes_land_in_flight_ring_and_filter_by_session() {
    let m = manager(ServeConfig {
        shards: Parallelism::Threads(1),
        flight: FlightOptions { capacity: 64, ..FlightOptions::default() },
        ..ServeConfig::default()
    });
    assert!(matches!(m.submit_tagged(Request::Open(SessionId(7)), 41), SubmitVerdict::Enqueued));
    assert!(matches!(
        m.submit_tagged(Request::Push(SessionId(7), &[0.0; 2048]), 42),
        SubmitVerdict::Enqueued
    ));
    assert!(matches!(m.submit_tagged(Request::Finish(SessionId(7)), 43), SubmitVerdict::Enqueued));
    m.quiesce();

    let all = m.flight_snapshot(None);
    assert!(!all.is_empty(), "ring must record even with tracing disabled");
    let push = all
        .iter()
        .find(|e| e.event.name == "push")
        .expect("push span recorded in flight ring");
    assert_eq!(push.session, 7);
    assert_eq!(push.request_id, 42, "wire correlation id must flow into the ring");
    assert!(
        all.iter().any(|e| e.request_id == 41) && all.iter().any(|e| e.request_id == 43),
        "open/finish must carry their request ids too"
    );

    let only_7 = m.flight_snapshot(Some(7));
    assert!(!only_7.is_empty());
    assert!(only_7.iter().all(|e| e.session == 7), "session filter must hold");
    assert!(m.flight_snapshot(Some(999)).is_empty(), "unknown session filters to nothing");
    m.quiesce();
}

/// Every anomaly path that fired leaves a Chrome-trace artifact: the shed
/// latch, a manual trigger, and the shutdown postmortem.
#[test]
fn shed_manual_and_shutdown_dump_chrome_trace_artifacts() {
    let dir = temp_dir("dumps");
    let m = manager(ServeConfig {
        shards: Parallelism::Threads(1),
        max_sessions: 1,
        high_water: 1,
        flight: FlightOptions {
            capacity: 64,
            artifact_dir: Some(dir.clone()),
            ..FlightOptions::default()
        },
        ..ServeConfig::default()
    });
    assert!(matches!(m.submit_tagged(Request::Open(SessionId(1)), 10), SubmitVerdict::Enqueued));
    // Second open trips the admission controller: the shed latch edge
    // triggers a flight dump.
    assert!(matches!(m.submit_tagged(Request::Open(SessionId(2)), 11), SubmitVerdict::Shedding));
    // The worker polls the trigger after its next batch, so feed it one,
    // then wait for the dump to land — triggering again before the poll
    // would coalesce both epochs into a single dump (by design).
    let _ = m.submit_tagged(Request::Push(SessionId(1), &[0.0; 1024]), 12);
    m.quiesce();
    wait_for_dumps(&m, 1);

    m.trigger_flight_dump(FlightReason::Manual);
    let _ = m.submit_tagged(Request::Push(SessionId(1), &[0.0; 1024]), 13);
    m.quiesce();
    wait_for_dumps(&m, 2);

    let report = m.shutdown();
    assert_eq!(report.metrics.flight_dumps, 3, "shed + manual + shutdown artifacts");

    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("artifact dir created")
        .map(|e| e.expect("dir entry").file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(names.len(), 3, "one artifact per dump: {names:?}");
    for reason in ["-shed-", "-manual-", "-shutdown-"] {
        assert!(
            names.iter().any(|n| n.starts_with("flight-") && n.contains(reason)),
            "missing {reason} artifact in {names:?}"
        );
    }
    let shed = names.iter().find(|n| n.contains("-shed-")).expect("shed artifact");
    let json = std::fs::read_to_string(dir.join(shed)).expect("readable artifact");
    assert_chrome_trace_shape(&json);
    assert!(json.contains("\"req\":10"), "dump must carry the tagged request id: {json}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `introspect` merges the live per-shard table with the snapshot store's
/// suspended sessions, and reap/suspend churn past the threshold leaves a
/// postmortem artifact.
#[test]
fn introspect_reports_live_and_suspended_sessions() {
    let dir = temp_dir("churn");
    let store = Arc::new(MemoryStore::new());
    let engine = EchoWrite::with_config(EchoWriteConfig::streaming());
    let m = SessionManager::with_snapshot_store(
        engine,
        ServeConfig {
            shards: Parallelism::Threads(1),
            idle_timeout_samples: Some(10_000),
            reap_policy: ReapPolicy::SuspendToStore,
            flight: FlightOptions {
                capacity: 128,
                artifact_dir: Some(dir.clone()),
                churn_threshold: 1,
            },
            ..ServeConfig::default()
        },
        store,
    )
    .expect("valid config");

    let idle = SessionId(1);
    let busy = SessionId(2);
    let _ = m.open(idle);
    let _ = m.open(busy);
    let _ = m.push(idle, &[0.0; 1024]);
    // Enough traffic through `busy` to trip a reap scan and age `idle`
    // past the timeout on the shard's logical sample clock.
    for _ in 0..80 {
        let _ = m.push(busy, &[0.0; 1024]);
        m.quiesce();
    }

    let rows = m.introspect();
    assert_eq!(rows.len(), 2, "one live + one suspended row: {rows:?}");
    let busy_row = rows.iter().find(|r| r.session == busy.0).expect("busy row");
    assert!(!busy_row.suspended);
    assert_eq!(busy_row.samples_in, 80 * 1024);
    assert_eq!(busy_row.backlog, 0, "quiesced shard has no backlog");
    let idle_row = rows.iter().find(|r| r.session == idle.0).expect("idle row");
    assert!(idle_row.suspended, "reaped session must surface from the store");
    assert_eq!(idle_row.samples_in, 0, "suspended rows carry no live counters");
    assert!(
        busy_row.last_active_tick_us > idle_row.last_active_tick_us,
        "live activity must read as more recent"
    );

    // The suspend counted as churn (threshold 1), so a reap-churn
    // postmortem must exist.
    let names: Vec<String> = std::fs::read_dir(&dir)
        .expect("artifact dir created")
        .map(|e| e.expect("dir entry").file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names.iter().any(|n| n.contains("-reap-churn-")),
        "churn past threshold must dump: {names:?}"
    );
    m.quiesce();
    drop(m);
    let _ = std::fs::remove_dir_all(&dir);
}
