//! Serving-layer benchmarks (DESIGN.md §6.4): aggregate push throughput of
//! the sharded [`SessionManager`] at 1 / 64 / 1024 concurrent sessions on
//! 1 / 4 / 8 shards, with the p99 push latency (enqueue → processed) read
//! from the manager's own histogram after each point.
//!
//! One iteration pushes one 5120-sample chunk into *every* live session
//! (cycling each session's audio) and quiesces, so `mean_ns / sessions` is
//! the steady-state cost per push and `sessions / mean_s` is aggregate
//! pushes/sec. Sessions run the down-converted serving configuration
//! (`streaming_downsampled(32)`), the front-end a production fleet would
//! deploy: per-session state is a few tens of KB, so 1024 concurrent
//! sessions fit comfortably.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use echowrite::{EchoWrite, EchoWriteConfig, Parallelism};
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_serve::{ReapPolicy, ServeConfig, SessionId, SessionManager, SubmitVerdict};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use std::sync::OnceLock;

/// Five STFT hops per push — the chunk an audio callback hands over.
const CHUNK: usize = 5 * 1024;

/// The serving engine: causal enhancement + 32× decimating front-end.
fn engine() -> &'static EchoWrite {
    static E: OnceLock<EchoWrite> = OnceLock::new();
    E.get_or_init(|| EchoWrite::with_config(EchoWriteConfig::streaming_downsampled(32)))
}

/// A ~3.2 s two-stroke session, cycled by every benched session.
fn session_audio() -> &'static Vec<f64> {
    static A: OnceLock<Vec<f64>> = OnceLock::new();
    A.get_or_init(|| {
        let perf =
            Writer::new(WriterParams::nominal(), 7).write_sequence(&[Stroke::S2, Stroke::S4]);
        let mut traj = perf.trajectory;
        let last = *traj.points().last().expect("non-empty trajectory");
        traj.hold(last, 1.0);
        Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), 7).render(&traj)
    })
}

/// Pushes until accepted; `submit` never blocks, so a full queue is
/// drained with a quiesce and retried.
fn push_retrying(m: &SessionManager, id: SessionId, chunk: &[f64]) {
    loop {
        match m.push(id, chunk) {
            SubmitVerdict::Enqueued => return,
            SubmitVerdict::QueueFull { .. } => m.quiesce(),
            SubmitVerdict::Shedding => panic!("bench session shed"),
        }
    }
}

fn bench_point(g: &mut criterion::BenchmarkGroup<'_>, sessions: usize, shards: usize) {
    let manager = SessionManager::new(
        engine().clone(),
        ServeConfig {
            shards: Parallelism::Threads(shards),
            queue_capacity: 2048,
            max_sessions: 4096,
            high_water: 4096,
            deadline_chunks: None,
            idle_timeout_samples: None,
            batch_max: 8,
            reap_policy: ReapPolicy::Drop,
            ..ServeConfig::default()
        },
    )
    .expect("valid bench config");
    for k in 0..sessions {
        match manager.open(SessionId(k as u64)) {
            SubmitVerdict::Enqueued => {}
            v => panic!("open rejected: {v:?}"),
        }
    }
    manager.quiesce();

    let audio = session_audio();
    let mut cursors = vec![0usize; sessions];
    let mut drained = Vec::new();
    g.bench_function(
        BenchmarkId::new(format!("sessions_{sessions}"), format!("{shards}_shards")),
        |b| {
            b.iter(|| {
                for (k, pos) in cursors.iter_mut().enumerate() {
                    if *pos + CHUNK > audio.len() {
                        *pos = 0; // cycle the session audio
                    }
                    let chunk = &audio[*pos..*pos + CHUNK];
                    push_retrying(&manager, SessionId(k as u64), black_box(chunk));
                    *pos += CHUNK;
                }
                manager.quiesce();
                drained.clear();
                manager.try_events(&mut drained);
                drained.len()
            })
        },
    );

    let snapshot = manager.shutdown().metrics;
    println!(
        "serve_meta sessions={sessions} shards={shards} pushes={} p99_us={} events={} queue_full={} shed={} batch_drains={}",
        snapshot.pushes,
        snapshot.push_latency_p99_us.map_or_else(|| "n/a".to_string(), |v| v.to_string()),
        snapshot.events,
        snapshot.queue_full,
        snapshot.sessions_shed,
        snapshot.batch_drains,
    );
}

fn bench_serve(c: &mut Criterion) {
    echowrite_bench::print_bench_environment();
    let mut g = c.benchmark_group("serve_push_round");
    g.sample_size(10);
    for sessions in [1usize, 64, 1024] {
        for shards in [1usize, 4, 8] {
            bench_point(&mut g, sessions, shards);
        }
    }
    g.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
