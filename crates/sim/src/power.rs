//! Battery and CPU models (Figs. 20–21).
//!
//! The paper's Fig. 20 watches the battery level fall from 100 % to 87 %
//! over 30 minutes of continuous operation (≈ 3 % per 5 minutes, ≈ 2.8 h to
//! empty) and Fig. 21 samples the CPU share during continuous recognition
//! (9.5–25.6 %, mean 15.2 %, σ 2.3 %). Neither is an algorithmic result:
//! they are device-level consequences of running the pipeline continuously,
//! so they are modelled here as a duty-cycle energy model and a
//! workload-driven load model whose *work term* is the genuinely measured
//! per-stage running time of this implementation, scaled by a documented
//! desktop→phone factor.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Duty-cycle battery model for a phone running EchoWrite continuously.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryModel {
    /// Screen + OS baseline drain, percent per minute.
    pub base_pct_per_min: f64,
    /// Continuous 20 kHz tone playback drain, percent per minute.
    pub speaker_pct_per_min: f64,
    /// CPU drain at 100 % load, percent per minute.
    pub cpu_pct_per_min_full: f64,
}

impl BatteryModel {
    /// A Mate 9–class phone, calibrated to the paper's Fig. 20 headline:
    /// 100 % → 87 % after 30 minutes at ≈ 15 % CPU load.
    ///
    /// (The paper's prose also quotes "3 % every 5 minutes" and "2.8 hours"
    /// to empty, which is internally inconsistent with its own 13 %-per-
    /// 30-min plot; this model matches the plotted figure.)
    pub fn mate9() -> Self {
        BatteryModel {
            base_pct_per_min: 0.175,
            speaker_pct_per_min: 0.065,
            cpu_pct_per_min_full: 1.28,
        }
    }

    /// Drain rate in percent per minute at a given CPU load (0–1).
    pub fn drain_rate(&self, cpu_load: f64) -> f64 {
        self.base_pct_per_min + self.speaker_pct_per_min + self.cpu_pct_per_min_full * cpu_load.clamp(0.0, 1.0)
    }

    /// Battery level (percent) after running for `minutes` at `cpu_load`,
    /// starting from 100 %.
    pub fn level_after(&self, minutes: f64, cpu_load: f64) -> f64 {
        (100.0 - self.drain_rate(cpu_load) * minutes).max(0.0)
    }

    /// Hours until empty at the given load.
    pub fn hours_to_empty(&self, cpu_load: f64) -> f64 {
        100.0 / self.drain_rate(cpu_load) / 60.0
    }

    /// The Fig. 20 series: battery level sampled every `step_min` minutes
    /// for `total_min` minutes at the given load.
    pub fn series(&self, total_min: f64, step_min: f64, cpu_load: f64) -> Vec<(f64, f64)> {
        assert!(step_min > 0.0, "step must be positive");
        let mut out = Vec::new();
        let mut t = 0.0;
        while t <= total_min + 1e-9 {
            out.push((t, self.level_after(t, cpu_load)));
            t += step_min;
        }
        out
    }
}

impl Default for BatteryModel {
    fn default() -> Self {
        BatteryModel::mate9()
    }
}

/// Workload-driven CPU-share model for continuous recognition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Ratio of the paper's phone CPU time to this machine's measured time
    /// for the same pipeline work (documented desktop→phone factor).
    pub phone_factor: f64,
    /// Constant OS/audio-I/O overhead share (0–1).
    pub overhead: f64,
    /// Relative σ of per-window load fluctuation (scheduler noise).
    pub jitter: f64,
}

impl CpuModel {
    /// Calibrated to the paper's Mate 9 statistics: this implementation
    /// measures ≈ 1.2 % of real-time on a desktop core; the paper's phone
    /// runs the same work at ≈ 15 % CPU share.
    pub fn mate9() -> Self {
        CpuModel { phone_factor: 9.0, overhead: 0.04, jitter: 0.12 }
    }

    /// Converts a measured processing-time fraction (processing seconds per
    /// second of audio on this machine) into a phone CPU share.
    pub fn share_from_fraction(&self, measured_fraction: f64) -> f64 {
        (self.overhead + self.phone_factor * measured_fraction).clamp(0.0, 1.0)
    }

    /// The Fig. 21 series: per-window CPU shares given measured per-window
    /// processing fractions, with seeded scheduler jitter.
    pub fn series(&self, fractions: &[f64], seed: u64) -> Vec<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        fractions
            .iter()
            .map(|&f| {
                let share = self.share_from_fraction(f);
                let noise = 1.0 + self.jitter * (rng.gen::<f64>() * 2.0 - 1.0);
                (share * noise).clamp(0.0, 1.0)
            })
            .collect()
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel::mate9()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_matches_paper_figure() {
        let b = BatteryModel::mate9();
        // 30-minute level ≈ 87 % (the Fig. 20 headline).
        let level = b.level_after(30.0, 0.152);
        assert!((level - 87.0).abs() < 1.0, "level {level}%");
        // Implied drain per 5 minutes ≈ 2.2 % (the paper's prose rounds
        // this up to 3 %).
        let per_5min = b.drain_rate(0.152) * 5.0;
        assert!((1.8..3.2).contains(&per_5min), "5-min drain {per_5min}%");
        // Runtime to empty: between the paper's quoted 2.8 h and the value
        // its own plot implies (≈ 3.8 h).
        let h = b.hours_to_empty(0.152);
        assert!((2.5..4.2).contains(&h), "runtime {h} h");
    }

    #[test]
    fn higher_load_drains_faster() {
        let b = BatteryModel::mate9();
        assert!(b.level_after(30.0, 0.8) < b.level_after(30.0, 0.1));
        assert!(b.hours_to_empty(0.8) < b.hours_to_empty(0.1));
    }

    #[test]
    fn level_never_negative() {
        let b = BatteryModel::mate9();
        assert_eq!(b.level_after(10_000.0, 1.0), 0.0);
    }

    #[test]
    fn series_shape() {
        let b = BatteryModel::mate9();
        let s = b.series(30.0, 5.0, 0.15);
        assert_eq!(s.len(), 7);
        assert_eq!(s[0], (0.0, 100.0));
        for w in s.windows(2) {
            assert!(w[1].1 < w[0].1, "battery must fall monotonically");
        }
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn series_rejects_zero_step() {
        BatteryModel::mate9().series(30.0, 0.0, 0.1);
    }

    #[test]
    fn cpu_share_scales_with_work() {
        let c = CpuModel::mate9();
        assert!(c.share_from_fraction(0.02) > c.share_from_fraction(0.005));
        assert!(c.share_from_fraction(0.0) >= c.overhead);
        assert_eq!(c.share_from_fraction(10.0), 1.0);
    }

    #[test]
    fn cpu_series_deterministic_and_jittered() {
        let c = CpuModel::mate9();
        let fractions = vec![0.008; 50];
        let a = c.series(&fractions, 4);
        let b = c.series(&fractions, 4);
        assert_eq!(a, b);
        // Jitter makes values vary around the mean.
        let mean: f64 = a.iter().sum::<f64>() / a.len() as f64;
        assert!(a.iter().any(|&v| v > mean) && a.iter().any(|&v| v < mean));
    }
}
