//! Bad fixture: nondeterminism hazards in a result path.

use std::collections::HashMap;

fn tally(words: &[&str]) -> usize {
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for w in words {
        *counts.entry(*w).or_insert(0) += 1;
    }
    let started = std::time::Instant::now();
    let _ = started;
    counts.len()
}
