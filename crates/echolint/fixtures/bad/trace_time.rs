//! Bad fixture: a trace sink that reads the wall clock directly instead of
//! accepting caller-supplied logical ticks / Stopwatch durations.

/// A sink that stamps events itself — exactly what the tracing layer's
/// timestamp policy forbids.
pub struct StampingSink {
    epoch_us: u64,
}

impl StampingSink {
    fn record(&mut self, _name: &str) {
        let now = std::time::Instant::now();
        let _ = now;
        let stamp = std::time::SystemTime::now();
        let _ = stamp;
        self.epoch_us += 1;
    }
}
