//! Fixture-corpus tests: each `fixtures/bad/*.rs` file fires its rule at
//! exact `file:line` positions, the `fixtures/good/` file is silent, and a
//! snapshot of the live `--workspace` run stays empty.

use echolint::{lint_source, lint_workspace, FileScope};
use std::path::Path;

/// The scope every fixture is linted under: a non-exempt pipeline crate.
fn pipeline_scope() -> FileScope {
    FileScope {
        crate_name: "core".into(),
        pipeline: true,
        test_file: false,
        allow_time: false,
        simd_kernels: false,
    }
}

/// Lints `fixtures/<name>` and renders each diagnostic as its
/// `file:line: rule: message` display form.
fn lint_fixture(name: &str) -> Vec<String> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    lint_source(name, &src, &pipeline_scope())
        .iter()
        .map(ToString::to_string)
        .collect()
}

#[test]
fn panic_path_fixture_fires_at_exact_lines() {
    assert_eq!(
        lint_fixture("bad/panic_path.rs"),
        vec![
            "bad/panic_path.rs:4: no-panic-path: .unwrap() can panic — return a typed error instead",
            "bad/panic_path.rs:8: no-panic-path: .expect() can panic — return a typed error instead",
            "bad/panic_path.rs:12: no-panic-path: panic! in non-test pipeline code",
            "bad/panic_path.rs:16: no-panic-path: unreachable! in non-test pipeline code",
            "bad/panic_path.rs:20: no-panic-path: slice index by literal can panic — use get()/split_first() or a checked range",
        ]
    );
}

#[test]
fn alloc_hot_fixture_fires_only_in_hot_kernels() {
    assert_eq!(
        lint_fixture("bad/alloc_hot.rs"),
        vec![
            "bad/alloc_hot.rs:4: no-alloc-hot: Vec::… constructor in hot kernel `magnitude_into` — hot kernels must write into caller-owned buffers",
            "bad/alloc_hot.rs:5: no-alloc-hot: .to_vec() in hot kernel `magnitude_into` — hot kernels must write into caller-owned buffers",
            "bad/alloc_hot.rs:10: no-alloc-hot: .collect() in hot kernel `window` — hot kernels must write into caller-owned buffers",
        ]
    );
}

#[test]
fn float_order_fixture_fires_at_exact_lines() {
    assert_eq!(
        lint_fixture("bad/float_order.rs"),
        vec![
            "bad/float_order.rs:4: float-order: partial_cmp is NaN-unsafe — use total_cmp for float ordering",
            "bad/float_order.rs:8: float-order: f64::max silently drops NaN — order with total_cmp or guard the inputs",
        ]
    );
}

#[test]
fn determinism_fixture_fires_at_exact_lines() {
    assert_eq!(
        lint_fixture("bad/determinism.rs"),
        vec![
            "bad/determinism.rs:3: determinism: HashMap iteration order is nondeterministic — use BTreeMap/BTreeSet or sort before producing results",
            "bad/determinism.rs:6: determinism: HashMap iteration order is nondeterministic — use BTreeMap/BTreeSet or sort before producing results",
            "bad/determinism.rs:6: determinism: HashMap iteration order is nondeterministic — use BTreeMap/BTreeSet or sort before producing results",
            "bad/determinism.rs:10: determinism: std::time outside crates/profile and benches — wall-clock reads make results environment-dependent",
        ]
    );
}

/// A raw `std::time` read inside a trace sink is a determinism finding:
/// `crates/trace` is a pipeline crate with no time exemption, so sinks must
/// take logical ticks / caller-measured Stopwatch durations as plain data.
#[test]
fn trace_sink_wall_clock_fixture_fires_at_exact_lines() {
    assert_eq!(
        lint_fixture("bad/trace_time.rs"),
        vec![
            "bad/trace_time.rs:12: determinism: std::time outside crates/profile and benches — wall-clock reads make results environment-dependent",
            "bad/trace_time.rs:14: determinism: std::time outside crates/profile and benches — wall-clock reads make results environment-dependent",
        ]
    );
    // And the same file under the real `crates/trace` scope (not the generic
    // pipeline scope) still fires: trace gets no time exemption.
    let scope = echolint::classify(Path::new("crates/trace/src/recording.rs"));
    assert!(scope.pipeline && !scope.allow_time);
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/bad/trace_time.rs");
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    let diags = lint_source("bad/trace_time.rs", &src, &scope);
    assert_eq!(diags.len(), 2);
}

#[test]
fn pub_doc_fixture_fires_for_undocumented_items_only() {
    assert_eq!(
        lint_fixture("bad/pub_doc.rs"),
        vec![
            "bad/pub_doc.rs:3: pub-doc: public struct `Window` has no doc comment",
            "bad/pub_doc.rs:5: pub-doc: public fn `hann` has no doc comment",
        ]
    );
}

/// Raw `std::arch` usage outside the sanctioned `crates/dsp/src/kernels`
/// module fires `simd-boundary` (and the `unsafe fn` fires
/// `unsafe-boundary`); the identical source under the kernels scope drops
/// the boundary findings but still demands a `// SAFETY:` comment.
#[test]
fn simd_boundary_fixture_fires_outside_kernels_only() {
    assert_eq!(
        lint_fixture("bad/simd_boundary.rs"),
        vec![
            "bad/simd_boundary.rs:3: simd-boundary: std::arch outside dsp::kernels — raw SIMD lives behind the kernel dispatch layer",
            "bad/simd_boundary.rs:3: simd-boundary: intrinsic `_mm256_add_pd` outside dsp::kernels",
            "bad/simd_boundary.rs:6: simd-boundary: is_x86_feature_detected! outside dsp::kernels — query kernels::backend() instead",
            "bad/simd_boundary.rs:9: simd-boundary: #[target_feature] outside dsp::kernels",
            "bad/simd_boundary.rs:10: unsafe-boundary: `unsafe` outside crates/dsp/src/kernels — the kernel dispatch module is the only sanctioned unsafe surface",
            "bad/simd_boundary.rs:11: simd-boundary: intrinsic `_mm256_add_pd` outside dsp::kernels",
        ]
    );
    // Same source, kernels scope: the SIMD surface is sanctioned, but the
    // naked `unsafe fn` still owes a SAFETY comment.
    let scope = echolint::classify(Path::new("crates/dsp/src/kernels/x86.rs"));
    assert!(scope.simd_kernels);
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/bad/simd_boundary.rs");
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    let diags: Vec<String> =
        lint_source("bad/simd_boundary.rs", &src, &scope).iter().map(ToString::to_string).collect();
    assert_eq!(
        diags,
        vec![
            "bad/simd_boundary.rs:10: unsafe-boundary: `unsafe` without a covering `// SAFETY:` comment — state the invariant that makes it sound",
        ]
    );
}

/// Outside the kernels module every `unsafe` token fires; under the
/// kernels scope `// SAFETY:` comments cover sites on the same line, the
/// line above, or anywhere earlier in the same fn body (one invariant
/// covers all dispatch arms below it) — only the naked site fires.
#[test]
fn unsafe_boundary_fixture_requires_safety_coverage_in_kernels() {
    assert_eq!(
        lint_fixture("bad/unsafe_boundary.rs"),
        vec![
            "bad/unsafe_boundary.rs:6: unsafe-boundary: `unsafe` outside crates/dsp/src/kernels — the kernel dispatch module is the only sanctioned unsafe surface",
            "bad/unsafe_boundary.rs:13: unsafe-boundary: `unsafe` outside crates/dsp/src/kernels — the kernel dispatch module is the only sanctioned unsafe surface",
            "bad/unsafe_boundary.rs:15: unsafe-boundary: `unsafe` outside crates/dsp/src/kernels — the kernel dispatch module is the only sanctioned unsafe surface",
            "bad/unsafe_boundary.rs:19: unsafe-boundary: `unsafe` outside crates/dsp/src/kernels — the kernel dispatch module is the only sanctioned unsafe surface",
        ]
    );
    let scope = echolint::classify(Path::new("crates/dsp/src/kernels/x86.rs"));
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/bad/unsafe_boundary.rs");
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    let diags: Vec<String> = lint_source("bad/unsafe_boundary.rs", &src, &scope)
        .iter()
        .map(ToString::to_string)
        .collect();
    assert_eq!(
        diags,
        vec![
            "bad/unsafe_boundary.rs:19: unsafe-boundary: `unsafe` without a covering `// SAFETY:` comment — state the invariant that makes it sound",
        ]
    );
}

/// `Ordering::*` sites need a reasoned `// ordering:` comment in scope, and
/// a Relaxed store additionally needs an explicit allow marker.
#[test]
fn atomics_order_fixture_requires_reasoned_comments() {
    assert_eq!(
        lint_fixture("bad/atomics_order.rs"),
        vec![
            "bad/atomics_order.rs:5: atomics-order: Ordering::Release without a reasoned `// ordering:` comment in scope",
            "bad/atomics_order.rs:6: atomics-order: Ordering::Acquire without a reasoned `// ordering:` comment in scope",
            "bad/atomics_order.rs:16: atomics-order: Relaxed store — a flag that gates non-atomic data needs Release; allow-mark with rationale if nothing is published",
        ]
    );
}

#[test]
fn marker_fixture_reports_bad_markers_and_keeps_the_finding() {
    assert_eq!(
        lint_fixture("bad/marker.rs"),
        vec![
            "bad/marker.rs:4: marker: allow marker must carry a reason: `-- <why this is safe>`",
            "bad/marker.rs:5: no-panic-path: slice index by literal can panic — use get()/split_first() or a checked range",
            "bad/marker.rs:9: marker: unknown rule \"no-such-rule\" in allow marker",
            "bad/marker.rs:10: no-panic-path: slice index by literal can panic — use get()/split_first() or a checked range",
        ]
    );
}

#[test]
fn good_fixture_is_diagnostic_free() {
    assert_eq!(lint_fixture("good/clean.rs"), Vec::<String>::new());
}

/// Snapshot of the live tree: the full `--workspace` run must render to
/// nothing. Any regression prints the exact diagnostics it would add.
#[test]
fn workspace_snapshot_is_empty() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = lint_workspace(&root).expect("workspace walk");
    let snapshot: Vec<String> = diags.iter().map(ToString::to_string).collect();
    assert_eq!(snapshot, Vec::<String>::new());
}
