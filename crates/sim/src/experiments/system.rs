//! System running-performance experiments (paper Sec. V-C, Figs. 19–21).
//!
//! Fig. 19 (per-stage running time) is **measured for real** on this
//! implementation; the paper's claims to preserve are that total
//! per-stroke processing stays comfortably real-time, signal processing
//! takes > 90 % of it, and the longer strokes (S4–S6) cost more. Figs. 20
//! (battery) and 21 (CPU share) combine the measured processing-time
//! fractions with the duty-cycle models in [`crate::power`].

use super::strokes::shared_engine;
use super::Scale;
use crate::power::{BatteryModel, CpuModel};
use crate::report::{f1, f2, pct, Table};
use echowrite::StageTiming;
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};

/// Measures mean per-stage timing for each stroke over `reps` runs.
pub fn measure_stage_times(scale: Scale) -> Vec<(Stroke, StageTiming)> {
    let engine = shared_engine();
    let device = DeviceProfile::mate9();
    let env = EnvironmentProfile::meeting_room();
    Stroke::ALL
        .iter()
        .map(|&stroke| {
            let mut acc = StageTiming::default();
            for rep in 0..scale.reps.max(1) {
                let seed = scale.seed.wrapping_add((stroke.index() * 131 + rep) as u64);
                let perf = Writer::new(WriterParams::nominal(), seed).write_stroke(stroke);
                let scene = Scene::new(device.clone(), env.clone(), seed);
                let mic = scene.render(&perf.trajectory);
                let rec = engine.recognize_word(&mic);
                let t = rec.strokes.timing;
                acc.stft_ms += t.stft_ms;
                acc.enhance_ms += t.enhance_ms;
                acc.profile_ms += t.profile_ms;
                acc.segment_ms += t.segment_ms;
                acc.dtw_ms += t.dtw_ms;
                acc.decode_ms += t.decode_ms;
            }
            let n = scale.reps.max(1) as f64;
            acc.stft_ms /= n;
            acc.enhance_ms /= n;
            acc.profile_ms /= n;
            acc.segment_ms /= n;
            acc.dtw_ms /= n;
            acc.decode_ms /= n;
            (stroke, acc)
        })
        .collect()
}

/// Fig. 19 — running time of each processing part per stroke (measured).
pub fn fig19(scale: Scale) -> Table {
    let times = measure_stage_times(scale);
    let mut t = Table::new(
        "Fig. 19 — measured per-stage running time per stroke, ms (paper: <200 ms total, >90% signal processing)",
        &["stroke", "STFT", "enhance", "profile", "segment", "DTW", "decode", "total", "signal %"],
    );
    for (stroke, st) in &times {
        t.push_row(vec![
            stroke.to_string(),
            f2(st.stft_ms),
            f2(st.enhance_ms),
            f2(st.profile_ms),
            f2(st.segment_ms),
            f2(st.dtw_ms),
            f2(st.decode_ms),
            f2(st.total_ms()),
            pct(st.signal_processing_fraction()),
        ]);
    }
    t
}

/// The measured processing-time fraction (processing seconds per second of
/// audio) during continuous recognition — the work term for Figs. 20–21.
pub fn measure_processing_fraction(scale: Scale) -> f64 {
    let engine = shared_engine();
    let perf = Writer::new(WriterParams::nominal(), scale.seed)
        .write_sequence(&[Stroke::S2, Stroke::S5, Stroke::S1, Stroke::S6]);
    let scene = Scene::new(
        DeviceProfile::mate9(),
        EnvironmentProfile::meeting_room(),
        scale.seed,
    );
    let mic = scene.render(&perf.trajectory);
    let audio_s = mic.len() as f64 / 44_100.0;
    // Minimum over a few runs: wall-clock spikes from scheduler contention
    // (e.g. a parallel test runner) must not masquerade as pipeline cost.
    (0..3)
        .map(|_| {
            let rec = engine.recognize_word(&mic);
            (rec.strokes.timing.total_ms() / 1e3) / audio_s
        })
        .fold(f64::INFINITY, f64::min)
}

/// Fig. 20 — battery level over 30 minutes of continuous operation
/// (paper: 100 % → 87 %).
pub fn fig20() -> Table {
    let battery = BatteryModel::mate9();
    let mut t = Table::new(
        "Fig. 20 — modelled battery level during continuous operation (paper: 87% after 30 min)",
        &["minute", "battery %"],
    );
    for (minute, level) in battery.series(30.0, 5.0, 0.152) {
        t.push_row(vec![format!("{minute:.0}"), f1(level)]);
    }
    t.push_row(vec![
        "runtime".into(),
        format!("{:.1} h to empty", battery.hours_to_empty(0.152)),
    ]);
    t
}

/// Fig. 21 — CPU share during continuous recognition (paper: 9.5–25.6 %,
/// mean 15.2 %, σ 2.3 %).
pub fn fig21(scale: Scale) -> Table {
    let cpu = CpuModel::mate9();
    let base_fraction = measure_processing_fraction(scale);
    // 60 five-second windows with varying workload (strokes arrive in
    // bursts; some windows are idle listening).
    let fractions: Vec<f64> = (0..60)
        .map(|i| {
            let busy = match i % 4 {
                0 => 1.25,
                1 => 0.9,
                2 => 1.05,
                _ => 0.75,
            };
            base_fraction * busy
        })
        .collect();
    let series = cpu.series(&fractions, scale.seed);
    let mean: f64 = series.iter().sum::<f64>() / series.len() as f64;
    let sd = (series.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / series.len() as f64)
        .sqrt();
    let (min, max) = series
        .iter()
        .fold((f64::INFINITY, 0.0f64), |(lo, hi), &v| (lo.min(v), hi.max(v)));

    let mut t = Table::new(
        "Fig. 21 — modelled CPU share during continuous recognition (paper: mean 15.2%, σ 2.3%)",
        &["statistic", "value"],
    );
    t.push_row(vec!["mean".into(), pct(mean)]);
    t.push_row(vec!["std dev".into(), pct(sd)]);
    t.push_row(vec!["min".into(), pct(min)]);
    t.push_row(vec!["max".into(), pct(max)]);
    t.push_row(vec![
        "desktop fraction (measured)".into(),
        format!("{:.3}", base_fraction),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale { reps: 2, seed: 31 }
    }

    #[test]
    fn stage_times_are_realtime_and_signal_dominated() {
        for (stroke, t) in measure_stage_times(tiny()) {
            assert!(
                t.total_ms() < 1500.0,
                "{stroke} took {} ms for ~2 s of audio",
                t.total_ms()
            );
            assert!(
                t.signal_processing_fraction() > 0.7,
                "{stroke}: signal fraction {}",
                t.signal_processing_fraction()
            );
        }
    }

    #[test]
    fn longer_strokes_cost_more() {
        // The paper's mechanism: S4–S6 "last longer and consist of more
        // samples", so they cost more to process. The deterministic part of
        // that claim is the trace length; wall-clock time under a loaded
        // test runner is only sanity-checked loosely.
        let s1 = Writer::new(WriterParams::canonical(), 1).write_stroke(Stroke::S1);
        let s5 = Writer::new(WriterParams::canonical(), 1).write_stroke(Stroke::S5);
        assert!(s5.trajectory.duration() > s1.trajectory.duration());

        let times = measure_stage_times(Scale { reps: 3, seed: 9 });
        let total = |s: Stroke| {
            times
                .iter()
                .find(|(st, _)| *st == s)
                .map(|(_, t)| t.total_ms())
                .unwrap()
        };
        assert!(
            total(Stroke::S5) > 0.6 * total(Stroke::S1),
            "S5 {} ms implausibly cheaper than S1 {} ms",
            total(Stroke::S5),
            total(Stroke::S1)
        );
    }

    #[test]
    fn processing_fraction_is_well_below_realtime() {
        let f = measure_processing_fraction(tiny());
        assert!(f > 0.0 && f < 0.6, "fraction {f}");
    }

    #[test]
    fn figures_render() {
        assert_eq!(fig19(tiny()).rows.len(), 6);
        let f20 = fig20();
        assert_eq!(f20.rows.len(), 8);
        let f21 = fig21(tiny());
        assert_eq!(f21.rows.len(), 5);
    }

    #[test]
    fn fig20_endpoint_matches_paper() {
        let t = fig20();
        // Row for minute 30.
        let level: f64 = t.rows[6][1].parse().unwrap();
        assert!((level - 87.0).abs() < 2.5, "30-min level {level}%");
    }
}
