//! Streaming (chunked) recognition, mirroring the Android app's buffer
//! loop: "a process … stores collected data in buffer with a size of
//! 5 frames. When the buffer is full, data are fed to the following
//! processing flowchart" (Sec. IV-A).
//!
//! Two implementations live behind [`StreamingRecognizer`], selected by
//! [`StreamingMode`]:
//!
//! - **Incremental** (the default for causal configurations such as
//!   [`EchoWriteConfig::streaming`](crate::EchoWriteConfig::streaming)):
//!   each [`push`](StreamingRecognizer::push) does O(chunk) work with
//!   bounded memory — completed STFT hops flow through column-at-a-time
//!   enhancement, MVCE profile extraction, noise-robust differentiation,
//!   and a resumable segmenter state machine; nothing is ever re-analyzed.
//!   The emitted stroke sequence (pushes plus
//!   [`finish`](StreamingRecognizer::finish)) is bitwise identical to the
//!   offline [`recognize_strokes`](crate::EchoWrite::recognize_strokes) on
//!   the concatenated audio, for *any* chunking.
//! - **Replay** (the original implementation, kept as the differential
//!   oracle and for non-causal configurations): every push re-analyzes the
//!   buffered window and emits strokes once they have been stable for a
//!   safety margin. Emitted strokes are remembered by their absolute
//!   segment interval (with a small frame tolerance), so re-analyses whose
//!   boundaries wobble after a buffer trim neither duplicate nor drop
//!   strokes.
//!
//! For multi-session serving the state machinery is factored out as
//! [`StreamingSession`]: the same implementations without the engine
//! borrow, so sessions are `'static`, [`Send`], and can be pinned to the
//! worker shards of `echowrite-serve`'s `SessionManager`. A session is
//! reusable via the cheap in-place [`StreamingSession::reset`] (every
//! allocation is retained), and [`StreamingSession::reset_keep_background`]
//! additionally carries the frozen static background over so the next
//! session on the same device/scene skips the background-estimation
//! lead-in.

use crate::config::Frontend;
use crate::engine::EchoWrite;
use crate::pipeline::{make_downconvert, roi_bins};
use crate::session_state::{
    ChainState, DownState, FrontState, IncrementalState, ReplayState, RestoreError, SessionBody,
    SessionState, SnapshotState,
};
use echowrite_dsp::downconvert::{BasebandScratch, BasebandStft, StreamingDownconverter};
use echowrite_dsp::stft::{StftScratch, StreamingStft};
use echowrite_dsp::Complex;
use echowrite_dtw::Classification;
use echowrite_profile::{IncrementalDiff, ProfileBuilder, SegmentedStroke, StreamingSegmenter};
use echowrite_spectro::IncrementalEnhancer;

/// An emitted streaming event: one recognized stroke.
#[derive(Debug, Clone)]
pub struct StrokeEvent {
    /// Classification of the stroke.
    pub classification: Classification,
    /// Segment start, in frames since the session began.
    pub start_frame: usize,
    /// Segment end, in frames since the session began.
    pub end_frame: usize,
}

/// A decided stroke segment, with the DTW classification optional: a
/// degraded (deadline-missed) push in the serving layer skips the DTW
/// matching and reports the segment boundaries alone.
#[derive(Debug, Clone)]
pub struct SegmentEvent {
    /// Segment start, in frames since the session began.
    pub start_frame: usize,
    /// Segment end, in frames since the session began.
    pub end_frame: usize,
    /// DTW classification, absent when the caller requested segment-only
    /// output.
    pub classification: Option<Classification>,
}

/// Frames of slack when matching a re-analyzed segment against an already
/// emitted one: boundaries may wobble slightly after a buffer trim because
/// the replay path's normalization and backtrack windows change.
const DEDUP_TOLERANCE_FRAMES: usize = 3;

/// Shard-shared DSP workspace for batched session pushes.
///
/// A serve shard that drains several sessions' pushes in one batch hands
/// every session the same scratch via
/// [`StreamingSession::push_events_shared`]: the windowed-frame, packed-FFT,
/// and spectrum buffers stay hot in cache across the batch instead of
/// ping-ponging between per-session arenas. The scratch is pure workspace —
/// it carries no state between frames or sessions — so the shared path is
/// bitwise identical to the per-session one.
///
/// Buffers are sized lazily from the first pushing session's plan, so every
/// session sharing one scratch must run the same engine configuration (true
/// by construction for a serve shard, which owns exactly one engine).
#[derive(Debug, Default)]
pub struct SharedDspScratch {
    stft: Option<StftScratch>,
}

impl SharedDspScratch {
    /// Creates an empty scratch; buffers are allocated on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A streaming wrapper around an [`EchoWrite`] engine.
///
/// # Example
///
/// ```
/// use echowrite::{EchoWrite, StreamingRecognizer};
/// let engine = EchoWrite::new();
/// let mut stream = StreamingRecognizer::new(&engine);
/// // Feeding silence produces no events.
/// let events = stream.push(&vec![0.0; 44_100]);
/// assert!(events.is_empty());
/// ```
#[derive(Debug)]
pub struct StreamingRecognizer<'a> {
    engine: &'a EchoWrite,
    session: StreamingSession,
    /// Scratch reused across pushes for the session's segment events.
    scratch: Vec<SegmentEvent>,
}

impl<'a> StreamingRecognizer<'a> {
    /// Creates a streaming recognizer over an engine, picking the
    /// incremental or replay implementation per the engine's
    /// [`StreamingMode`](crate::StreamingMode).
    pub fn new(engine: &'a EchoWrite) -> Self {
        StreamingRecognizer {
            engine,
            session: StreamingSession::new(engine),
            scratch: Vec::new(),
        }
    }

    /// Whether this recognizer runs the incremental path.
    pub fn is_incremental(&self) -> bool {
        self.session.is_incremental()
    }

    /// Overrides the replay path's maximum buffered window (seconds). The
    /// incremental path has no window; the argument is validated but
    /// otherwise ignored.
    ///
    /// # Panics
    ///
    /// Panics if the window cannot cover the background-estimation lead-in
    /// (`fft_size + (static_frames − 1) · hop` samples): a shorter window
    /// would trim the session's opening frames before the static background
    /// could ever freeze.
    pub fn with_window_seconds(mut self, seconds: f64) -> Self {
        self.session.set_window_seconds(self.engine, seconds);
        self
    }

    /// Appends audio and returns any newly decided strokes. After
    /// [`StreamingRecognizer::finish`] this is a no-op until
    /// [`StreamingRecognizer::reset`].
    // echolint: entry
    pub fn push(&mut self, chunk: &[f64]) -> Vec<StrokeEvent> {
        self.scratch.clear();
        self.session.push_events(self.engine, chunk, true, &mut self.scratch);
        collect_stroke_events(&mut self.scratch)
    }

    /// Ends the session, emitting every remaining stroke: the incremental
    /// path flushes its edge-clamped stages and replays the segmenter's
    /// end-of-stream checks; the replay path analyzes the final window
    /// without the stability margin.
    pub fn finish(&mut self) -> Vec<StrokeEvent> {
        self.scratch.clear();
        self.session.finish_events(self.engine, true, &mut self.scratch);
        collect_stroke_events(&mut self.scratch)
    }

    /// The absolute frame up to which strokes have been emitted.
    pub fn emitted_until(&self) -> usize {
        self.session.emitted_until()
    }

    /// Samples currently retained by the recognizer (the replay window, or
    /// the incremental front-end's pending audio; input-equivalent samples
    /// for the decimated front-end).
    pub fn buffered_samples(&self) -> usize {
        self.session.buffered_samples()
    }

    /// Total frames of the session processed so far (absolute frame clock).
    pub fn frames_processed(&self) -> usize {
        self.session.frames_processed(self.engine)
    }

    /// Whether the static background has been frozen (the lead-in is done).
    pub fn background_frozen(&self) -> bool {
        self.session.background_frozen()
    }

    /// Clears all state for a new session, in place: allocations are kept
    /// and nothing is re-planned, so a reset recognizer is bitwise
    /// equivalent to — but much cheaper to obtain than — a fresh one.
    pub fn reset(&mut self) {
        self.session.reset(self.engine);
    }

    /// Like [`StreamingRecognizer::reset`], but keeps the frozen static
    /// background, so the next session (same device, same scene) skips the
    /// background-estimation lead-in entirely.
    pub fn reset_keep_background(&mut self) {
        self.session.reset_keep_background(self.engine);
    }

    /// Consumes the recognizer, returning the engine-free session state
    /// (e.g. to hand it to a serving shard).
    pub fn into_session(self) -> StreamingSession {
        self.session
    }
}

/// Classifies one stroke's shift profile, wrapping the DTW match in a
/// [`Stage::Dtw`](echowrite_trace::Stage) span (wall time from a caller-side
/// stopwatch; the dtw crate itself never reads a clock).
fn classify_traced(engine: &EchoWrite, shifts: &[f64]) -> Classification {
    let timer = echowrite_trace::enabled().then(echowrite_profile::Stopwatch::start);
    let classification = engine.classifier().classify(shifts);
    if let Some(t) = timer {
        echowrite_trace::span(
            echowrite_trace::Stage::Dtw,
            "classify_stroke",
            echowrite_trace::TICK_UNSET,
            (t.elapsed_ms() * 1_000.0) as u64,
            shifts.len() as f64,
        );
    }
    classification
}

/// Maps classified segment events to [`StrokeEvent`]s (events without a
/// classification are impossible when `classify` was true and are skipped).
fn collect_stroke_events(events: &mut Vec<SegmentEvent>) -> Vec<StrokeEvent> {
    events
        .drain(..)
        .filter_map(|ev| {
            ev.classification.map(|classification| StrokeEvent {
                classification,
                start_frame: ev.start_frame,
                end_frame: ev.end_frame,
            })
        })
        .collect()
}

/// The engine-free state of one streaming recognition session.
///
/// [`StreamingRecognizer`] pairs this with a borrowed engine for the
/// single-session API; `echowrite-serve` keeps many of these pinned to
/// worker shards, passing the shared engine into every call. The caller
/// must pass the *same* engine (or an identically configured one) to every
/// method of a given session — the session's internal geometry is derived
/// from the engine's configuration at construction.
#[derive(Debug)]
pub struct StreamingSession {
    inner: Inner,
    finished: bool,
    /// Total input samples pushed — the session's logical clock for trace
    /// timestamps (audio time, not wall time).
    samples_in: u64,
}

#[derive(Debug)]
enum Inner {
    Replay(Replay),
    Incremental(Box<Incremental>),
}

impl StreamingSession {
    /// Creates session state for an engine, picking the incremental or
    /// replay implementation per the engine's
    /// [`StreamingMode`](crate::StreamingMode).
    pub fn new(engine: &EchoWrite) -> Self {
        let inner = if engine.config().streaming_is_incremental() {
            Inner::Incremental(Box::new(Incremental::new(engine)))
        } else {
            Inner::Replay(Replay::new(engine))
        };
        StreamingSession { inner, finished: false, samples_in: 0 }
    }

    /// Whether this session runs the incremental path.
    pub fn is_incremental(&self) -> bool {
        matches!(self.inner, Inner::Incremental(_))
    }

    /// Whether [`StreamingSession::finish_events`] has been called.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Overrides the replay path's maximum buffered window (seconds); see
    /// [`StreamingRecognizer::with_window_seconds`].
    ///
    /// # Panics
    ///
    /// Panics if the window cannot cover the background-estimation lead-in.
    pub fn set_window_seconds(&mut self, engine: &EchoWrite, seconds: f64) {
        let cfg = engine.config();
        let samples = (seconds * cfg.stft.sample_rate) as usize;
        let min = cfg.stft.fft_size + (cfg.enhance.static_frames - 1) * cfg.stft.hop;
        assert!(
            samples >= min,
            "window of {samples} samples cannot cover the {min}-sample background lead-in"
        );
        if let Inner::Replay(r) = &mut self.inner {
            r.max_samples = samples;
        }
    }

    /// Appends audio, pushing every newly decided segment onto `events`.
    /// With `classify` false the DTW matching is skipped and events carry
    /// boundaries only (the serving layer's degraded mode). A no-op after
    /// [`StreamingSession::finish_events`] until [`StreamingSession::reset`].
    // echolint: entry
    pub fn push_events(
        &mut self,
        engine: &EchoWrite,
        chunk: &[f64],
        classify: bool,
        events: &mut Vec<SegmentEvent>,
    ) {
        self.push_events_impl(engine, chunk, classify, None, events);
    }

    /// Like [`StreamingSession::push_events`], but STFT frames run through
    /// a caller-owned [`SharedDspScratch`] instead of the session's embedded
    /// arena — the batched-shard entry point. Output is bitwise identical to
    /// [`StreamingSession::push_events`]; sessions whose front-end has no
    /// shared-scratch path (the replay oracle, the decimating front-end)
    /// fall back to their per-session state transparently.
    // echolint: entry
    pub fn push_events_shared(
        &mut self,
        engine: &EchoWrite,
        chunk: &[f64],
        classify: bool,
        scratch: &mut SharedDspScratch,
        events: &mut Vec<SegmentEvent>,
    ) {
        self.push_events_impl(engine, chunk, classify, Some(scratch), events);
    }

    fn push_events_impl(
        &mut self,
        engine: &EchoWrite,
        chunk: &[f64],
        classify: bool,
        shared: Option<&mut SharedDspScratch>,
        events: &mut Vec<SegmentEvent>,
    ) {
        if self.finished {
            return;
        }
        let before = events.len();
        let timer = echowrite_trace::enabled().then(echowrite_profile::Stopwatch::start);
        match &mut self.inner {
            Inner::Replay(r) => r.push(engine, chunk, classify, events),
            Inner::Incremental(inc) => {
                inc.push_audio(chunk, shared);
                inc.drain_events(engine, classify, events);
            }
        }
        self.samples_in += chunk.len() as u64;
        if let Some(t) = timer {
            echowrite_trace::span(
                echowrite_trace::Stage::Stream,
                "push",
                echowrite_trace::samples_to_us(self.samples_in, engine.config().stft.sample_rate),
                (t.elapsed_ms() * 1_000.0) as u64,
                (events.len() - before) as f64,
            );
        }
    }

    /// Ends the session, pushing every remaining segment onto `events`; see
    /// [`StreamingRecognizer::finish`].
    pub fn finish_events(
        &mut self,
        engine: &EchoWrite,
        classify: bool,
        events: &mut Vec<SegmentEvent>,
    ) {
        if self.finished {
            return;
        }
        self.finished = true;
        let before = events.len();
        let timer = echowrite_trace::enabled().then(echowrite_profile::Stopwatch::start);
        match &mut self.inner {
            Inner::Replay(r) => r.finish(engine, classify, events),
            Inner::Incremental(inc) => inc.finish(engine, classify, events),
        }
        if let Some(t) = timer {
            echowrite_trace::span(
                echowrite_trace::Stage::Stream,
                "finish",
                echowrite_trace::samples_to_us(self.samples_in, engine.config().stft.sample_rate),
                (t.elapsed_ms() * 1_000.0) as u64,
                (events.len() - before) as f64,
            );
        }
    }

    /// The absolute frame up to which strokes have been emitted.
    pub fn emitted_until(&self) -> usize {
        match &self.inner {
            Inner::Replay(r) => r.emitted_until,
            Inner::Incremental(inc) => inc.emitted_until,
        }
    }

    /// Samples currently retained by the session; see
    /// [`StreamingRecognizer::buffered_samples`].
    pub fn buffered_samples(&self) -> usize {
        match &self.inner {
            Inner::Replay(r) => r.buffer.len(),
            Inner::Incremental(inc) => match &inc.front {
                Front::Full { sstft, .. } => sstft.pending(),
                Front::Down(d) => d.baseband.len() * d.sdc.inner().factor(),
            },
        }
    }

    /// Total frames of the session processed so far (absolute frame clock).
    pub fn frames_processed(&self, engine: &EchoWrite) -> usize {
        match &self.inner {
            Inner::Replay(r) => {
                let cfg = engine.config();
                let fft = cfg.stft.fft_size;
                let hop = cfg.stft.hop;
                let in_buffer = if r.buffer.len() < fft {
                    0
                } else {
                    (r.buffer.len() - fft) / hop + 1
                };
                r.dropped_frames + in_buffer
            }
            Inner::Incremental(inc) => inc.frames_in,
        }
    }

    /// Whether the static background has been frozen (the lead-in has
    /// completed, or a [`StreamingSession::reset_keep_background`] carried
    /// one over).
    pub fn background_frozen(&self) -> bool {
        match &self.inner {
            Inner::Replay(r) => r.background.is_some(),
            Inner::Incremental(inc) => inc.chain.enhancer.background_frozen(),
        }
    }

    /// Clears all state for a new session, in place. Every stage is reset
    /// without reallocating or re-planning, so this is cheap enough to run
    /// per-session in a serving shard, and a reset session's output is
    /// bitwise identical to a fresh one's on the same audio.
    pub fn reset(&mut self, engine: &EchoWrite) {
        self.reset_inner(engine, false);
    }

    /// Like [`StreamingSession::reset`], but restores the background-frozen
    /// state: the frozen static background survives, so the next session
    /// skips the `static_frames` lead-in instead of re-estimating. Only
    /// sound when the next session continues the same acoustic scene.
    pub fn reset_keep_background(&mut self, engine: &EchoWrite) {
        self.reset_inner(engine, true);
    }

    fn reset_inner(&mut self, engine: &EchoWrite, keep_background: bool) {
        // A mode flip (config changed between sessions of a pooled slot)
        // falls back to a rebuild; the common case resets in place.
        let want_incremental = engine.config().streaming_is_incremental();
        if want_incremental != self.is_incremental() {
            let window = match &self.inner {
                Inner::Replay(r) => Some(r.max_samples),
                Inner::Incremental(_) => None,
            };
            self.inner = if want_incremental {
                Inner::Incremental(Box::new(Incremental::new(engine)))
            } else {
                let mut r = Replay::new(engine);
                if let Some(w) = window {
                    r.max_samples = w;
                }
                Inner::Replay(r)
            };
            self.finished = false;
            self.samples_in = 0;
            return;
        }
        match &mut self.inner {
            Inner::Replay(r) => r.reset_in_place(keep_background),
            Inner::Incremental(inc) => inc.reset_in_place(keep_background),
        }
        self.finished = false;
        self.samples_in = 0;
    }

    /// Rebuilds a session from a previously exported [`SessionState`] — the
    /// suspend/resume entry point. Equivalent to restoring onto a fresh
    /// [`StreamingSession::new`]; see [`StreamingSession::restore_state`].
    ///
    /// # Errors
    ///
    /// Returns [`RestoreError`] when the state disagrees with the engine's
    /// configuration or violates a structural invariant.
    pub fn from_state(engine: &EchoWrite, state: &SessionState) -> Result<Self, RestoreError> {
        let mut session = StreamingSession::new(engine);
        session.restore_state(engine, state)?;
        Ok(session)
    }

    /// Overwrites this session's dynamic state with a previously exported
    /// one, in place (allocations and plans are reused — the pooled-slot
    /// thaw path). The engine must be configured identically to the one the
    /// state was exported under; further pushes then emit bitwise the same
    /// events an uninterrupted session would.
    ///
    /// Every structural invariant of the state is validated before use, so
    /// a corrupted or hand-built state is rejected instead of panicking
    /// later. Validation is not a substitute for the config pairing: a
    /// state restored under a *different-but-compatible-looking* config
    /// yields well-defined but meaningless output.
    ///
    /// # Errors
    ///
    /// Returns [`RestoreError`]; on error the session is left in an
    /// unspecified (but memory-safe) state and must be
    /// [`reset`](StreamingSession::reset) before reuse.
    pub fn restore_state(
        &mut self,
        engine: &EchoWrite,
        state: &SessionState,
    ) -> Result<(), RestoreError> {
        let want_incremental = matches!(state.body, SessionBody::Incremental(_));
        if want_incremental != engine.config().streaming_is_incremental() {
            return Err(RestoreError::ModeMismatch);
        }
        match &state.body {
            SessionBody::Replay(rs) => {
                if let Inner::Replay(r) = &mut self.inner {
                    r.restore_state(engine, rs)?;
                } else {
                    let mut r = Replay::new(engine);
                    r.restore_state(engine, rs)?;
                    self.inner = Inner::Replay(r);
                }
            }
            SessionBody::Incremental(is) => {
                if let Inner::Incremental(inc) = &mut self.inner {
                    inc.restore_state(is)?;
                } else {
                    let mut inc = Box::new(Incremental::new(engine));
                    inc.restore_state(is)?;
                    self.inner = Inner::Incremental(inc);
                }
            }
        }
        self.finished = state.finished;
        self.samples_in = state.samples_in;
        Ok(())
    }
}

impl SnapshotState for StreamingSession {
    type State = SessionState;

    fn export_state(&self) -> SessionState {
        let body = match &self.inner {
            Inner::Replay(r) => SessionBody::Replay(r.export_state()),
            Inner::Incremental(inc) => SessionBody::Incremental(inc.export_state()),
        };
        SessionState { finished: self.finished, samples_in: self.samples_in, body }
    }
}

/// Converts a `u64` state field back to the in-memory `usize`, rejecting
/// values that cannot round-trip (32-bit hosts) or that are so large that
/// downstream index arithmetic could overflow.
fn restore_usize(v: u64, what: &'static str) -> Result<usize, RestoreError> {
    match usize::try_from(v) {
        Ok(u) if u <= usize::MAX / 4 => Ok(u),
        _ => Err(RestoreError::Invalid(what)),
    }
}

// ---------------------------------------------------------------------------
// Replay path (full re-analysis per push — the differential oracle)
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Replay {
    buffer: Vec<f64>,
    /// Frozen static background captured from the session's opening frames.
    background: Option<Vec<f64>>,
    /// Frames already dropped from the front of the buffer.
    dropped_frames: usize,
    /// Absolute `(start, end)` intervals of emitted strokes, pruned as the
    /// window moves past them.
    emitted: Vec<(usize, usize)>,
    /// Largest emitted end frame.
    emitted_until: usize,
    /// Frames a segment must precede the buffer tail by to be stable.
    stability_margin: usize,
    /// Maximum buffered duration in samples before old audio is trimmed.
    max_samples: usize,
}

impl Replay {
    fn new(engine: &EchoWrite) -> Self {
        let cfg = engine.config();
        Replay {
            buffer: Vec::new(),
            background: None,
            dropped_frames: 0,
            emitted: Vec::new(),
            emitted_until: 0,
            stability_margin: cfg.segment.end_run + 2,
            // Default window: 12 s of audio.
            max_samples: (12.0 * cfg.stft.sample_rate) as usize,
        }
    }

    /// In-place counterpart of [`Replay::new`]: clears the session state,
    /// keeps the window override and all allocations, and optionally the
    /// frozen background (skipping the next session's estimation lead-in).
    fn reset_in_place(&mut self, keep_background: bool) {
        self.buffer.clear();
        if !keep_background {
            self.background = None;
        }
        self.dropped_frames = 0;
        self.emitted.clear();
        self.emitted_until = 0;
    }

    /// Captures every dynamic field (the stability margin is config-derived
    /// and rebuilt at restore).
    fn export_state(&self) -> ReplayState {
        ReplayState {
            buffer: self.buffer.clone(),
            background: self.background.clone(),
            dropped_frames: self.dropped_frames as u64,
            emitted: self.emitted.iter().map(|&(s, e)| (s as u64, e as u64)).collect(),
            emitted_until: self.emitted_until as u64,
            max_samples: self.max_samples as u64,
        }
    }

    /// Validating counterpart of [`Replay::export_state`].
    fn restore_state(&mut self, engine: &EchoWrite, state: &ReplayState) -> Result<(), RestoreError> {
        let cfg = engine.config();
        if let Some(bg) = &state.background {
            let (lo, hi, _) = roi_bins(cfg);
            if bg.len() != hi - lo + 1 {
                return Err(RestoreError::Invalid("replay background row count"));
            }
        }
        let max_samples = restore_usize(state.max_samples, "replay window out of range")?;
        let lead_in = cfg.stft.fft_size + (cfg.enhance.static_frames - 1) * cfg.stft.hop;
        if max_samples < lead_in {
            return Err(RestoreError::Invalid("replay window below the background lead-in"));
        }
        let dropped = restore_usize(state.dropped_frames, "replay dropped_frames out of range")?;
        self.buffer.clear();
        self.buffer.extend_from_slice(&state.buffer);
        self.background = state.background.clone();
        self.dropped_frames = dropped;
        self.emitted.clear();
        for &(s, e) in &state.emitted {
            self.emitted.push((
                restore_usize(s, "replay emitted interval out of range")?,
                restore_usize(e, "replay emitted interval out of range")?,
            ));
        }
        self.emitted_until = restore_usize(state.emitted_until, "replay emitted_until out of range")?;
        self.stability_margin = cfg.segment.end_run + 2;
        self.max_samples = max_samples;
        Ok(())
    }

    /// Whether `[start, end)` matches a stroke that was already emitted,
    /// within [`DEDUP_TOLERANCE_FRAMES`] of boundary wobble.
    fn already_emitted(&self, start: usize, end: usize) -> bool {
        self.emitted
            .iter()
            .any(|&(s, e)| start < e + DEDUP_TOLERANCE_FRAMES && s < end + DEDUP_TOLERANCE_FRAMES)
    }

    fn record(&mut self, start: usize, end: usize) {
        self.emitted.push((start, end));
        self.emitted_until = self.emitted_until.max(end);
    }

    fn push(
        &mut self,
        engine: &EchoWrite,
        chunk: &[f64],
        classify: bool,
        events: &mut Vec<SegmentEvent>,
    ) {
        self.buffer.extend_from_slice(chunk);
        let cfg = engine.config();
        // Freeze the static background from the session's opening frames
        // (only while the front of the buffer still *is* the opening).
        if self.background.is_none() && self.dropped_frames == 0 {
            let needed = cfg.stft.fft_size + (cfg.enhance.static_frames - 1) * cfg.stft.hop;
            if self.buffer.len() >= needed {
                self.background = engine.pipeline().estimate_background(&self.buffer);
            }
        }
        let analysis = engine
            .pipeline()
            .analyze_with_background(&self.buffer, self.background.as_deref());
        let total_frames = analysis.profile.len();

        for seg in &analysis.segments {
            let abs_start = seg.start + self.dropped_frames;
            let abs_end = seg.end + self.dropped_frames;
            if self.already_emitted(abs_start, abs_end) {
                continue;
            }
            if seg.end + self.stability_margin > total_frames {
                continue; // may still grow
            }
            let classification = classify.then(|| {
                let sub = analysis.profile.slice(seg.start, seg.end);
                classify_traced(engine, sub.shifts())
            });
            events.push(SegmentEvent {
                classification,
                start_frame: abs_start,
                end_frame: abs_end,
            });
            self.record(abs_start, abs_end);
        }

        // Trim the front if the buffer outgrew the window, keeping frame
        // alignment (whole hops only) and never cutting into a segment that
        // has not been emitted yet (including its backtrack slack).
        if self.buffer.len() > self.max_samples && self.background.is_some() {
            let hop = cfg.stft.hop;
            let excess = self.buffer.len() - self.max_samples;
            let mut limit = total_frames.saturating_sub(self.stability_margin);
            for seg in &analysis.segments {
                let abs_start = seg.start + self.dropped_frames;
                let abs_end = seg.end + self.dropped_frames;
                if !self.already_emitted(abs_start, abs_end) {
                    limit = limit.min(seg.start.saturating_sub(cfg.segment.max_backtrack));
                }
            }
            let drop_frames = (excess / hop).min(limit);
            if drop_frames > 0 {
                self.buffer.drain(..drop_frames * hop);
                self.dropped_frames += drop_frames;
                // Forget emitted intervals that fell behind the window.
                let floor = self.dropped_frames;
                self.emitted.retain(|&(_, e)| e + DEDUP_TOLERANCE_FRAMES > floor);
            }
        }
    }

    /// Final analysis of the remaining window, with the stability margin
    /// waived — the session is over, nothing can still grow.
    fn finish(&mut self, engine: &EchoWrite, classify: bool, events: &mut Vec<SegmentEvent>) {
        let analysis = engine
            .pipeline()
            .analyze_with_background(&self.buffer, self.background.as_deref());
        for seg in &analysis.segments {
            let abs_start = seg.start + self.dropped_frames;
            let abs_end = seg.end + self.dropped_frames;
            if self.already_emitted(abs_start, abs_end) {
                continue;
            }
            let classification = classify.then(|| {
                let sub = analysis.profile.slice(seg.start, seg.end);
                classify_traced(engine, sub.shifts())
            });
            events.push(SegmentEvent {
                classification,
                start_frame: abs_start,
                end_frame: abs_end,
            });
            self.record(abs_start, abs_end);
        }
    }
}

// ---------------------------------------------------------------------------
// Incremental path (O(chunk) per push, batch-equivalent bitwise)
// ---------------------------------------------------------------------------

/// Per-column processing chain: enhancement → MVCE/SMA → differentiation →
/// segmentation, every stage emitting values only once final.
#[derive(Debug)]
struct Chain {
    enhancer: IncrementalEnhancer,
    builder: ProfileBuilder,
    diff: IncrementalDiff,
    segmenter: StreamingSegmenter,
    /// Scratch for the differentiator's output.
    acc: Vec<f64>,
}

/// Feeds one final smoothed shift through differentiation into the
/// segmenter (a free function so disjoint `&mut` borrows survive the
/// enhancer's sink closure).
fn feed_shift(
    diff: &mut IncrementalDiff,
    segmenter: &mut StreamingSegmenter,
    acc: &mut Vec<f64>,
    shift: f64,
) {
    segmenter.push_shift(shift);
    acc.clear();
    diff.push(shift, acc);
    for &a in acc.iter() {
        segmenter.push_acc(a);
    }
}

impl Chain {
    /// Consumes one raw ROI column.
    fn consume_column(&mut self, raw: &[f64]) {
        let Chain { enhancer, builder, diff, segmenter, acc } = self;
        enhancer.push_column(raw, &mut |_, col| {
            if let Some(s) = builder.push_column(col) {
                feed_shift(diff, segmenter, acc, s);
            }
        });
    }

    /// Flushes every stage's edge-clamped tail, in dependency order.
    fn finish(&mut self) {
        let Chain { enhancer, builder, diff, segmenter, acc } = self;
        enhancer.finish(&mut |_, col| {
            if let Some(s) = builder.push_column(col) {
                feed_shift(diff, segmenter, acc, s);
            }
        });
        if let Some(s) = builder.finish() {
            feed_shift(diff, segmenter, acc, s);
        }
        acc.clear();
        diff.finish(acc);
        for &a in acc.iter() {
            segmenter.push_acc(a);
        }
    }

    /// Resets every stage in place, reusing the allocations.
    fn reset(&mut self, keep_background: bool) {
        if keep_background {
            self.enhancer.reset_keeping_background();
        } else {
            self.enhancer.reset();
        }
        self.builder.reset();
        self.diff.reset();
        self.segmenter.reset();
        self.acc.clear();
    }
}

/// The decimating streaming front-end's state.
#[derive(Debug)]
struct Down {
    sdc: StreamingDownconverter,
    bb: BasebandStft,
    scratch: BasebandScratch,
    /// Baseband samples not yet fully consumed by framing.
    baseband: Vec<Complex>,
    /// Absolute index of `baseband[0]`.
    base: usize,
    /// Next baseband frame to extract.
    next_frame: usize,
    row_lo: usize,
    row_hi: usize,
    /// Scratch for one ROI column.
    band: Vec<f64>,
}

#[derive(Debug)]
enum Front {
    Full { sstft: Box<StreamingStft>, lo: usize, hi: usize },
    Down(Box<Down>),
}

#[derive(Debug)]
struct Incremental {
    front: Front,
    chain: Chain,
    /// Raw spectrogram columns produced by the front-end.
    frames_in: usize,
    emitted_until: usize,
    /// Scratch for segments decided by a poll/finish.
    seg_scratch: Vec<SegmentedStroke>,
}

impl Incremental {
    fn new(engine: &EchoWrite) -> Self {
        let cfg = engine.config();
        let (lo, hi, carrier_bin) = roi_bins(cfg);
        let band = hi - lo + 1;
        let carrier_row = carrier_bin - lo;
        // The exact expressions the batch pipeline stores as spectrogram
        // metadata — bitwise-identical profile scaling.
        let bin_hz = cfg.stft.sample_rate / cfg.stft.fft_size as f64;
        let chain = Chain {
            enhancer: IncrementalEnhancer::new(cfg.enhance, band),
            builder: ProfileBuilder::new(carrier_row, cfg.guard_bins, bin_hz),
            diff: IncrementalDiff::new(),
            segmenter: StreamingSegmenter::new(cfg.segment, cfg.stft.hop_seconds()),
            acc: Vec::new(),
        };
        let front = match cfg.frontend {
            Frontend::FullStft => Front::Full {
                // Sessions share the engine's plan: twiddle tables and the
                // window are built once per configuration, not per session.
                sstft: Box::new(StreamingStft::with_shared_plan(engine.pipeline().shared_stft())),
                lo,
                hi,
            },
            Frontend::Downconverted { factor } => {
                let (dc, bb) = make_downconvert(cfg, factor);
                // Same row geometry as Pipeline::roi_spectrogram.
                let centre = bb.fft_size() / 2;
                let (row_lo, row_hi) = (centre - carrier_row, centre + (hi - carrier_bin));
                Front::Down(Box::new(Down {
                    sdc: StreamingDownconverter::new(dc),
                    scratch: bb.make_scratch(),
                    bb,
                    baseband: Vec::new(),
                    base: 0,
                    next_frame: 0,
                    row_lo,
                    row_hi,
                    band: vec![0.0; band],
                }))
            }
        };
        Incremental { front, chain, frames_in: 0, emitted_until: 0, seg_scratch: Vec::new() }
    }

    /// In-place counterpart of [`Incremental::new`]: every stage resets
    /// without reallocating; the frozen background optionally survives.
    fn reset_in_place(&mut self, keep_background: bool) {
        match &mut self.front {
            Front::Full { sstft, .. } => sstft.reset(),
            Front::Down(d) => {
                d.sdc.reset();
                d.baseband.clear();
                d.base = 0;
                d.next_frame = 0;
            }
        }
        self.chain.reset(keep_background);
        self.frames_in = 0;
        self.emitted_until = 0;
        self.seg_scratch.clear();
    }

    /// Captures every dynamic field of the front-end and the chain.
    fn export_state(&self) -> IncrementalState {
        let front = match &self.front {
            Front::Full { sstft, .. } => FrontState::Full(sstft.export_state()),
            Front::Down(d) => FrontState::Down(DownState {
                sdc: d.sdc.export_state(),
                baseband: d.baseband.clone(),
                base: d.base as u64,
                next_frame: d.next_frame as u64,
            }),
        };
        IncrementalState {
            front,
            chain: ChainState {
                enhancer: self.chain.enhancer.export_state(),
                builder: self.chain.builder.export_state(),
                diff: self.chain.diff.export_state(),
                segmenter: self.chain.segmenter.export_state(),
            },
            frames_in: self.frames_in as u64,
            emitted_until: self.emitted_until as u64,
        }
    }

    /// Validating counterpart of [`Incremental::export_state`]: the stage
    /// crates validate their own sections where their restore is fallible;
    /// this layer validates the front-end cursors (whose stage-level
    /// restores are infallible) and the cross-stage column accounting.
    fn restore_state(&mut self, state: &IncrementalState) -> Result<(), RestoreError> {
        match (&mut self.front, &state.front) {
            (Front::Full { sstft, .. }, FrontState::Full(fs)) => sstft.restore_state(fs),
            (Front::Down(d), FrontState::Down(ds)) => {
                Self::validate_down(d, ds)?;
                d.sdc.restore_state(&ds.sdc);
                d.baseband.clear();
                d.baseband.extend_from_slice(&ds.baseband);
                d.base = restore_usize(ds.base, "baseband base out of range")?;
                d.next_frame = restore_usize(ds.next_frame, "baseband frame cursor out of range")?;
            }
            _ => return Err(RestoreError::FrontendMismatch),
        }
        self.chain
            .enhancer
            .restore_state(&state.chain.enhancer)
            .map_err(RestoreError::Invalid)?;
        self.chain.builder.restore_state(&state.chain.builder);
        self.chain.diff.restore_state(&state.chain.diff);
        self.chain
            .segmenter
            .restore_state(&state.chain.segmenter)
            .map_err(RestoreError::Invalid)?;
        self.chain.acc.clear();
        let frames_in = restore_usize(state.frames_in, "frame counter out of range")?;
        if frames_in != state.chain.enhancer.raw_n {
            return Err(RestoreError::Invalid("frame counter disagrees with enhancer columns"));
        }
        self.frames_in = frames_in;
        self.emitted_until = restore_usize(state.emitted_until, "emitted_until out of range")?;
        self.seg_scratch.clear();
        Ok(())
    }

    /// Structural checks for the decimating front-end: the stage-level
    /// down-converter restore is infallible, so the index invariants its
    /// push path relies on (absolute cursors never behind the retained
    /// buffers, counters that add up) are enforced here.
    fn validate_down(d: &Down, ds: &DownState) -> Result<(), RestoreError> {
        let factor = d.sdc.inner().factor() as u128;
        let half = d.sdc.inner().half_taps() as u128;
        let hop = d.bb.hop() as u128;
        let sdc = &ds.sdc;
        if sdc.total_in != sdc.base + sdc.buffer.len() as u64 {
            return Err(RestoreError::Invalid("down-converter buffer does not cover its input"));
        }
        let emit_floor = (sdc.k as u128 * factor).saturating_sub(half);
        if sdc.base as u128 > emit_floor {
            return Err(RestoreError::Invalid("down-converter buffer behind the emit cursor"));
        }
        if ds.base + ds.baseband.len() as u64 != sdc.k {
            return Err(RestoreError::Invalid("baseband buffer does not cover emitted samples"));
        }
        let frame_pos = ds.next_frame as u128 * hop;
        if frame_pos < ds.base as u128 || frame_pos > ds.base as u128 + ds.baseband.len() as u128 {
            return Err(RestoreError::Invalid("baseband frame cursor outside the buffer"));
        }
        restore_usize(sdc.total_in, "down-converter input counter out of range")?;
        restore_usize(sdc.k, "down-converter output counter out of range")?;
        Ok(())
    }

    fn push_audio(&mut self, chunk: &[f64], shared: Option<&mut SharedDspScratch>) {
        let chain = &mut self.chain;
        let frames = &mut self.frames_in;
        match &mut self.front {
            Front::Full { sstft, lo, hi } => {
                let (lo, hi) = (*lo, *hi);
                let mut on_frame = |row: &[f64]| {
                    *frames += 1;
                    chain.consume_column(row);
                };
                match shared {
                    Some(sh) => {
                        let scratch =
                            sh.stft.get_or_insert_with(|| sstft.stft().make_scratch());
                        sstft.push_band_into_with_scratch(chunk, lo, hi, scratch, &mut on_frame);
                    }
                    None => sstft.push_band_into(chunk, lo, hi, &mut on_frame),
                }
            }
            Front::Down(d) => {
                // Straggler path: the decimating front-end keeps its
                // per-session scratch (its baseband geometry is per-stream).
                d.sdc.push(chunk, &mut d.baseband);
                Self::drain_down(d, frames, chain);
            }
        }
    }

    /// Extracts every completed baseband frame, then compacts the dead
    /// prefix so memory stays bounded.
    fn drain_down(d: &mut Down, frames: &mut usize, chain: &mut Chain) {
        let (size, hop) = (d.bb.fft_size(), d.bb.hop());
        while d.next_frame * hop + size <= d.base + d.baseband.len() {
            let start = d.next_frame * hop - d.base;
            d.bb.frame_rows_into(
                &d.baseband[start..start + size],
                d.row_lo,
                d.row_hi,
                &mut d.scratch,
                &mut d.band,
            );
            *frames += 1;
            chain.consume_column(&d.band);
            d.next_frame += 1;
        }
        let dead = d.next_frame * hop - d.base;
        if dead > 4096 && dead > d.baseband.len() - dead {
            d.baseband.drain(..dead);
            d.base += dead;
        }
    }

    /// Polls the segmenter and classifies every newly decided stroke.
    fn drain_events(&mut self, engine: &EchoWrite, classify: bool, events: &mut Vec<SegmentEvent>) {
        self.seg_scratch.clear();
        self.chain.segmenter.poll(&mut self.seg_scratch);
        for stroke in self.seg_scratch.drain(..) {
            let classification = classify.then(|| classify_traced(engine, &stroke.shifts));
            self.emitted_until = self.emitted_until.max(stroke.segment.end);
            events.push(SegmentEvent {
                classification,
                start_frame: stroke.segment.start,
                end_frame: stroke.segment.end,
            });
        }
    }

    fn finish(&mut self, engine: &EchoWrite, classify: bool, events: &mut Vec<SegmentEvent>) {
        // The full-rate front drops trailing partial frames exactly like the
        // offline framer; the decimated front must flush the edge-tap
        // baseband samples the causal filter was still holding back.
        if let Front::Down(d) = &mut self.front {
            d.sdc.finish(&mut d.baseband);
            Self::drain_down(d, &mut self.frames_in, &mut self.chain);
        }
        self.chain.finish();
        self.seg_scratch.clear();
        self.chain.segmenter.finish(&mut self.seg_scratch);
        for stroke in self.seg_scratch.drain(..) {
            let classification = classify.then(|| classify_traced(engine, &stroke.shifts));
            self.emitted_until = self.emitted_until.max(stroke.segment.end);
            events.push(SegmentEvent {
                classification,
                start_frame: stroke.segment.start,
                end_frame: stroke.segment.end,
            });
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EchoWriteConfig;
    use echowrite_gesture::{Stroke, Writer, WriterParams};
    use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
    use std::sync::OnceLock;

    fn engine() -> &'static EchoWrite {
        static E: OnceLock<EchoWrite> = OnceLock::new();
        E.get_or_init(EchoWrite::new)
    }

    fn streaming_engine() -> &'static EchoWrite {
        static E: OnceLock<EchoWrite> = OnceLock::new();
        E.get_or_init(|| EchoWrite::with_config(EchoWriteConfig::streaming()))
    }

    fn render(strokes: &[Stroke], seed: u64) -> Vec<f64> {
        let perf = Writer::new(WriterParams::nominal(), seed).write_sequence(strokes);
        Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), seed)
            .render(&perf.trajectory)
    }

    /// Renders a stroke sequence followed by `tail` seconds of rest (finger
    /// held still, carrier still on — digital zeros would be an unphysical
    /// carrier cutoff).
    fn render_with_tail(strokes: &[Stroke], seed: u64, tail: f64) -> Vec<f64> {
        let perf = Writer::new(WriterParams::nominal(), seed).write_sequence(strokes);
        let mut traj = perf.trajectory;
        let last = *traj.points().last().expect("non-empty");
        traj.hold(last, tail);
        Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), seed)
            .render(&traj)
    }

    #[test]
    fn streaming_matches_offline_for_a_sequence() {
        let e = engine();
        let strokes = [Stroke::S2, Stroke::S5, Stroke::S1];
        let audio = render_with_tail(&strokes, 21, 1.2);
        let offline = e.recognize_strokes(&audio);

        let mut stream = StreamingRecognizer::new(e);
        let mut streamed: Vec<Stroke> = Vec::new();
        // The Android app reads 5-frame buffers = 5 × 1024 samples.
        for chunk in audio.chunks(5 * 1024) {
            for ev in stream.push(chunk) {
                streamed.push(ev.classification.stroke);
            }
        }
        assert_eq!(streamed, offline.strokes(), "streaming vs offline mismatch");
    }

    /// The tentpole guarantee on the incremental path: pushes + finish give
    /// exactly the offline stroke sequence *and* segment boundaries.
    #[test]
    fn incremental_matches_offline_exactly() {
        let e = streaming_engine();
        let strokes = [Stroke::S2, Stroke::S5, Stroke::S1];
        let audio = render_with_tail(&strokes, 21, 1.2);
        let offline = e.recognize_strokes(&audio);

        let mut stream = StreamingRecognizer::new(e);
        assert!(stream.is_incremental());
        let mut events = Vec::new();
        for chunk in audio.chunks(5 * 1024) {
            events.extend(stream.push(chunk));
        }
        events.extend(stream.finish());
        assert_eq!(events.len(), offline.segments.len());
        for (ev, (seg, cls)) in events
            .iter()
            .zip(offline.segments.iter().zip(&offline.classifications))
        {
            assert_eq!(ev.start_frame, seg.start);
            assert_eq!(ev.end_frame, seg.end);
            assert_eq!(ev.classification.stroke, cls.stroke);
            assert_eq!(ev.classification.scores, cls.scores, "DTW scores must be bitwise equal");
        }
        // Pushing after finish is inert.
        assert!(stream.push(&[0.0; 4096]).is_empty());
    }

    /// A stroke ending right at the session end is only decidable at
    /// finish — and must still match offline.
    #[test]
    fn incremental_finish_flushes_tail_stroke() {
        let e = streaming_engine();
        let audio = render(&[Stroke::S3], 9); // no rest tail
        let offline = e.recognize_strokes(&audio);
        let mut stream = StreamingRecognizer::new(e);
        let mut pushed = Vec::new();
        for chunk in audio.chunks(4096) {
            pushed.extend(stream.push(chunk));
        }
        let finished = stream.finish();
        let all: Vec<Stroke> = pushed
            .iter()
            .chain(&finished)
            .map(|ev| ev.classification.stroke)
            .collect();
        assert_eq!(all, offline.strokes());
        assert!(!offline.strokes().is_empty(), "scenario must contain a stroke");
    }

    #[test]
    fn incremental_reset_clears_state() {
        let e = streaming_engine();
        let mut stream = StreamingRecognizer::new(e);
        stream.push(&render(&[Stroke::S2], 3));
        stream.finish();
        stream.reset();
        assert_eq!(stream.emitted_until(), 0);
        assert_eq!(stream.frames_processed(), 0);
        // Usable again after reset.
        assert!(stream.push(&vec![0.0; 44_100]).is_empty());
    }

    #[test]
    fn replay_mode_can_be_forced() {
        let cfg = EchoWriteConfig {
            streaming: crate::config::StreamingMode::Replay,
            ..EchoWriteConfig::streaming()
        };
        let e = EchoWrite::with_config(cfg);
        let stream = StreamingRecognizer::new(&e);
        assert!(!stream.is_incremental());
    }

    #[test]
    fn events_carry_monotone_frames() {
        let e = engine();
        let audio = render_with_tail(&[Stroke::S3, Stroke::S6], 5, 1.2);
        let mut stream = StreamingRecognizer::new(e);
        let mut last_end = 0;
        let mut all = Vec::new();
        for chunk in audio.chunks(4096) {
            all.extend(stream.push(chunk));
        }
        assert!(!all.is_empty());
        for ev in &all {
            assert!(ev.start_frame >= last_end);
            assert!(ev.end_frame > ev.start_frame);
            last_end = ev.end_frame;
        }
        assert_eq!(stream.emitted_until(), last_end);
    }

    #[test]
    fn silence_emits_nothing() {
        let e = engine();
        let mut stream = StreamingRecognizer::new(e);
        assert!(stream.push(&vec![0.0; 88_200]).is_empty());
    }

    #[test]
    fn buffer_stays_bounded() {
        let e = engine();
        let mut stream = StreamingRecognizer::new(e).with_window_seconds(2.0);
        let audio = render(&[Stroke::S2], 13);
        for chunk in audio.chunks(8192) {
            stream.push(chunk);
        }
        // Push a long silent tail; the buffer must not grow unboundedly.
        for _ in 0..20 {
            stream.push(&vec![0.0; 22_050]);
        }
        assert!(
            stream.buffered_samples() <= (2.5 * 44_100.0) as usize,
            "buffer grew to {}",
            stream.buffered_samples()
        );
    }

    #[test]
    fn incremental_buffer_stays_bounded() {
        let e = streaming_engine();
        let mut stream = StreamingRecognizer::new(e);
        let audio = render(&[Stroke::S2], 13);
        for chunk in audio.chunks(8192) {
            stream.push(chunk);
        }
        for _ in 0..40 {
            stream.push(&vec![0.0; 22_050]);
        }
        // The incremental front-end holds at most ~1 FFT window of audio.
        assert!(
            stream.buffered_samples() <= 4 * e.config().stft.fft_size,
            "front-end retained {} samples",
            stream.buffered_samples()
        );
    }

    /// Satellite regression for the dedup rule: a small window forces a
    /// buffer trim between strokes; re-analysis boundaries then wobble, and
    /// the old `abs_start < emitted_until` test either duplicated or
    /// dropped strokes. Interval identity with tolerance must keep the
    /// streamed sequence equal to offline.
    #[test]
    fn trim_between_strokes_neither_duplicates_nor_drops() {
        let e = engine();
        let strokes = [Stroke::S2, Stroke::S5];
        let audio = render_with_tail(&strokes, 17, 1.2);
        let offline = e.recognize_strokes(&audio);
        assert_eq!(offline.strokes().len(), 2, "scenario needs two offline strokes");

        let mut stream = StreamingRecognizer::new(e).with_window_seconds(1.2);
        let mut events = Vec::new();
        for chunk in audio.chunks(2048) {
            events.extend(stream.push(chunk));
        }
        assert!(
            stream.buffered_samples() <= (1.2 * 44_100.0) as usize + 2048,
            "scenario must actually trim the window"
        );
        events.extend(stream.finish());

        // No duplicates: re-analyses after a trim wobble segment boundaries
        // (the window's normalization changes), and the old scalar
        // `abs_start < emitted_until` check re-emitted or dropped such
        // strokes. Interval identity must keep every emitted span disjoint.
        for (i, a) in events.iter().enumerate() {
            for b in &events[i + 1..] {
                assert!(
                    a.end_frame + DEDUP_TOLERANCE_FRAMES <= b.start_frame
                        || b.end_frame + DEDUP_TOLERANCE_FRAMES <= a.start_frame,
                    "duplicate emission: {}..{} vs {}..{}",
                    a.start_frame,
                    a.end_frame,
                    b.start_frame,
                    b.end_frame
                );
            }
        }
        // No drops: every offline stroke appears, in order (renormalization
        // of the shrunken window may add spurious detections between
        // strokes, but must never lose one).
        let streamed: Vec<Stroke> = events.iter().map(|ev| ev.classification.stroke).collect();
        let mut it = streamed.iter();
        for want in offline.strokes() {
            assert!(
                it.any(|&s| s == want),
                "offline stroke {want:?} missing from streamed {streamed:?}"
            );
        }
    }

    #[test]
    fn reset_clears_state() {
        let e = engine();
        let mut stream = StreamingRecognizer::new(e);
        stream.push(&render(&[Stroke::S2], 3));
        stream.push(&vec![0.0; 44_100]);
        stream.reset();
        assert_eq!(stream.buffered_samples(), 0);
        assert_eq!(stream.emitted_until(), 0);
    }

    #[test]
    #[should_panic(expected = "background lead-in")]
    fn rejects_tiny_window() {
        let e = engine();
        let _ = StreamingRecognizer::new(e).with_window_seconds(0.01);
    }

    /// The window minimum is exactly the background lead-in: one frame plus
    /// `static_frames − 1` hops.
    #[test]
    fn window_minimum_is_background_lead_in() {
        let e = engine();
        let cfg = e.config();
        let min = cfg.stft.fft_size + (cfg.enhance.static_frames - 1) * cfg.stft.hop;
        let rate = cfg.stft.sample_rate;
        // Half a sample above/below the boundary avoids float truncation
        // ambiguity in the seconds → samples conversion.
        let _ = StreamingRecognizer::new(e).with_window_seconds((min as f64 + 0.5) / rate);
        let result = std::panic::catch_unwind(|| {
            let _ = StreamingRecognizer::new(e).with_window_seconds((min as f64 - 0.5) / rate);
        });
        assert!(result.is_err(), "one sample short of the lead-in must be rejected");
    }

    /// Streams `audio` in 5-hop chunks, returning every event from pushes
    /// plus finish.
    fn full_stream(stream: &mut StreamingRecognizer<'_>, audio: &[f64]) -> Vec<StrokeEvent> {
        let mut events = Vec::new();
        for chunk in audio.chunks(5 * 1024) {
            events.extend(stream.push(chunk));
        }
        events.extend(stream.finish());
        events
    }

    fn assert_bitwise_equal(a: &[StrokeEvent], b: &[StrokeEvent]) {
        assert_eq!(a.len(), b.len(), "event counts differ");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.start_frame, y.start_frame);
            assert_eq!(x.end_frame, y.end_frame);
            assert_eq!(x.classification.stroke, y.classification.stroke);
            assert_eq!(
                x.classification.distances, y.classification.distances,
                "DTW distances must be bitwise equal"
            );
            assert_eq!(
                x.classification.scores, y.classification.scores,
                "DTW scores must be bitwise equal"
            );
        }
    }

    /// Satellite regression: a recognizer reused via the cheap in-place
    /// `reset()` is bitwise-equal to a fresh one — on the incremental path
    /// every stage (front-end, enhancer, profile, diff, segmenter) must
    /// come back to its construction state without reallocating.
    #[test]
    fn incremental_reset_session_is_bitwise_equal_to_fresh() {
        let e = streaming_engine();
        let first = render_with_tail(&[Stroke::S4, Stroke::S1], 11, 1.2);
        let second = render_with_tail(&[Stroke::S2, Stroke::S5, Stroke::S6], 23, 1.2);

        let mut fresh = StreamingRecognizer::new(e);
        let want = full_stream(&mut fresh, &second);
        assert!(!want.is_empty(), "scenario must produce strokes");

        let mut reused = StreamingRecognizer::new(e);
        let _ = full_stream(&mut reused, &first); // dirty every stage
        reused.reset();
        assert_eq!(reused.emitted_until(), 0);
        assert_eq!(reused.frames_processed(), 0);
        assert!(!reused.background_frozen(), "cold reset must drop the background");
        let got = full_stream(&mut reused, &second);
        assert_bitwise_equal(&got, &want);
    }

    /// Same regression on the replay path: reset must clear the window,
    /// dedup intervals, and frame offset.
    #[test]
    fn replay_reset_session_is_bitwise_equal_to_fresh() {
        let e = engine();
        let first = render_with_tail(&[Stroke::S3], 31, 1.2);
        let second = render_with_tail(&[Stroke::S2, Stroke::S5], 17, 1.2);

        let mut fresh = StreamingRecognizer::new(e);
        let want = full_stream(&mut fresh, &second);
        assert!(!want.is_empty(), "scenario must produce strokes");

        let mut reused = StreamingRecognizer::new(e);
        let _ = full_stream(&mut reused, &first);
        reused.reset();
        assert!(!reused.background_frozen());
        let got = full_stream(&mut reused, &second);
        assert_bitwise_equal(&got, &want);
    }

    /// Warm reset keeps the frozen background, so the next session skips the
    /// lead-in; replaying the *same* scene must still be bitwise-equal to a
    /// fresh session (the retained background equals the one a fresh lead-in
    /// over the same audio would estimate).
    #[test]
    fn warm_reset_keeps_background_and_replays_bitwise() {
        for e in [streaming_engine(), engine()] {
            let audio = render_with_tail(&[Stroke::S2, Stroke::S5], 19, 1.2);
            let mut fresh = StreamingRecognizer::new(e);
            let want = full_stream(&mut fresh, &audio);
            assert!(!want.is_empty(), "scenario must produce strokes");

            let mut warm = StreamingRecognizer::new(e);
            let _ = full_stream(&mut warm, &audio);
            assert!(warm.background_frozen());
            warm.reset_keep_background();
            assert!(warm.background_frozen(), "warm reset must keep the background");
            assert_eq!(warm.emitted_until(), 0);
            let got = full_stream(&mut warm, &audio);
            assert_bitwise_equal(&got, &want);
        }
    }

    /// The batched-shard entry point: interleaved sessions pushed through
    /// one [`SharedDspScratch`] are bitwise identical to sessions running on
    /// their embedded per-session arenas.
    #[test]
    fn shared_scratch_sessions_are_bitwise_equal() {
        let e = streaming_engine();
        let a = render_with_tail(&[Stroke::S2, Stroke::S5], 41, 1.2);
        let b = render_with_tail(&[Stroke::S3, Stroke::S1], 43, 1.2);

        let reference = |audio: &[f64]| {
            let mut s = StreamingSession::new(e);
            let mut ev = Vec::new();
            for chunk in audio.chunks(5 * 1024) {
                s.push_events(e, chunk, true, &mut ev);
            }
            s.finish_events(e, true, &mut ev);
            ev
        };
        let want_a = reference(&a);
        let want_b = reference(&b);
        assert!(!want_a.is_empty() && !want_b.is_empty(), "scenarios must produce strokes");

        let mut shared = SharedDspScratch::new();
        let mut sa = StreamingSession::new(e);
        let mut sb = StreamingSession::new(e);
        let (mut got_a, mut got_b) = (Vec::new(), Vec::new());
        let (mut ca, mut cb) = (a.chunks(5 * 1024), b.chunks(5 * 1024));
        loop {
            let (x, y) = (ca.next(), cb.next());
            if x.is_none() && y.is_none() {
                break;
            }
            if let Some(c) = x {
                sa.push_events_shared(e, c, true, &mut shared, &mut got_a);
            }
            if let Some(c) = y {
                sb.push_events_shared(e, c, true, &mut shared, &mut got_b);
            }
        }
        sa.finish_events(e, true, &mut got_a);
        sb.finish_events(e, true, &mut got_b);
        for (got, want) in [(&got_a, &want_a), (&got_b, &want_b)] {
            assert_eq!(got.len(), want.len(), "event counts differ");
            for (g, w) in got.iter().zip(want.iter()) {
                assert_eq!(g.start_frame, w.start_frame);
                assert_eq!(g.end_frame, w.end_frame);
                let gc = g.classification.as_ref().expect("classified run");
                let wc = w.classification.as_ref().expect("classified run");
                assert_eq!(gc.stroke, wc.stroke);
                assert_eq!(gc.scores, wc.scores, "DTW scores must be bitwise equal");
            }
        }
    }

    /// Streams a session over `audio` in fixed chunks, with an optional
    /// suspend (export → drop → [`StreamingSession::from_state`]) at chunk
    /// boundary `cut_chunk`.
    fn session_events_with_cut(
        e: &EchoWrite,
        audio: &[f64],
        chunk: usize,
        cut_chunk: Option<usize>,
    ) -> Vec<SegmentEvent> {
        let mut s = StreamingSession::new(e);
        let mut ev = Vec::new();
        for (i, c) in audio.chunks(chunk).enumerate() {
            if cut_chunk == Some(i) {
                let state = s.export_state();
                s = StreamingSession::from_state(e, &state).expect("restore must succeed");
            }
            s.push_events(e, c, true, &mut ev);
        }
        s.finish_events(e, true, &mut ev);
        ev
    }

    fn assert_segment_events_bitwise(got: &[SegmentEvent], want: &[SegmentEvent]) {
        assert_eq!(got.len(), want.len(), "event counts differ");
        for (g, w) in got.iter().zip(want) {
            assert_eq!(g.start_frame, w.start_frame);
            assert_eq!(g.end_frame, w.end_frame);
            let (gc, wc) = match (&g.classification, &w.classification) {
                (Some(gc), Some(wc)) => (gc, wc),
                _ => panic!("classified runs must classify every event"),
            };
            assert_eq!(gc.stroke, wc.stroke);
            assert_eq!(gc.distances, wc.distances, "DTW distances must be bitwise equal");
            assert_eq!(gc.scores, wc.scores, "DTW scores must be bitwise equal");
        }
    }

    /// The tentpole guarantee of the snapshot layer: suspending a session at
    /// any push boundary (including mid-stroke) and resuming from the
    /// exported state yields bitwise the transcript of the uninterrupted
    /// session — on the incremental path for both front-ends, and on the
    /// replay oracle.
    #[test]
    fn session_state_roundtrip_resumes_bitwise() {
        let down = EchoWrite::with_config(EchoWriteConfig::streaming_downsampled(32));
        for e in [streaming_engine(), engine(), &down] {
            let audio = render_with_tail(&[Stroke::S2, Stroke::S5], 29, 1.2);
            let want = session_events_with_cut(e, &audio, 5 * 1024, None);
            assert!(!want.is_empty(), "scenario must produce strokes");
            let n_chunks = audio.len().div_ceil(5 * 1024);
            for cut in [1, n_chunks / 2, n_chunks - 1] {
                let got = session_events_with_cut(e, &audio, 5 * 1024, Some(cut));
                assert_segment_events_bitwise(&got, &want);
            }
        }
    }

    /// On the incremental path the resumed session is chunking-invariant:
    /// the cut may fall anywhere, not only on a reference chunk boundary.
    #[test]
    fn incremental_roundtrip_survives_misaligned_cut() {
        let e = streaming_engine();
        let audio = render_with_tail(&[Stroke::S4, Stroke::S1], 11, 1.2);
        let want = session_events_with_cut(e, &audio, 5 * 1024, None);
        assert!(!want.is_empty());
        for cut in [997usize, audio.len() / 2 + 13, audio.len() - 777] {
            let mut first = StreamingSession::new(e);
            let mut ev = Vec::new();
            for c in audio[..cut].chunks(3 * 1024 + 7) {
                first.push_events(e, c, true, &mut ev);
            }
            let state = first.export_state();
            drop(first);
            let mut resumed = StreamingSession::from_state(e, &state).expect("restore");
            for c in audio[cut..].chunks(2 * 1024 + 1) {
                resumed.push_events(e, c, true, &mut ev);
            }
            resumed.finish_events(e, true, &mut ev);
            assert_segment_events_bitwise(&ev, &want);
        }
    }

    /// Restore also works in place onto a dirty pooled session (the serve
    /// thaw path), overwriting whatever the slot held before.
    #[test]
    fn restore_overwrites_dirty_pooled_session() {
        let e = streaming_engine();
        let audio = render_with_tail(&[Stroke::S3, Stroke::S6], 5, 1.2);
        let want = session_events_with_cut(e, &audio, 4096, None);
        assert!(!want.is_empty());

        let cut = 5 * 4096;
        let mut first = StreamingSession::new(e);
        let mut ev = Vec::new();
        for c in audio[..cut].chunks(4096) {
            first.push_events(e, c, true, &mut ev);
        }
        let state = first.export_state();

        // Dirty a different session with unrelated audio, then thaw into it.
        let mut pooled = StreamingSession::new(e);
        let mut junk = Vec::new();
        pooled.push_events(e, &render(&[Stroke::S2], 3), true, &mut junk);
        pooled.restore_state(e, &state).expect("in-place restore");
        for c in audio[cut..].chunks(4096) {
            pooled.push_events(e, c, true, &mut ev);
        }
        pooled.finish_events(e, true, &mut ev);
        assert_segment_events_bitwise(&ev, &want);
    }

    #[test]
    fn restore_rejects_mismatched_engine() {
        let state = StreamingSession::new(streaming_engine()).export_state();
        assert_eq!(
            StreamingSession::from_state(engine(), &state).unwrap_err(),
            RestoreError::ModeMismatch,
            "incremental state must not restore under a replay engine"
        );
        let down = EchoWrite::with_config(EchoWriteConfig::streaming_downsampled(32));
        assert_eq!(
            StreamingSession::from_state(&down, &state).unwrap_err(),
            RestoreError::FrontendMismatch,
            "full-STFT state must not restore onto the decimating front-end"
        );
    }

    #[test]
    fn restore_rejects_corrupt_state() {
        let e = streaming_engine();
        let mut s = StreamingSession::new(e);
        let mut ev = Vec::new();
        s.push_events(e, &render(&[Stroke::S2], 3), true, &mut ev);
        let good = s.export_state();

        // Frame counter disagreeing with the enhancer's column count.
        let mut bad = good.clone();
        if let SessionBody::Incremental(is) = &mut bad.body {
            is.frames_in += 1;
        }
        assert!(matches!(StreamingSession::from_state(e, &bad), Err(RestoreError::Invalid(_))));

        // Down-converter cursors that do not add up.
        let down_e = EchoWrite::with_config(EchoWriteConfig::streaming_downsampled(32));
        let mut ds = StreamingSession::new(&down_e);
        ds.push_events(&down_e, &render(&[Stroke::S2], 3), true, &mut ev);
        let good = ds.export_state();
        let mut bad = good.clone();
        if let SessionBody::Incremental(is) = &mut bad.body {
            if let FrontState::Down(d) = &mut is.front {
                d.sdc.total_in += 7;
            }
        }
        assert!(matches!(
            StreamingSession::from_state(&down_e, &bad),
            Err(RestoreError::Invalid(_))
        ));

        // Replay: a frozen background with the wrong row count.
        let e = engine();
        let mut r = StreamingSession::new(e);
        r.push_events(e, &render_with_tail(&[Stroke::S2], 3, 1.2), true, &mut ev);
        let good = r.export_state();
        let mut bad = good.clone();
        if let SessionBody::Replay(rs) = &mut bad.body {
            let bg = rs.background.as_mut().expect("background must be frozen");
            bg.pop();
        }
        assert!(matches!(StreamingSession::from_state(e, &bad), Err(RestoreError::Invalid(_))));
    }

    /// The serving layer's degraded mode: with `classify` false a session
    /// reports segment boundaries only (no DTW), and the boundaries are
    /// identical to the classified run's.
    #[test]
    fn degraded_push_emits_segment_only_events() {
        for e in [streaming_engine(), engine()] {
            let audio = render_with_tail(&[Stroke::S3, Stroke::S6], 5, 1.2);
            let mut classified = StreamingRecognizer::new(e);
            let want = full_stream(&mut classified, &audio);
            assert!(!want.is_empty());

            let mut session = StreamingSession::new(e);
            let mut events = Vec::new();
            for chunk in audio.chunks(5 * 1024) {
                session.push_events(e, chunk, false, &mut events);
            }
            session.finish_events(e, false, &mut events);
            assert_eq!(events.len(), want.len());
            for (ev, w) in events.iter().zip(&want) {
                assert!(ev.classification.is_none(), "degraded events must skip DTW");
                assert_eq!(ev.start_frame, w.start_frame);
                assert_eq!(ev.end_frame, w.end_frame);
            }
        }
    }
}
