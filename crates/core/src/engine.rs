//! The EchoWrite recognition engine — the public facade.

use crate::config::EchoWriteConfig;
use crate::pipeline::{Pipeline, StageTiming};
use crate::templates;
use echowrite_corpus::Lexicon;
use echowrite_dtw::{Classification, ConfusionMatrix, DtwConfig, StrokeClassifier};
use echowrite_gesture::{InputScheme, Stroke};
use echowrite_lang::{Candidate, CorrectionRules, Dictionary, NextWordPredictor, WordDecoder};
use echowrite_profile::{Stopwatch, StrokeSegment};

/// Result of stroke-level recognition on one audio trace.
#[derive(Debug, Clone)]
pub struct StrokeRecognition {
    /// Detected segments, in time order.
    pub segments: Vec<StrokeSegment>,
    /// Per-segment classification (same order).
    pub classifications: Vec<Classification>,
    /// Per-stage timing, including DTW.
    pub timing: StageTiming,
}

impl StrokeRecognition {
    /// The recognized stroke sequence.
    pub fn strokes(&self) -> Vec<Stroke> {
        self.classifications.iter().map(|c| c.stroke).collect()
    }
}

/// Result of word-level recognition on one audio trace.
#[derive(Debug, Clone)]
pub struct WordRecognition {
    /// The underlying stroke recognition.
    pub strokes: StrokeRecognition,
    /// Ranked word candidates (top-k).
    pub candidates: Vec<Candidate>,
}

impl WordRecognition {
    /// The top-1 word, if any (the paper's 1-second auto-commit).
    pub fn top1(&self) -> Option<&str> {
        self.candidates.first().map(|c| c.word.as_str())
    }

    /// Whether `word` appears within the first `k` candidates.
    pub fn in_top(&self, word: &str, k: usize) -> bool {
        self.candidates
            .iter()
            .take(k)
            .any(|c| c.word == word.to_ascii_lowercase())
    }
}

/// The end-to-end EchoWrite engine.
///
/// Construction generates the six intrinsic stroke templates by simulating
/// the canonical writer through the same physical pipeline — no user
/// training data is involved.
///
/// # Example
///
/// ```
/// use echowrite::EchoWrite;
/// let engine = EchoWrite::new();
/// assert_eq!(engine.decoder().top_k(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct EchoWrite {
    pipeline: Pipeline,
    classifier: StrokeClassifier,
    decoder: WordDecoder,
    predictor: NextWordPredictor,
    scheme: InputScheme,
}

impl EchoWrite {
    /// Builds an engine with the paper's configuration, the embedded
    /// lexicon, and the paper input scheme.
    pub fn new() -> Self {
        EchoWrite::with_config(EchoWriteConfig::paper())
    }

    /// Builds an engine with a custom configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn with_config(config: EchoWriteConfig) -> Self {
        let scheme = InputScheme::paper();
        let lib = templates::generate(&config);
        let classifier = StrokeClassifier::new(lib)
            .with_config(DtwConfig::stroke_matching())
            .with_weights(config.match_weights)
            .with_temperature(config.score_temperature);
        let dictionary = Dictionary::build(Lexicon::embedded(), &scheme);
        let decoder = WordDecoder::new(dictionary).with_top_k(config.top_k);
        let pipeline = Pipeline::new(config);
        EchoWrite {
            pipeline,
            classifier,
            decoder,
            predictor: NextWordPredictor::embedded(),
            scheme,
        }
    }

    /// Replaces the word decoder (custom dictionary, correction rules, or
    /// confusion matrix).
    pub fn with_decoder(mut self, decoder: WordDecoder) -> Self {
        self.decoder = decoder;
        self
    }

    /// Installs an empirical confusion matrix for the decoder's
    /// `P(sᵢ|lᵢ)` terms.
    pub fn with_confusion(mut self, confusion: ConfusionMatrix) -> Self {
        self.decoder = self.decoder.clone().with_confusion(confusion);
        self
    }

    /// Replaces the correction rules (e.g. for the Fig. 15 ablation).
    pub fn with_rules(mut self, rules: CorrectionRules) -> Self {
        self.decoder = self.decoder.clone().with_rules(rules);
        self
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &EchoWriteConfig {
        self.pipeline.config()
    }

    /// The signal pipeline.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// The stroke classifier (and its template library).
    pub fn classifier(&self) -> &StrokeClassifier {
        &self.classifier
    }

    /// The word decoder.
    pub fn decoder(&self) -> &WordDecoder {
        &self.decoder
    }

    /// The next-word predictor.
    pub fn predictor(&self) -> &NextWordPredictor {
        &self.predictor
    }

    /// The input scheme.
    pub fn scheme(&self) -> &InputScheme {
        &self.scheme
    }

    /// Recognizes all strokes in an audio trace.
    // echolint: entry
    pub fn recognize_strokes(&self, audio: &[f64]) -> StrokeRecognition {
        let analysis = self.pipeline.analyze(audio);
        let mut timing = analysis.timing;
        let t = Stopwatch::start();
        let classifications: Vec<Classification> = analysis
            .segments
            .iter()
            .map(|seg| {
                let sub = analysis.profile.slice(seg.start, seg.end);
                self.classifier.classify(sub.shifts())
            })
            .collect();
        timing.dtw_ms = t.elapsed_ms();
        if echowrite_trace::enabled() {
            echowrite_trace::span(
                echowrite_trace::Stage::Dtw,
                "offline_dtw",
                echowrite_trace::TICK_UNSET,
                (timing.dtw_ms * 1_000.0) as u64,
                classifications.len() as f64,
            );
        }
        StrokeRecognition { segments: analysis.segments, classifications, timing }
    }

    /// Recognizes a whole word: strokes, then Bayesian decoding with the
    /// per-segment DTW soft scores.
    pub fn recognize_word(&self, audio: &[f64]) -> WordRecognition {
        let mut strokes = self.recognize_strokes(audio);
        let t = Stopwatch::start();
        let observed = strokes.strokes();
        let scores: Vec<[f64; 6]> = strokes.classifications.iter().map(|c| c.scores).collect();
        let candidates = if observed.is_empty() {
            Vec::new()
        } else {
            self.decoder.decode_soft(&observed, &scores)
        };
        strokes.timing.decode_ms = t.elapsed_ms();
        if echowrite_trace::enabled() {
            echowrite_trace::span(
                echowrite_trace::Stage::Lang,
                "offline_decode",
                echowrite_trace::TICK_UNSET,
                (strokes.timing.decode_ms * 1_000.0) as u64,
                candidates.len() as f64,
            );
        }
        WordRecognition { strokes, candidates }
    }

    /// Decodes an already-recognized stroke sequence (no audio), using the
    /// confusion-matrix likelihoods.
    pub fn decode_sequence(&self, observed: &[Stroke]) -> Vec<Candidate> {
        let timer = echowrite_trace::enabled().then(Stopwatch::start);
        let candidates = self.decoder.decode(observed);
        if let Some(t) = timer {
            echowrite_trace::span(
                echowrite_trace::Stage::Lang,
                "decode_sequence",
                echowrite_trace::TICK_UNSET,
                (t.elapsed_ms() * 1_000.0) as u64,
                candidates.len() as f64,
            );
        }
        candidates
    }
}

impl Default for EchoWrite {
    fn default() -> Self {
        EchoWrite::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echowrite_gesture::{Writer, WriterParams};
    use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
    use std::sync::OnceLock;

    /// Engine construction renders six template scenes; share one across
    /// tests.
    fn engine() -> &'static EchoWrite {
        static E: OnceLock<EchoWrite> = OnceLock::new();
        E.get_or_init(EchoWrite::new)
    }

    fn render(strokes: &[Stroke], seed: u64) -> Vec<f64> {
        let perf = Writer::new(WriterParams::nominal(), seed).write_sequence(strokes);
        Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), seed)
            .render(&perf.trajectory)
    }

    #[test]
    fn recognizes_single_strokes() {
        let e = engine();
        let mut correct = 0;
        for (i, stroke) in Stroke::ALL.iter().enumerate() {
            let rec = e.recognize_strokes(&render(&[*stroke], 40 + i as u64));
            if rec.strokes() == vec![*stroke] {
                correct += 1;
            }
        }
        assert!(correct >= 5, "only {correct}/6 single strokes recognized");
    }

    #[test]
    fn recognizes_a_word_in_top_candidates() {
        let e = engine();
        let seq = e.scheme().encode_word("the").unwrap();
        let rec = e.recognize_word(&render(&seq, 7));
        assert!(
            rec.in_top("the", 5),
            "'the' not in top-5: {:?}",
            rec.candidates
        );
    }

    #[test]
    fn timing_total_under_realtime_budget() {
        let e = engine();
        let audio = render(&[Stroke::S2], 9);
        let rec = e.recognize_word(&audio);
        // The paper achieves < 200 ms on a 2016 phone; a desktop build must
        // stay well under the trace's own duration.
        let trace_ms = audio.len() as f64 / 44.1;
        assert!(
            rec.strokes.timing.total_ms() < trace_ms,
            "pipeline slower than real-time: {} ms for {} ms of audio",
            rec.strokes.timing.total_ms(),
            trace_ms
        );
        assert!(rec.strokes.timing.dtw_ms >= 0.0);
    }

    #[test]
    fn empty_audio_recognizes_nothing() {
        let e = engine();
        let rec = e.recognize_word(&[]);
        assert!(rec.candidates.is_empty());
        assert!(rec.top1().is_none());
    }

    #[test]
    fn decode_sequence_matches_decoder() {
        let e = engine();
        let seq = e.scheme().encode_word("and").unwrap();
        let direct = e.decode_sequence(&seq);
        assert!(direct.iter().any(|c| c.word == "and"));
    }

    #[test]
    fn accessors_are_wired() {
        let e = engine();
        assert_eq!(e.config().top_k, 5);
        assert_eq!(e.decoder().top_k(), 5);
        assert!(e.predictor().is_top_prediction("of", "the"));
        assert_eq!(e.scheme(), &InputScheme::paper());
        assert!(e.classifier().templates().max_len() > 5);
    }
}
