//! Word-bigram successor model for next-word prediction.
//!
//! After a word is committed, EchoWrite "predict\[s\] following words by
//! automatic successive associations by using the 2-gram data of COCA"
//! (Sec. III-C). This model embeds a seed table of common English bigrams
//! and falls back to unigram frequency for unseen predecessors.

use crate::error::CorpusError;
use crate::lexicon::Lexicon;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Seed bigrams `(previous, next, weight)` — higher weight = more likely.
const SEED_BIGRAMS: &[(&str, &str, f64)] = &[
    ("of", "the", 100.0),
    ("in", "the", 95.0),
    ("to", "the", 80.0),
    ("on", "the", 70.0),
    ("to", "be", 68.0),
    ("at", "the", 60.0),
    ("and", "the", 55.0),
    ("for", "the", 52.0),
    ("with", "the", 50.0),
    ("from", "the", 45.0),
    ("by", "the", 42.0),
    ("it", "is", 40.0),
    ("it", "was", 38.0),
    ("i", "am", 36.0),
    ("i", "have", 35.0),
    ("i", "was", 34.0),
    ("i", "think", 30.0),
    ("i", "know", 28.0),
    ("you", "are", 32.0),
    ("you", "can", 30.0),
    ("you", "know", 29.0),
    ("he", "was", 30.0),
    ("he", "said", 28.0),
    ("she", "was", 28.0),
    ("she", "said", 26.0),
    ("they", "are", 26.0),
    ("they", "were", 24.0),
    ("we", "are", 25.0),
    ("we", "have", 23.0),
    ("this", "is", 30.0),
    ("that", "is", 26.0),
    ("there", "is", 25.0),
    ("there", "was", 23.0),
    ("there", "are", 22.0),
    ("the", "first", 20.0),
    ("the", "same", 19.0),
    ("the", "other", 18.0),
    ("the", "world", 17.0),
    ("the", "people", 16.0),
    ("the", "time", 15.0),
    ("the", "water", 12.0),
    ("a", "little", 18.0),
    ("a", "good", 17.0),
    ("a", "few", 16.0),
    ("a", "long", 15.0),
    ("a", "new", 14.0),
    ("one", "of", 25.0),
    ("some", "of", 20.0),
    ("all", "of", 19.0),
    ("out", "of", 24.0),
    ("part", "of", 18.0),
    ("most", "of", 16.0),
    ("because", "of", 15.0),
    ("would", "be", 20.0),
    ("will", "be", 22.0),
    ("can", "be", 18.0),
    ("could", "be", 16.0),
    ("should", "be", 14.0),
    ("have", "been", 20.0),
    ("has", "been", 18.0),
    ("had", "been", 16.0),
    ("do", "not", 22.0),
    ("did", "not", 18.0),
    ("does", "not", 15.0),
    ("is", "not", 14.0),
    ("was", "not", 13.0),
    ("going", "to", 22.0),
    ("want", "to", 20.0),
    ("have", "to", 19.0),
    ("need", "to", 16.0),
    ("like", "to", 14.0),
    ("able", "to", 12.0),
    ("said", "that", 15.0),
    ("so", "that", 12.0),
    ("more", "than", 18.0),
    ("less", "than", 10.0),
    ("as", "well", 14.0),
    ("well", "as", 12.0),
    ("such", "as", 13.0),
    ("each", "other", 12.0),
    ("every", "day", 10.0),
    ("last", "year", 12.0),
    ("next", "year", 10.0),
    ("first", "time", 12.0),
    ("long", "time", 11.0),
    ("right", "now", 12.0),
    ("come", "back", 10.0),
    ("go", "back", 9.0),
    ("look", "at", 14.0),
    ("looked", "at", 9.0),
    ("thank", "you", 12.0),
    ("good", "morning", 8.0),
    ("high", "school", 10.0),
    ("united", "states", 9.0),
    ("new", "york", 8.0),
    ("years", "ago", 10.0),
    ("per", "cent", 6.0),
    ("make", "sure", 9.0),
    ("in", "fact", 9.0),
    ("of", "course", 11.0),
    ("a", "lot", 16.0),
    ("lot", "of", 15.0),
    ("kind", "of", 13.0),
    ("sort", "of", 10.0),
    ("the", "way", 13.0),
    ("by", "way", 4.0),
    ("in", "order", 8.0),
    ("order", "to", 8.0),
    ("at", "least", 10.0),
    ("at", "all", 9.0),
    ("after", "all", 6.0),
    ("and", "then", 11.0),
    ("and", "so", 8.0),
    ("but", "not", 7.0),
    ("or", "not", 6.0),
    ("not", "only", 8.0),
    ("only", "one", 6.0),
    ("no", "one", 9.0),
    ("every", "one", 4.0),
    ("each", "of", 7.0),
    ("both", "of", 5.0),
    ("many", "of", 7.0),
    ("much", "of", 6.0),
    ("about", "the", 20.0),
    ("into", "the", 18.0),
    ("over", "the", 16.0),
    ("through", "the", 12.0),
    ("around", "the", 11.0),
    ("under", "the", 9.0),
    ("between", "the", 8.0),
];

/// A bigram successor model.
///
/// # Example
///
/// ```
/// use echowrite_corpus::BigramModel;
/// let model = BigramModel::embedded();
/// let next = model.predict("of", 3);
/// assert_eq!(next[0], "the");
/// ```
#[derive(Debug, Clone)]
pub struct BigramModel {
    // Ordered map so `predict` fallbacks and debugging dumps are
    // deterministic (see echolint's determinism rule).
    successors: BTreeMap<String, Vec<(String, f64)>>,
}

impl BigramModel {
    /// The embedded seed model (singleton).
    pub fn embedded() -> &'static BigramModel {
        static INSTANCE: OnceLock<BigramModel> = OnceLock::new();
        INSTANCE.get_or_init(|| {
            BigramModel::from_counts(
                SEED_BIGRAMS
                    .iter()
                    .map(|&(a, b, w)| ((a.to_string(), b.to_string()), w)),
            )
        })
    }

    /// Builds a model from `((previous, next), weight)` counts.
    pub fn from_counts<I>(counts: I) -> Self
    where
        I: IntoIterator<Item = ((String, String), f64)>,
    {
        let mut successors: BTreeMap<String, Vec<(String, f64)>> = BTreeMap::new();
        for ((prev, next), w) in counts {
            successors
                .entry(prev.to_ascii_lowercase())
                .or_default()
                .push((next.to_ascii_lowercase(), w));
        }
        for list in successors.values_mut() {
            list.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        }
        BigramModel { successors }
    }

    /// Loads a bigram table from tab-separated `prev<TAB>next<TAB>weight`
    /// text (blank lines and `#` comments skipped).
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Parse`] with the 1-based line number for
    /// malformed lines and [`CorpusError::InvalidFrequency`] for
    /// non-finite or non-positive weights. Never panics on garbage input.
    pub fn from_tsv(text: &str) -> Result<Self, CorpusError> {
        let mut counts = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut cols = line.split('\t');
            let (prev, next, weight) = match (cols.next(), cols.next(), cols.next()) {
                (Some(p), Some(n), Some(w)) if !p.trim().is_empty() && !n.trim().is_empty() => {
                    (p.trim(), n.trim(), w.trim())
                }
                _ => {
                    return Err(CorpusError::Parse {
                        line: i + 1,
                        what: "expected prev<TAB>next<TAB>weight",
                    })
                }
            };
            let w: f64 = weight.parse().map_err(|_| CorpusError::Parse {
                line: i + 1,
                what: "weight is not a number",
            })?;
            if !w.is_finite() || w <= 0.0 {
                return Err(CorpusError::InvalidFrequency {
                    word: format!("{prev} {next}"),
                    value: w,
                });
            }
            counts.push(((prev.to_string(), next.to_string()), w));
        }
        if counts.is_empty() {
            return Err(CorpusError::Empty);
        }
        Ok(BigramModel::from_counts(counts))
    }

    /// Ranked successors of `prev` from the bigram table only.
    pub fn successors(&self, prev: &str) -> &[(String, f64)] {
        self.successors
            .get(&prev.to_ascii_lowercase())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Predicts the `k` most likely next words after `prev`: bigram
    /// successors first, padded with the embedded lexicon's most frequent
    /// words (skipping duplicates and `prev` itself).
    pub fn predict(&self, prev: &str, k: usize) -> Vec<String> {
        let mut out: Vec<String> = self
            .successors(prev)
            .iter()
            .take(k)
            .map(|(w, _)| w.clone())
            .collect();
        if out.len() < k {
            let prev_lc = prev.to_ascii_lowercase();
            for e in Lexicon::embedded().iter() {
                if out.len() >= k {
                    break;
                }
                if e.word != prev_lc && !out.contains(&e.word) {
                    out.push(e.word.clone());
                }
            }
        }
        out
    }

    /// Number of distinct predecessor words in the table.
    pub fn predecessor_count(&self) -> usize {
        self.successors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_model_has_seed_pairs() {
        let m = BigramModel::embedded();
        assert!(m.predecessor_count() > 40);
        let of = m.successors("of");
        assert_eq!(of[0].0, "the");
    }

    #[test]
    fn successors_sorted_by_weight() {
        let m = BigramModel::embedded();
        for prev in ["i", "the", "a", "you"] {
            let s = m.successors(prev);
            for w in s.windows(2) {
                assert!(w[0].1 >= w[1].1, "{prev} successors out of order");
            }
        }
    }

    #[test]
    fn predict_pads_with_unigrams() {
        let m = BigramModel::embedded();
        let preds = m.predict("xylophoneish", 5);
        assert_eq!(preds.len(), 5);
        // Falls back to most frequent words.
        assert_eq!(preds[0], "the");
    }

    #[test]
    fn predict_excludes_prev_and_duplicates() {
        let m = BigramModel::embedded();
        let preds = m.predict("the", 10);
        assert_eq!(preds.len(), 10);
        assert!(!preds.contains(&"the".to_string()));
        let mut dedup = preds.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), preds.len());
    }

    #[test]
    fn case_insensitive() {
        let m = BigramModel::embedded();
        assert_eq!(m.predict("OF", 1), vec!["the".to_string()]);
    }

    #[test]
    fn custom_counts() {
        let m = BigramModel::from_counts(vec![
            (("hello".to_string(), "world".to_string()), 5.0),
            (("hello".to_string(), "there".to_string()), 9.0),
        ]);
        let s = m.successors("hello");
        assert_eq!(s[0].0, "there");
        assert_eq!(s[1].0, "world");
    }

    #[test]
    fn from_tsv_parses_and_rejects_garbage() {
        let m = BigramModel::from_tsv("# seed\nof\tthe\t100\nof\tcourse\t11\n").unwrap();
        assert_eq!(m.successors("of")[0].0, "the");
        assert_eq!(
            BigramModel::from_tsv("of the 100\n").unwrap_err(),
            CorpusError::Parse { line: 1, what: "expected prev<TAB>next<TAB>weight" }
        );
        assert_eq!(
            BigramModel::from_tsv("of\tthe\tmany\n").unwrap_err(),
            CorpusError::Parse { line: 1, what: "weight is not a number" }
        );
        assert_eq!(BigramModel::from_tsv("\n#x\n").unwrap_err(), CorpusError::Empty);
        for garbage in ["a\tb", "a\tb\t-1", "a\tb\tinf", "a\tb\tnan", "\t\t3"] {
            assert!(BigramModel::from_tsv(garbage).is_err(), "accepted {garbage:?}");
        }
    }

    #[test]
    fn seed_bigram_words_are_mostly_in_lexicon() {
        let lex = Lexicon::embedded();
        let missing: Vec<&str> = SEED_BIGRAMS
            .iter()
            .flat_map(|&(a, b, _)| [a, b])
            .filter(|w| !lex.contains(w))
            .collect();
        // A couple of proper nouns are allowed to be absent.
        assert!(missing.len() <= 8, "too many bigram words missing: {missing:?}");
    }
}
