//! Digit input: the ten digits as stroke sequences.
//!
//! The paper's introduction cites the authors' companion system (AcouDigits,
//! PerCom'19, ref. 26 of the paper) for entering digits in the air. Digits decompose into
//! the same six basic strokes as letters under school stroke order, so the
//! EchoWrite pipeline recognizes them without any new signal processing —
//! only this mapping and a sequence decoder are needed.

use crate::stroke::Stroke;

/// The stroke decomposition of each digit, in writing order.
///
/// Every digit has a *unique* sequence, so exact recognition needs no
/// language model; a confusion-aware decoder handles misread strokes.
///
/// # Example
///
/// ```
/// use echowrite_gesture::digits::DigitScheme;
/// use echowrite_gesture::Stroke;
/// let scheme = DigitScheme::standard();
/// assert_eq!(scheme.sequence_for(1), &[Stroke::S2]);
/// assert_eq!(scheme.decode_exact(&[Stroke::S2]), Some(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigitScheme {
    sequences: [Vec<Stroke>; 10],
}

impl DigitScheme {
    /// The standard school-stroke-order decomposition:
    ///
    /// | digit | strokes | rationale |
    /// |---|---|---|
    /// | 0 | S5 S6 | oval: left curve closed by a right curve |
    /// | 1 | S2 | single downstroke |
    /// | 2 | S6 S1 | upper bowl, then the base bar |
    /// | 3 | S6 S6 | two stacked right bowls |
    /// | 4 | S3 S1 S2 | slant, crossbar, downstroke |
    /// | 5 | S2 S6 S1 | downstroke, bowl, top bar |
    /// | 6 | S5 S5 | long left curve, closing left loop |
    /// | 7 | S1 S3 | top bar, then the long slant |
    /// | 8 | S6 S5 | upper-right sweep into the lower-left loop |
    /// | 9 | S5 S2 | closed loop, then the tail downstroke |
    pub fn standard() -> Self {
        use Stroke::*;
        DigitScheme {
            sequences: [
                vec![S5, S6],     // 0
                vec![S2],         // 1
                vec![S6, S1],     // 2
                vec![S6, S6],     // 3
                vec![S3, S1, S2], // 4
                vec![S2, S6, S1], // 5
                vec![S5, S5],     // 6
                vec![S1, S3],     // 7
                vec![S6, S5],     // 8
                vec![S5, S2],     // 9
            ],
        }
    }

    /// The stroke sequence of a digit.
    ///
    /// # Panics
    ///
    /// Panics if `digit > 9`.
    pub fn sequence_for(&self, digit: u8) -> &[Stroke] {
        assert!(digit <= 9, "digit must be 0..=9, got {digit}");
        &self.sequences[digit as usize]
    }

    /// Decodes an exactly-matching stroke sequence to its digit.
    pub fn decode_exact(&self, observed: &[Stroke]) -> Option<u8> {
        self.sequences
            .iter()
            .position(|s| s.as_slice() == observed)
            .map(|d| d as u8)
    }

    /// Ranks all digits by a simple likelihood of the observed sequence:
    /// per-position agreement scores (match = `p_match`, mismatch =
    /// `(1 − p_match)/5`), with a length-mismatch penalty per extra or
    /// missing stroke. Returns `(digit, score)` sorted best-first.
    pub fn decode_ranked(&self, observed: &[Stroke], p_match: f64) -> Vec<(u8, f64)> {
        let p_match = p_match.clamp(0.5, 0.999);
        let p_miss = (1.0 - p_match) / 5.0;
        let mut scored: Vec<(u8, f64)> = self
            .sequences
            .iter()
            .enumerate()
            .map(|(d, seq)| {
                let mut score = 1.0;
                for (a, b) in observed.iter().zip(seq) {
                    score *= if a == b { p_match } else { p_miss };
                }
                let len_diff = observed.len().abs_diff(seq.len());
                score *= p_miss.powi(len_diff as i32);
                (d as u8, score)
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored
    }

    /// All digit sequences, indexed by digit.
    pub fn sequences(&self) -> &[Vec<Stroke>; 10] {
        &self.sequences
    }
}

impl Default for DigitScheme {
    fn default() -> Self {
        DigitScheme::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Stroke::*;

    #[test]
    fn sequences_are_unique() {
        let scheme = DigitScheme::standard();
        for a in 0..10u8 {
            for b in 0..10u8 {
                if a != b {
                    assert_ne!(
                        scheme.sequence_for(a),
                        scheme.sequence_for(b),
                        "digits {a} and {b} collide"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_decode_roundtrips() {
        let scheme = DigitScheme::standard();
        for d in 0..10u8 {
            let seq = scheme.sequence_for(d).to_vec();
            assert_eq!(scheme.decode_exact(&seq), Some(d));
        }
        assert_eq!(scheme.decode_exact(&[S1, S1, S1, S1]), None);
        assert_eq!(scheme.decode_exact(&[]), None);
    }

    #[test]
    fn ranked_decode_puts_exact_match_first() {
        let scheme = DigitScheme::standard();
        for d in 0..10u8 {
            let ranked = scheme.decode_ranked(scheme.sequence_for(d), 0.95);
            assert_eq!(ranked[0].0, d, "digit {d} not ranked first");
            assert_eq!(ranked.len(), 10);
            for w in ranked.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
    }

    #[test]
    fn ranked_decode_recovers_single_misread() {
        let scheme = DigitScheme::standard();
        // '5' = S2 S6 S1 with the middle stroke misread as S5.
        let observed = vec![S2, S5, S1];
        let ranked = scheme.decode_ranked(&observed, 0.95);
        assert_eq!(ranked[0].0, 5, "ranked {ranked:?}");
    }

    #[test]
    fn length_mismatch_is_penalized_not_fatal() {
        let scheme = DigitScheme::standard();
        // '1' (S2) with a spurious extra stroke still ranks 1 highly.
        let ranked = scheme.decode_ranked(&[S2, S1], 0.95);
        // S2 S1 could be '5' missing its bowl too; '1'-with-insertion and
        // '5'-with-deletion compete — both must outrank unrelated digits.
        let top2: Vec<u8> = ranked[..2].iter().map(|r| r.0).collect();
        assert!(top2.contains(&1) || top2.contains(&5), "{ranked:?}");
    }

    #[test]
    #[should_panic(expected = "digit must be 0..=9")]
    fn rejects_non_digits() {
        DigitScheme::standard().sequence_for(10);
    }

    #[test]
    fn stroke_coverage() {
        // Digit forms have no natural right-falling diagonal (S4); all
        // other strokes appear.
        let scheme = DigitScheme::standard();
        let mut seen = [false; 6];
        for d in 0..10u8 {
            for s in scheme.sequence_for(d) {
                seen[s.index()] = true;
            }
        }
        assert!(!seen[S4.index()], "no digit uses S4 in school stroke order");
        for s in [S1, S2, S3, S5, S6] {
            assert!(seen[s.index()], "{s} unused");
        }
    }
}
