//! Call-graph tests over the `fixtures/graph/` mini-workspace — two virtual
//! crates exercising cycles, trait-object dispatch onto shadowed method
//! names, and cross-crate paths, with exact `file:line` and call-chain text
//! pinned — plus live-workspace invariants: the entry-point manifest,
//! serial/parallel determinism, and machine-readable output shape.

use echolint::callgraph::CallGraph;
use echolint::reach::graph_rules;
use echolint::symbols::{file_symbols, FileSymbols};
use echolint::{analyze_workspace, to_json, to_sarif, FileScope, Parallelism};
use std::path::Path;

/// Reads `fixtures/graph/<name>.rs` and extracts its symbols as if it were
/// `crates/<name>/src/lib.rs` of a pipeline crate named `name`.
fn graph_file(name: &str) -> FileSymbols {
    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/graph").join(format!("{name}.rs"));
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    let scope = FileScope {
        crate_name: name.into(),
        pipeline: true,
        test_file: false,
        allow_time: false,
        simd_kernels: false,
    };
    file_symbols(&format!("crates/{name}/src/lib.rs"), &src, &scope)
}

/// The two-crate mini-workspace and its call graph.
fn mini_workspace() -> (Vec<FileSymbols>, CallGraph) {
    let files = vec![graph_file("app"), graph_file("util")];
    let g = CallGraph::build(&files);
    (files, g)
}

/// Node index of a qualified name; panics (in tests) if absent.
fn idx(g: &CallGraph, qual: &str) -> usize {
    g.nodes
        .iter()
        .position(|n| n.qual == qual)
        .unwrap_or_else(|| panic!("node {qual} missing from graph"))
}

/// The full graph-rule output, pinned to exact positions and chain text:
/// the entry-reachable panics carry their shortest witness chains (one
/// through the recursive pair, one through the trait-object union), and the
/// hot kernel's transitive allocation is reported at the allocating line.
/// The literal index inside `util::blend` is entry-unreachable and must
/// stay silent.
#[test]
fn graph_fixture_pins_exact_chains_and_lines() {
    let (files, g) = mini_workspace();
    let rendered: Vec<String> =
        graph_rules(&files, &g).iter().map(ToString::to_string).collect();
    assert_eq!(
        rendered,
        vec![
            "crates/util/src/lib.rs:11: panic-reach: .unwrap() can panic — return a typed error instead; call chain: app::run → app::descend → util::finish",
            "crates/util/src/lib.rs:31: panic-reach: .expect() can panic — return a typed error instead; call chain: app::run → util::Gain::apply → util::Gain::scale",
            "crates/util/src/lib.rs:48: alloc-reach: vec! allocation reachable from hot kernel; call chain: util::mix_into → util::blend → util::grow",
        ]
    );
}

/// The mutual recursion `descend ⇄ rebound` is representable and the BFS
/// terminates through it (the pinned chains above prove reachability past
/// the cycle; here the cycle edges themselves are asserted).
#[test]
fn cycle_edges_exist_in_both_directions() {
    let (_, g) = mini_workspace();
    let descend = idx(&g, "app::descend");
    let rebound = idx(&g, "app::rebound");
    assert!(g.edges[descend].iter().any(|e| e.callee == rebound));
    assert!(g.edges[rebound].iter().any(|e| e.callee == descend));
}

/// `stage.apply(…)` has an unresolvable trait-object receiver, so the edge
/// takes every workspace method named `apply` — both halves of the
/// shadowed pair — while `self.scale(…)` resolves to the enclosing type
/// only.
#[test]
fn trait_object_call_unions_shadowed_methods_and_self_stays_typed() {
    let (_, g) = mini_workspace();
    let run = idx(&g, "app::run");
    let callees: Vec<&str> =
        g.edges[run].iter().map(|e| g.nodes[e.callee].qual.as_str()).collect();
    assert!(callees.contains(&"app::Echo::apply"), "{callees:?}");
    assert!(callees.contains(&"util::Gain::apply"), "{callees:?}");
    let apply = idx(&g, "util::Gain::apply");
    let scale_callees: Vec<&str> =
        g.edges[apply].iter().map(|e| g.nodes[e.callee].qual.as_str()).collect();
    assert_eq!(scale_callees, vec!["util::Gain::scale"]);
}

/// `util::prepare(…)` / `util::finish(…)` resolve across the crate
/// boundary by qualifier, and the fixture's one `// echolint: entry`
/// marker is the graph's entire entry manifest.
#[test]
fn cross_crate_paths_resolve_and_entries_match_markers() {
    let (_, g) = mini_workspace();
    let run = idx(&g, "app::run");
    let callees: Vec<&str> =
        g.edges[run].iter().map(|e| g.nodes[e.callee].qual.as_str()).collect();
    assert!(callees.contains(&"util::prepare"), "{callees:?}");
    let descend = idx(&g, "app::descend");
    let d_callees: Vec<&str> =
        g.edges[descend].iter().map(|e| g.nodes[e.callee].qual.as_str()).collect();
    assert!(d_callees.contains(&"util::finish"), "{d_callees:?}");
    let entries: Vec<&str> =
        g.entries().iter().map(|&i| g.nodes[i].qual.as_str()).collect();
    assert_eq!(entries, vec!["app::run"]);
}

/// The DOT dump names every fixture node and marks the entry point.
#[test]
fn dot_dump_covers_the_mini_workspace() {
    let (_, g) = mini_workspace();
    let dot = g.to_dot();
    for n in &g.nodes {
        assert!(dot.contains(n.qual.as_str()), "missing {}", n.qual);
    }
    assert!(dot.contains("doubleoctagon"), "entry shape missing");
}

/// Graph diagnostics survive the SARIF and JSON writers with their chain
/// text and positions intact.
#[test]
fn machine_output_carries_graph_diagnostics() {
    let (files, g) = mini_workspace();
    let diags = graph_rules(&files, &g);
    let sarif = to_sarif(&diags);
    assert!(sarif.contains("\"ruleId\": \"panic-reach\""));
    assert!(sarif.contains("call chain: app::run → app::descend → util::finish"));
    assert!(sarif.contains("\"uri\": \"crates/util/src/lib.rs\""));
    assert!(sarif.contains("\"startLine\": 11"));
    let json = to_json(&diags);
    assert!(json.contains("\"count\": 3"));
    assert!(json.contains("\"rule\": \"alloc-reach\""));
}

/// The live workspace's declared `// echolint: entry` manifest: the roots
/// the recognition pipeline, streaming layer, serve worker, and kernel
/// dispatch wrappers promise must all exist in the graph.
#[test]
fn live_workspace_entry_manifest_contains_the_declared_roots() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let a = analyze_workspace(&root, Parallelism::Auto).expect("workspace walk");
    let entries: Vec<&str> =
        a.graph.entries().iter().map(|&i| a.graph.nodes[i].qual.as_str()).collect();
    for want in [
        "core::EchoWrite::recognize_strokes",
        "core::Pipeline::roi_spectrogram",
        "core::StreamingRecognizer::push",
        "core::StreamingSession::push_events",
        "core::StreamingSession::push_events_shared",
        "serve::SessionManager::push",
        "serve::Worker::run",
        "wire::server::accept_loop",
        "wire::server::read_loop",
        "wire::server::write_loop",
        "wire::server::route_events",
        "dsp::kernels::mul_into",
        "dsp::kernels::subtract_clamp_bg",
        "dsp::kernels::butterfly_pass",
        "dsp::kernels::realfft_split",
        "dsp::kernels::conv1d_clamped_into",
    ] {
        assert!(entries.contains(&want), "entry {want} missing from {entries:?}");
    }
}

/// A parallel scan must be bitwise-identical to the serial one: same
/// diagnostics, same rendered JSON/SARIF bytes, same DOT dump.
#[test]
fn parallel_scan_is_bitwise_identical_to_serial() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let serial = analyze_workspace(&root, Parallelism::Threads(1)).expect("serial walk");
    let threaded = analyze_workspace(&root, Parallelism::Threads(8)).expect("parallel walk");
    let s: Vec<String> = serial.diags.iter().map(ToString::to_string).collect();
    let p: Vec<String> = threaded.diags.iter().map(ToString::to_string).collect();
    assert_eq!(s, p);
    assert_eq!(to_json(&serial.diags), to_json(&threaded.diags));
    assert_eq!(to_sarif(&serial.diags), to_sarif(&threaded.diags));
    assert_eq!(serial.graph.to_dot(), threaded.graph.to_dot());
}
