//! The lint rules and the allow-marker contract.
//!
//! Every rule is suppressible only by an explicit, reasoned marker:
//!
//! ```text
//! // echolint: allow(<rule>[, <rule>…]) -- <reason>
//! ```
//!
//! placed on the offending line or the line directly above it. A marker
//! without a `-- <reason>` tail, or naming an unknown rule, is itself a
//! diagnostic (`marker`), so suppressions stay auditable.

use crate::lexer::{Comment, Lexed, TokKind, Token};
use crate::scanner::Scan;
use std::fmt;

/// The rule that produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`/
    /// slice-index-by-literal in non-test pipeline code.
    NoPanicPath,
    /// Allocation or copy calls inside hot kernels (`*_into` functions and
    /// functions marked `// echolint: hot`).
    NoAllocHot,
    /// NaN-sensitive float ordering (`partial_cmp`, `f64::max`-style) where
    /// `total_cmp` is required.
    FloatOrder,
    /// Nondeterminism hazards: hash-ordered collections in result paths,
    /// wall-clock/thread-identity reads outside `crates/profile` and benches.
    Determinism,
    /// `pub` items in pipeline library crates must carry doc comments.
    PubDoc,
    /// Raw SIMD surface (`std::arch`/`core::arch`, `_mm*` intrinsics,
    /// feature-detect macros, `target_feature` attributes) outside
    /// `crates/dsp/src/kernels` — the one module sanctioned to hold
    /// architecture-specific code behind the safe dispatch wrappers.
    SimdBoundary,
    /// `unsafe` outside `crates/dsp/src/kernels`, an `unsafe` block/fn
    /// inside the kernels module without a covering `// SAFETY:` comment,
    /// or a kernel lane function called from outside the kernels module
    /// (bypassing its safe wrapper).
    UnsafeBoundary,
    /// An `Ordering::*` atomic-memory-ordering site without a reasoned
    /// `// ordering:` comment, or a `Relaxed` store that may publish a flag
    /// gating non-atomic data.
    AtomicsOrder,
    /// A panic site transitively reachable from a declared
    /// `// echolint: entry` hot entry point (graph-powered; the diagnostic
    /// carries the full call chain).
    PanicReach,
    /// An allocation site transitively reachable from a hot kernel
    /// (`*_into` / `// echolint: hot`) through the call graph.
    AllocReach,
    /// Malformed or unknown `// echolint:` marker.
    Marker,
}

impl Rule {
    /// The rule's stable id, as written in allow markers.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NoPanicPath => "no-panic-path",
            Rule::NoAllocHot => "no-alloc-hot",
            Rule::FloatOrder => "float-order",
            Rule::Determinism => "determinism",
            Rule::PubDoc => "pub-doc",
            Rule::SimdBoundary => "simd-boundary",
            Rule::UnsafeBoundary => "unsafe-boundary",
            Rule::AtomicsOrder => "atomics-order",
            Rule::PanicReach => "panic-reach",
            Rule::AllocReach => "alloc-reach",
            Rule::Marker => "marker",
        }
    }

    /// Parses a rule id (`marker` is not suppressible and not parsed).
    pub fn from_id(s: &str) -> Option<Rule> {
        match s {
            "no-panic-path" => Some(Rule::NoPanicPath),
            "no-alloc-hot" => Some(Rule::NoAllocHot),
            "float-order" => Some(Rule::FloatOrder),
            "determinism" => Some(Rule::Determinism),
            "pub-doc" => Some(Rule::PubDoc),
            "simd-boundary" => Some(Rule::SimdBoundary),
            "unsafe-boundary" => Some(Rule::UnsafeBoundary),
            "atomics-order" => Some(Rule::AtomicsOrder),
            "panic-reach" => Some(Rule::PanicReach),
            "alloc-reach" => Some(Rule::AllocReach),
            _ => None,
        }
    }

    /// Every suppressible rule, in stable id order (drives SARIF rule
    /// metadata and `--help` listings).
    pub const ALL: &'static [Rule] = &[
        Rule::NoPanicPath,
        Rule::NoAllocHot,
        Rule::FloatOrder,
        Rule::Determinism,
        Rule::PubDoc,
        Rule::SimdBoundary,
        Rule::UnsafeBoundary,
        Rule::AtomicsOrder,
        Rule::PanicReach,
        Rule::AllocReach,
        Rule::Marker,
    ];

    /// One-line description of what the rule enforces (SARIF rule metadata).
    pub fn describe(self) -> &'static str {
        match self {
            Rule::NoPanicPath => {
                "no unwrap/expect/panic!/unreachable!/literal slice indexing in non-test pipeline code"
            }
            Rule::NoAllocHot => "hot kernels write into caller-owned buffers and never allocate",
            Rule::FloatOrder => "float ordering must be NaN-total (total_cmp), never partial_cmp/f64::max",
            Rule::Determinism => {
                "no hash-ordered collections in result paths; no wall-clock or thread-identity reads outside crates/profile and benches"
            }
            Rule::PubDoc => "pub items in pipeline library crates carry doc comments",
            Rule::SimdBoundary => {
                "raw std::arch SIMD surface is confined to crates/dsp/src/kernels behind the dispatch wrappers"
            }
            Rule::UnsafeBoundary => {
                "unsafe is confined to crates/dsp/src/kernels, SAFETY-commented, and lane fns are reachable only via their safe wrappers"
            }
            Rule::AtomicsOrder => {
                "every atomic Ordering site carries a reasoned `// ordering:` comment; Relaxed stores that may gate non-atomic data are flagged"
            }
            Rule::PanicReach => {
                "no panic site is transitively reachable from a declared `// echolint: entry` hot entry point"
            }
            Rule::AllocReach => {
                "no allocation site is transitively reachable from a hot kernel through the call graph"
            }
            Rule::Marker => "echolint markers are well-formed, reasoned, and name known rules",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path of the offending file (as given to the linter).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// Where a file sits in the workspace — drives which rules apply.
#[derive(Debug, Clone, Default)]
pub struct FileScope {
    /// Short crate name (`dsp`, `core`, …) or empty when unknown.
    pub crate_name: String,
    /// Whether the crate is one of the Fig. 6 pipeline crates.
    pub pipeline: bool,
    /// Whole file is test/bench/example code (under `tests/`, `benches/`,
    /// `examples/`, or a `build.rs`).
    pub test_file: bool,
    /// Wall-clock reads are permitted (crates/profile, benches, tests).
    pub allow_time: bool,
    /// The file lives in `crates/dsp/src/kernels` — the sanctioned home of
    /// raw `std::arch` SIMD; the `simd-boundary` rule is off here.
    pub simd_kernels: bool,
}

/// A parsed `// echolint: allow(…) -- reason` marker.
#[derive(Debug, Clone)]
pub(crate) struct AllowMarker {
    pub(crate) line: u32,
    pub(crate) rules: Vec<Rule>,
}

/// Whether an allow marker at one of the parsed `allows` sanctions `rule`
/// on `line` (marker on the same line or the line directly above).
pub(crate) fn site_allowed(allows: &[AllowMarker], rule: Rule, line: u32) -> bool {
    allows.iter().any(|a| a.rules.contains(&rule) && (a.line == line || a.line + 1 == line))
}

/// Parses markers out of the comment list; malformed markers become
/// diagnostics immediately.
pub(crate) fn parse_markers(
    comments: &[Comment],
    file: &str,
    diags: &mut Vec<Diagnostic>,
) -> Vec<AllowMarker> {
    let mut allows = Vec::new();
    for c in comments {
        let body = c.text.trim_start_matches('/').trim_start_matches('!').trim();
        let Some(rest) = body.strip_prefix("echolint:") else {
            continue;
        };
        let rest = rest.trim();
        let words: Vec<&str> = rest.split_whitespace().collect();
        if !words.is_empty() && words.iter().all(|w| *w == "hot" || *w == "entry") {
            continue; // `hot` / `entry` function markers — handled by the scanner
        }
        let Some(after_kw) = rest.strip_prefix("allow") else {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: c.line,
                rule: Rule::Marker,
                message: format!("unknown echolint marker {rest:?} (expected `allow(…)` or `hot`)"),
            });
            continue;
        };
        let after_kw = after_kw.trim_start();
        let Some((inside, tail)) = after_kw.strip_prefix('(').and_then(|s| s.split_once(')'))
        else {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: c.line,
                rule: Rule::Marker,
                message: "malformed allow marker: expected `allow(<rule>, …)`".to_string(),
            });
            continue;
        };
        let reason = tail.trim().strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: c.line,
                rule: Rule::Marker,
                message: "allow marker must carry a reason: `-- <why this is safe>`".to_string(),
            });
            continue;
        }
        let mut rules = Vec::new();
        let mut ok = true;
        for part in inside.split(',') {
            let id = part.trim();
            match Rule::from_id(id) {
                Some(r) => rules.push(r),
                None => {
                    diags.push(Diagnostic {
                        file: file.to_string(),
                        line: c.line,
                        rule: Rule::Marker,
                        message: format!("unknown rule {id:?} in allow marker"),
                    });
                    ok = false;
                }
            }
        }
        if ok && !rules.is_empty() {
            allows.push(AllowMarker { line: c.line, rules });
        }
    }
    allows
}

/// Runs every rule over one lexed+scanned file.
pub fn check(file: &str, lexed: &Lexed, scan: &Scan, scope: &FileScope) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let allows = parse_markers(&lexed.comments, file, &mut diags);

    if !scope.test_file {
        if scope.pipeline {
            no_panic_path(file, lexed, scan, &mut diags);
            float_order(file, lexed, scan, &mut diags);
            determinism(file, lexed, scan, scope, &mut diags);
            pub_doc(file, scan, &mut diags);
            atomics_order(file, lexed, scan, &mut diags);
        }
        no_alloc_hot(file, lexed, scan, &mut diags);
        if !scope.simd_kernels {
            simd_boundary(file, lexed, scan, &mut diags);
        }
        unsafe_boundary(file, lexed, scan, scope, &mut diags);
    }

    // Apply suppressions: a marker on the same line or the line above.
    diags.retain(|d| {
        d.rule == Rule::Marker
            || !allows
                .iter()
                .any(|a| a.rules.contains(&d.rule) && (a.line == d.line || a.line + 1 == d.line))
    });
    diags.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(&b.rule)));
    diags
}

fn push(diags: &mut Vec<Diagnostic>, file: &str, line: u32, rule: Rule, message: String) {
    diags.push(Diagnostic { file: file.to_string(), line, rule, message });
}

/// Whether the token at `i` is a panic site; returns the diagnostic message.
/// Shared between the per-file `no-panic-path` rule and the symbol pass that
/// feeds the graph-powered `panic-reach` rule.
pub(crate) fn panic_site_at(toks: &[Token], i: usize) -> Option<String> {
    let t = &toks[i];
    // `.unwrap()` / `.expect(`.
    if t.kind == TokKind::Ident
        && (t.text == "unwrap" || t.text == "expect")
        && i > 0
        && toks[i - 1].is_punct('.')
        && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
    {
        return Some(format!(".{}() can panic — return a typed error instead", t.text));
    }
    // Panic macros.
    if t.kind == TokKind::Ident
        && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
        && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
    {
        return Some(format!("{}! in non-test pipeline code", t.text));
    }
    // Slice-index-by-literal: `expr[0]`, `expr[0..4]`, `expr[..4]`,
    // `expr[4..]` where expr ends with an identifier, `)`, or `]`.
    if t.is_punct('[') && i > 0 {
        let prev = &toks[i - 1];
        let indexable = prev.kind == TokKind::Ident || prev.is_punct(')') || prev.is_punct(']');
        // Exclude attribute openers `#[…]` and struct-ish contexts.
        if indexable && literal_index_inside(toks, i) {
            return Some(
                "slice index by literal can panic — use get()/split_first() or a checked range"
                    .to_string(),
            );
        }
    }
    None
}

/// Rule 1 — `no-panic-path`.
fn no_panic_path(file: &str, lexed: &Lexed, scan: &Scan, diags: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if scan.is_test(i) {
            continue;
        }
        if let Some(msg) = panic_site_at(toks, i) {
            push(diags, file, toks[i].line, Rule::NoPanicPath, msg);
        }
    }
}

/// Whether the bracket group opening at `open` is a literal index:
/// `[INT]`, `[INT..INT]`, `[INT..]`, `[..INT]` (with optional `=` range).
fn literal_index_inside(toks: &[Token], open: usize) -> bool {
    let mut j = open + 1;
    let mut saw_int = false;
    let mut structure_ok = true;
    while j < toks.len() && !toks[j].is_punct(']') {
        let t = &toks[j];
        if t.kind == TokKind::Int {
            saw_int = true;
        } else if t.is_punct('.') || t.is_punct('=') {
            // range dots / inclusive `=`
        } else {
            structure_ok = false;
            break;
        }
        j += 1;
    }
    structure_ok && saw_int && j < toks.len()
}

/// Whether the token at `i` is an allocation/copy site; returns a short
/// description of what allocates. Shared between the per-file
/// `no-alloc-hot` rule and the graph-powered `alloc-reach` rule.
pub(crate) fn alloc_site_at(toks: &[Token], i: usize) -> Option<String> {
    let t = &toks[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    let next_is = |c: char| toks.get(i + 1).is_some_and(|n| n.is_punct(c));
    let prev_is_dot = i > 0 && toks[i - 1].is_punct('.');
    if (t.text == "Vec" || t.text == "Box" || t.text == "String") && next_is(':') {
        // `Vec::new`, `Vec::with_capacity`, `Box::new`, `String::from`…
        Some(format!("{}::… constructor", t.text))
    } else if t.text == "vec" && next_is('!') {
        Some("vec! allocation".to_string())
    } else if prev_is_dot
        && matches!(
            t.text.as_str(),
            "to_vec" | "clone" | "collect" | "push" | "to_owned" | "to_string"
        )
    {
        Some(format!(".{}()", t.text))
    } else if t.text == "format" && next_is('!') {
        Some("format! allocation".to_string())
    } else {
        None
    }
}

/// Rule 2 — `no-alloc-hot`.
fn no_alloc_hot(file: &str, lexed: &Lexed, scan: &Scan, diags: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for f in &scan.fns {
        let hot = f.marked_hot || f.name.ends_with("_into");
        if !hot {
            continue;
        }
        let (s, e) = f.body;
        for i in s..e.min(toks.len()) {
            if scan.is_test(i) {
                continue;
            }
            let t = &toks[i];
            if let Some(what) = alloc_site_at(toks, i) {
                push(
                    diags,
                    file,
                    t.line,
                    Rule::NoAllocHot,
                    format!(
                        "{} in hot kernel `{}` — hot kernels must write into caller-owned buffers",
                        what, f.name
                    ),
                );
            }
        }
    }
}

/// Rule 3 — `float-order`.
fn float_order(file: &str, lexed: &Lexed, scan: &Scan, diags: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if scan.is_test(i) {
            continue;
        }
        let t = &toks[i];
        if t.is_ident("partial_cmp") && i > 0 && toks[i - 1].is_punct('.') {
            push(
                diags,
                file,
                t.line,
                Rule::FloatOrder,
                "partial_cmp is NaN-unsafe — use total_cmp for float ordering".to_string(),
            );
        }
        // `f32::max(a, b)` / `f64::min(…)` path form.
        if (t.is_ident("f32") || t.is_ident("f64"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| n.is_ident("max") || n.is_ident("min"))
            && toks.get(i + 4).is_some_and(|n| n.is_punct('('))
        {
            push(
                diags,
                file,
                t.line,
                Rule::FloatOrder,
                format!(
                    "{}::{} silently drops NaN — order with total_cmp or guard the inputs",
                    t.text,
                    toks[i + 3].text
                ),
            );
        }
    }
}

/// Rule 4 — `determinism`.
fn determinism(
    file: &str,
    lexed: &Lexed,
    scan: &Scan,
    scope: &FileScope,
    diags: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if scan.is_test(i) {
            continue;
        }
        let t = &toks[i];
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            push(
                diags,
                file,
                t.line,
                Rule::Determinism,
                format!(
                    "{} iteration order is nondeterministic — use BTreeMap/BTreeSet or sort before producing results",
                    t.text
                ),
            );
        }
        if scope.allow_time {
            continue;
        }
        // `std::time`, `Instant::…`, `SystemTime::…`.
        if t.is_ident("time")
            && i >= 2
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && i >= 3
            && toks[i - 3].is_ident("std")
        {
            push(
                diags,
                file,
                t.line,
                Rule::Determinism,
                "std::time outside crates/profile and benches — wall-clock reads make results environment-dependent".to_string(),
            );
        }
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !(i >= 1 && toks[i - 1].is_punct(':'))
        {
            push(
                diags,
                file,
                t.line,
                Rule::Determinism,
                format!("{}:: outside crates/profile and benches", t.text),
            );
        }
        // `thread::current()` — thread identity.
        if t.is_ident("current")
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("thread")
        {
            push(
                diags,
                file,
                t.line,
                Rule::Determinism,
                "thread::current() identity must not influence results".to_string(),
            );
        }
    }
}

/// Rule 6 — `simd-boundary`.
///
/// Raw architecture-specific SIMD belongs in `crates/dsp/src/kernels`
/// behind the dispatcher's safe wrappers; anywhere else it fragments the
/// scalar-equivalence guarantee (there is exactly one place to audit for
/// `unsafe` lane code and exactly one `ECHOWRITE_SIMD` knob to force it
/// off). Fires on `std::arch`/`core::arch` paths, `_mm*` intrinsic idents,
/// the feature-detect macros, and `target_feature` attributes.
fn simd_boundary(file: &str, lexed: &Lexed, scan: &Scan, diags: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if scan.is_test(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `std::arch` / `core::arch` paths (use, call, or cfg position).
        if t.text == "arch"
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && (toks[i - 3].is_ident("std") || toks[i - 3].is_ident("core"))
        {
            push(
                diags,
                file,
                t.line,
                Rule::SimdBoundary,
                format!(
                    "{}::arch outside dsp::kernels — raw SIMD lives behind the kernel dispatch layer",
                    toks[i - 3].text
                ),
            );
        }
        // Intel intrinsic idents (`_mm_…`, `_mm256_…`) even when imported.
        if t.text.starts_with("_mm") {
            push(
                diags,
                file,
                t.line,
                Rule::SimdBoundary,
                format!("intrinsic `{}` outside dsp::kernels", t.text),
            );
        }
        // Runtime feature probes: the dispatcher is the single source of
        // truth for what the host supports.
        if (t.text == "is_x86_feature_detected" || t.text == "is_aarch64_feature_detected")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            push(
                diags,
                file,
                t.line,
                Rule::SimdBoundary,
                format!("{}! outside dsp::kernels — query kernels::backend() instead", t.text),
            );
        }
        // `#[target_feature(…)]` attributes imply unsafe lane code.
        if t.text == "target_feature" && i >= 1 && toks[i - 1].is_punct('[') {
            push(
                diags,
                file,
                t.line,
                Rule::SimdBoundary,
                "#[target_feature] outside dsp::kernels".to_string(),
            );
        }
    }
}

/// Line of the `fn` keyword of the function whose body encloses token `i`,
/// if any. Used to scope `// SAFETY:` and `// ordering:` rationale comments:
/// one comment anywhere between the `fn` line and the site covers it, so a
/// single stated invariant covers every dispatch arm below it (the `fn`
/// line, not the first body token's line, because a comment opening the body
/// precedes any token).
fn enclosing_body_start(scan: &Scan, toks: &[Token], i: usize) -> Option<u32> {
    scan.fns
        .iter()
        .find(|f| i >= f.body.0 && i < f.body.1 && f.body.0 < toks.len())
        .map(|f| f.line)
}

/// Rule 7 — `unsafe-boundary` (per-file half; the wrapper-reachability half
/// lives in the graph pass, [`crate::reach`]).
///
/// Outside `crates/dsp/src/kernels`, any `unsafe` token fires: the kernels
/// module is the single sanctioned unsafe surface (the workspace lint wall
/// already denies `unsafe_code` elsewhere; this keeps the invariant visible
/// to the linter's own fixtures and to SARIF consumers). Inside the kernels
/// module, every `unsafe` block or fn must be covered by a `// SAFETY:`
/// comment — on the same line, the line directly above, or anywhere earlier
/// in the same function body (one stated invariant covers the dispatch arms
/// below it).
fn unsafe_boundary(
    file: &str,
    lexed: &Lexed,
    scan: &Scan,
    scope: &FileScope,
    diags: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if scan.is_test(i) || !toks[i].is_ident("unsafe") {
            continue;
        }
        let line = toks[i].line;
        if !scope.simd_kernels {
            push(
                diags,
                file,
                line,
                Rule::UnsafeBoundary,
                "`unsafe` outside crates/dsp/src/kernels — the kernel dispatch module is the only sanctioned unsafe surface".to_string(),
            );
            continue;
        }
        let body_start = enclosing_body_start(scan, toks, i);
        let covered = lexed.comments.iter().any(|c| {
            c.text.contains("SAFETY:")
                && (c.line == line
                    || c.line + 1 == line
                    || body_start.is_some_and(|s| c.line >= s && c.line <= line))
        });
        if !covered {
            push(
                diags,
                file,
                line,
                Rule::UnsafeBoundary,
                "`unsafe` without a covering `// SAFETY:` comment — state the invariant that makes it sound".to_string(),
            );
        }
    }
}

/// Whether the `Ordering` path at token `i` (the variant ident) is the
/// ordering argument of a `.store(…)` call: walk back to the enclosing call
/// opener and check it is preceded by `.store`.
fn in_store_call(toks: &[Token], i: usize) -> bool {
    if i < 4 {
        return false;
    }
    let mut depth = 0i32;
    let mut j = i - 4; // skip the `Ordering` `:` `:` prefix
    loop {
        let t = &toks[j];
        if t.is_punct(')') || t.is_punct(']') {
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') {
            if depth == 0 {
                return j >= 2 && toks[j - 1].is_ident("store") && toks[j - 2].is_punct('.');
            }
            depth -= 1;
        } else if depth == 0 && (t.is_punct(';') || t.is_punct('{')) {
            return false;
        }
        if j == 0 {
            return false;
        }
        j -= 1;
    }
}

/// Rule 8 — `atomics-order`.
///
/// Every `Ordering::*` site must sit under a reasoned `// ordering:`
/// comment — on the same line, the line directly above, or earlier in the
/// same function body (one rationale covers the whole operation, including
/// a `compare_exchange` pair). Additionally, a `Relaxed` *store* is flagged
/// unconditionally: the admission-shed-latch pattern (a flag atomic gating
/// non-atomic shard data) needs `Release`, so a Relaxed store survives only
/// behind an explicit `// echolint: allow(atomics-order) -- …` rationale.
fn atomics_order(file: &str, lexed: &Lexed, scan: &Scan, diags: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if scan.is_test(i) {
            continue;
        }
        let t = &toks[i];
        let is_variant = t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "Relaxed" | "Acquire" | "Release" | "AcqRel" | "SeqCst")
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("Ordering");
        if !is_variant {
            continue;
        }
        let line = t.line;
        let body_start = enclosing_body_start(scan, toks, i);
        let covered = lexed.comments.iter().any(|c| {
            let body = c.text.trim_start_matches('/').trim_start_matches('!').trim();
            body.len() >= 9
                && body.as_bytes()[..9].eq_ignore_ascii_case(b"ordering:")
                && (c.line == line
                    || c.line + 1 == line
                    || body_start.is_some_and(|s| c.line >= s && c.line <= line))
        });
        if !covered {
            push(
                diags,
                file,
                line,
                Rule::AtomicsOrder,
                format!(
                    "Ordering::{} without a reasoned `// ordering:` comment in scope",
                    t.text
                ),
            );
        }
        if t.text == "Relaxed" && in_store_call(toks, i) {
            push(
                diags,
                file,
                line,
                Rule::AtomicsOrder,
                "Relaxed store — a flag that gates non-atomic data needs Release; allow-mark with rationale if nothing is published".to_string(),
            );
        }
    }
}

/// Rule 5 — `pub-doc`.
fn pub_doc(file: &str, scan: &Scan, diags: &mut Vec<Diagnostic>) {
    for u in &scan.undoc_pubs {
        push(
            diags,
            file,
            u.line,
            Rule::PubDoc,
            format!("public {} `{}` has no doc comment", u.kind, u.name),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scanner::scan;

    fn pipeline_scope() -> FileScope {
        FileScope {
            crate_name: "dsp".into(),
            pipeline: true,
            test_file: false,
            allow_time: false,
            simd_kernels: false,
        }
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        let l = lex(src);
        let s = scan(&l);
        check("mem.rs", &l, &s, &pipeline_scope())
    }

    #[test]
    fn unwrap_fires_and_allow_suppresses() {
        let d = run("fn f() { x.unwrap(); }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::NoPanicPath);
        let d = run(
            "fn f() {\n// echolint: allow(no-panic-path) -- length checked above\nx.unwrap();\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_without_reason_is_a_marker_diag() {
        let d = run("fn f() {\n// echolint: allow(no-panic-path)\nx.unwrap();\n}");
        assert!(d.iter().any(|d| d.rule == Rule::Marker));
        assert!(d.iter().any(|d| d.rule == Rule::NoPanicPath), "unreasoned marker must not suppress");
    }

    #[test]
    fn literal_index_fires_variable_index_does_not() {
        let d = run("fn f(v: &[u8]) { let a = v[0]; let b = v[i]; let c = v[1..3]; }");
        assert_eq!(d.iter().filter(|d| d.rule == Rule::NoPanicPath).count(), 2);
    }

    #[test]
    fn hot_kernel_alloc_fires_only_in_hot_fns() {
        let d = run("fn magnitude_into(o: &mut [f64]) { let v = Vec::new(); }\nfn cold() { let v = Vec::new(); }");
        assert_eq!(d.iter().filter(|d| d.rule == Rule::NoAllocHot).count(), 1);
    }

    #[test]
    fn partial_cmp_and_f64_max_fire() {
        let d = run("fn f(a: f64, b: f64) { a.partial_cmp(&b); f64::max(a, b); }");
        assert_eq!(d.iter().filter(|d| d.rule == Rule::FloatOrder).count(), 2);
    }

    #[test]
    fn total_cmp_is_clean() {
        let d = run("fn f(xs: &mut [f64]) { xs.sort_by(|a, b| a.total_cmp(b)); }");
        assert!(d.iter().all(|d| d.rule != Rule::FloatOrder));
    }

    #[test]
    fn hashmap_and_time_fire() {
        let d = run("use std::collections::HashMap;\nfn f() { let t = std::time::Instant::now(); }");
        assert_eq!(d.iter().filter(|d| d.rule == Rule::Determinism).count(), 2);
    }

    #[test]
    fn time_allowed_in_profile_scope() {
        let l = lex("fn f() { let t = std::time::Instant::now(); }");
        let s = scan(&l);
        let scope = FileScope {
            crate_name: "profile".into(),
            pipeline: true,
            test_file: false,
            allow_time: true,
            simd_kernels: false,
        };
        let d = check("mem.rs", &l, &s, &scope);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let d = run("#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); let m: HashMap<u8, u8>; }\n}");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn simd_surface_fires_outside_kernels() {
        let d = run("use std::arch::x86_64::_mm256_add_pd;\nfn f() { unsafe { _mm256_add_pd(a, b) }; }");
        assert!(d.iter().filter(|d| d.rule == Rule::SimdBoundary).count() >= 2, "{d:?}");
        let d = run("fn f() -> bool { is_x86_feature_detected!(\"avx2\") }");
        assert_eq!(d.iter().filter(|d| d.rule == Rule::SimdBoundary).count(), 1);
        let d = run("#[target_feature(enable = \"avx2\")]\nunsafe fn g() {}");
        assert_eq!(d.iter().filter(|d| d.rule == Rule::SimdBoundary).count(), 1);
    }

    #[test]
    fn simd_surface_is_sanctioned_inside_kernels_scope() {
        let src = "use core::arch::x86_64::_mm256_add_pd;\n#[target_feature(enable = \"avx2\")]\nunsafe fn g() { is_x86_feature_detected!(\"avx2\"); }";
        let l = lex(src);
        let s = scan(&l);
        let scope = FileScope { simd_kernels: true, ..pipeline_scope() };
        let d = check("mem.rs", &l, &s, &scope);
        assert!(d.iter().all(|d| d.rule != Rule::SimdBoundary), "{d:?}");
    }

    #[test]
    fn simd_boundary_suppressed_by_reasoned_allow() {
        let d = run(
            "fn f() -> bool {\n// echolint: allow(simd-boundary) -- probing for a diagnostics banner only\nis_x86_feature_detected!(\"avx2\")\n}",
        );
        assert!(d.iter().all(|d| d.rule != Rule::SimdBoundary), "{d:?}");
    }

    #[test]
    fn non_pipeline_scope_only_checks_hot_fns() {
        let l = lex("fn f() { x.unwrap(); }\nfn fill_into(o: &mut [f64]) { o.to_vec(); }");
        let s = scan(&l);
        let scope = FileScope::default();
        let d = check("mem.rs", &l, &s, &scope);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::NoAllocHot);
    }
}
