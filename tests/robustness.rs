//! Failure-injection and robustness integration tests: bursty noise,
//! walking interferers, truncation, and degraded devices.

use echowrite::EchoWrite;
use echowrite_gesture::{Stroke, Trajectory, Vec3, Writer, WriterParams};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use std::sync::OnceLock;

fn engine() -> &'static EchoWrite {
    static E: OnceLock<EchoWrite> = OnceLock::new();
    E.get_or_init(EchoWrite::new)
}

fn accuracy_in(env: EnvironmentProfile, reps: u64) -> f64 {
    let e = engine();
    let mut ok = 0usize;
    let mut total = 0usize;
    for stroke in Stroke::ALL {
        for rep in 0..reps {
            let seed = rep * 131 + stroke.index() as u64 * 17;
            let perf = Writer::new(WriterParams::nominal(), seed).write_stroke(stroke);
            let audio = Scene::new(DeviceProfile::mate9(), env.clone(), seed)
                .render(&perf.trajectory);
            let rec = e.recognize_strokes(&audio);
            let best = rec
                .classifications
                .iter()
                .zip(&rec.segments)
                .max_by_key(|(_, s)| s.len())
                .map(|(c, _)| c.stroke);
            total += 1;
            if best == Some(stroke) {
                ok += 1;
            }
        }
    }
    ok as f64 / total as f64
}

#[test]
fn environment_accuracy_ordering_matches_paper() {
    // Paper Fig. 12: meeting room and lab in the mid-90s, resting zone
    // slightly worse.
    let meeting = accuracy_in(EnvironmentProfile::meeting_room(), 5);
    let resting = accuracy_in(EnvironmentProfile::resting_zone(), 5);
    assert!(meeting > 0.85, "meeting room {meeting}");
    assert!(resting > 0.70, "resting zone {resting}");
    assert!(
        meeting >= resting - 0.03,
        "resting zone should not beat quiet rooms: {meeting} vs {resting}"
    );
}

#[test]
fn wideband_bursts_degrade_but_do_not_destroy() {
    // A hostile variant of the resting zone with frequent rubbing bursts —
    // the paper's Sec. VII-B known weakness.
    let mut hostile = EnvironmentProfile::resting_zone();
    hostile.rubbing_rate = 1.0;
    let acc = accuracy_in(hostile, 4);
    assert!(acc > 0.4, "hostile-burst accuracy collapsed to {acc}");
    assert!(acc < 1.0, "bursts should cost something");
}

#[test]
fn truncated_audio_fails_softly() {
    let e = engine();
    let perf = Writer::new(WriterParams::nominal(), 21).write_stroke(Stroke::S3);
    let audio = Scene::new(
        DeviceProfile::mate9(),
        EnvironmentProfile::meeting_room(),
        21,
    )
    .render(&perf.trajectory);
    // Cut the trace in the middle of the stroke.
    let cut = audio.len() / 2;
    let rec = e.recognize_strokes(&audio[..cut]);
    // No panic; either nothing or a single (possibly wrong) stroke.
    assert!(rec.strokes().len() <= 1);
    // Shorter than one frame: empty result.
    let rec2 = e.recognize_strokes(&audio[..1000]);
    assert!(rec2.strokes().is_empty());
}

#[test]
fn interfering_hand_wave_between_strokes_is_ignored() {
    // Write S2, then wave the hand slowly (low acceleration), then S6.
    // The paper's acceleration gate must reject the wave.
    let e = engine();
    let params = WriterParams::nominal();
    let mut writer = Writer::new(params, 33);
    let p1 = writer.write_stroke(Stroke::S2);
    let p2 = writer.write_stroke(Stroke::S6);

    let dt = p1.trajectory.dt();
    let mut traj = Trajectory::new(dt);
    for &p in p1.trajectory.points() {
        traj.push(p);
    }
    // Slow wave: 2 s sinusoid, ±4 cm, ~0.5 Hz — gentle motion.
    let last = *p1.trajectory.points().last().unwrap();
    let n = (2.0 / dt) as usize;
    for i in 0..n {
        let t = i as f64 * dt;
        let dx = 0.04 * (std::f64::consts::TAU * 0.5 * t).sin();
        traj.push(last + Vec3::new(dx, 0.0, 0.0));
    }
    for &p in p2.trajectory.points() {
        traj.push(p);
    }

    let audio = Scene::new(
        DeviceProfile::mate9(),
        EnvironmentProfile::meeting_room(),
        33,
    )
    .render(&traj);
    let rec = e.recognize_strokes(&audio);
    // The claim under test is segmentation: exactly the two deliberate
    // strokes are detected, with the 2-second wave between them ignored
    // (individual classifications may still vary with the jitter draw).
    assert_eq!(
        rec.segments.len(),
        2,
        "hand wave corrupted segmentation: {:?}",
        rec.segments
    );
    let hop = e.config().stft.hop_seconds();
    let wave_start = p1.trajectory.duration();
    let wave_end = wave_start + 2.0;
    for seg in &rec.segments {
        let mid = seg.mid() as f64 * hop;
        assert!(
            mid < wave_start || mid > wave_end,
            "segment centred inside the wave: {seg:?}"
        );
    }
    assert_eq!(rec.strokes()[0], Stroke::S2);
}

#[test]
fn degraded_microphone_still_works() {
    let e = engine();
    let mut bad_mic = DeviceProfile::mate9();
    bad_mic.mic_noise_sigma *= 3.0;
    bad_mic.echo_gain *= 0.7;
    let perf = Writer::new(WriterParams::nominal(), 8).write_stroke(Stroke::S2);
    let audio = Scene::new(bad_mic, EnvironmentProfile::meeting_room(), 8)
        .render(&perf.trajectory);
    let rec = e.recognize_strokes(&audio);
    assert_eq!(rec.strokes(), vec![Stroke::S2]);
}

#[test]
fn small_amplitude_writing_still_detected() {
    // A timid writer using 6 cm strokes instead of 10 cm.
    let e = engine();
    let mut params = WriterParams::nominal();
    params.amplitude = 0.06;
    let perf = Writer::new(params, 19).write_stroke(Stroke::S3);
    let audio = Scene::new(
        DeviceProfile::mate9(),
        EnvironmentProfile::meeting_room(),
        19,
    )
    .render(&perf.trajectory);
    let rec = e.recognize_strokes(&audio);
    assert_eq!(rec.strokes().len(), 1, "timid stroke lost");
}

#[test]
fn far_writer_loses_signal_gracefully() {
    // Writing 60 cm away: echoes fall off with 1/r² and recognition may
    // fail, but nothing should panic and no spurious flood should appear.
    let e = engine();
    let mut params = WriterParams::nominal();
    params.centre = Vec3::new(0.05, 0.1, 0.6);
    let perf = Writer::new(params, 29).write_stroke(Stroke::S2);
    let audio = Scene::new(
        DeviceProfile::mate9(),
        EnvironmentProfile::meeting_room(),
        29,
    )
    .render(&perf.trajectory);
    let rec = e.recognize_strokes(&audio);
    assert!(rec.strokes().len() <= 2);
}
