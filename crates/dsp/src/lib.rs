//! Digital signal processing primitives for the EchoWrite reproduction.
//!
//! This crate provides everything the EchoWrite pipeline needs from a DSP
//! toolbox, implemented from scratch so the workspace has no numeric
//! dependencies:
//!
//! - [`Complex`] arithmetic and an iterative radix-2 [`Fft`] planner,
//! - [`window`] functions (Hann, Hamming, Blackman, rectangular),
//! - a short-time Fourier transform ([`stft::Stft`]) with the paper's
//!   8192-sample frames and 1024-sample hop,
//! - one-dimensional [`filters`] (median, Gaussian, simple moving average)
//!   and the Holoborodko noise-robust differentiator used by the paper's
//!   acceleration-based stroke segmentation (Eq. 2),
//! - small numeric [`util`] helpers (dB conversion, normalization, argmax),
//! - runtime-dispatched SIMD [`kernels`] (AVX2/SSE2/NEON with a scalar
//!   fallback) behind safe wrappers, each pinned to its scalar reference.
//!
//! # Example
//!
//! ```
//! use echowrite_dsp::{Fft, Complex};
//!
//! let fft = Fft::new(8);
//! let mut buf: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64, 0.0)).collect();
//! fft.forward(&mut buf);
//! fft.inverse(&mut buf);
//! assert!((buf[3].re - 3.0).abs() < 1e-9);
//! ```

pub mod complex;
pub mod downconvert;
pub mod fft;
pub mod filters;
pub mod kernels;
pub mod realfft;
pub mod stft;
pub mod util;
pub mod wav;
pub mod window;

pub use complex::Complex;
pub use fft::Fft;
pub use realfft::{RealFft, RealFftScratch};
pub use stft::{Stft, StftConfig};
pub use window::WindowKind;
