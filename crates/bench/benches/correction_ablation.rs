//! Fig. 15 — the stroke-correction ablation.
//!
//! Benchmarks Algorithm-2 decoding with the paper's correction rules, with
//! confusion-derived rules, and with correction disabled, over stroke
//! sequences containing one injected substitution error. The cost of
//! correction is the extra dictionary probes per corrected variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use echowrite_bench::engine;
use echowrite_corpus::Lexicon;
use echowrite_gesture::{InputScheme, Stroke};
use echowrite_lang::{CorrectionRules, Dictionary, WordDecoder};
use std::hint::black_box;

fn bench_rules(c: &mut Criterion) {
    let scheme = InputScheme::paper();
    let dict = Dictionary::build(Lexicon::embedded(), &scheme);

    // "because" with its third stroke (C = S5) misread as S6 — one of the
    // paper's covered confusion modes (observed S6 may really be S5).
    let mut observed = scheme.encode_word("because").unwrap();
    assert_eq!(observed[2], Stroke::S5);
    observed[2] = Stroke::S6;

    let variants: Vec<(&str, WordDecoder)> = vec![
        ("none", WordDecoder::new(dict.clone()).with_rules(CorrectionRules::none())),
        ("paper", WordDecoder::new(dict).with_rules(CorrectionRules::paper())),
    ];

    let mut g = c.benchmark_group("fig15_correction_ablation");
    for (name, decoder) in &variants {
        g.bench_with_input(BenchmarkId::new("decode_with_rules", name), &observed, |b, o| {
            b.iter(|| decoder.decode(black_box(o)))
        });
    }
    g.finish();

    // Sanity: correction recovers the word, no-correction cannot.
    let with = variants[1].1.decode(&observed);
    assert!(with.iter().any(|c| c.word == "because"));
    let without = variants[0].1.decode(&observed);
    assert!(!without.iter().any(|c| c.word == "because"));
}

fn bench_correction_expansion(c: &mut Criterion) {
    let e = engine();
    let rules = CorrectionRules::paper();
    let seq = e.scheme().encode_word("question").unwrap();
    c.bench_function("fig15_variant_expansion", |b| {
        b.iter(|| rules.corrected_sequences(black_box(&seq)))
    });
}

criterion_group!(benches, bench_rules, bench_correction_expansion);
criterion_main!(benches);
