//! Exports a simulated microphone trace as a playable WAV file, then reads
//! it back and recognizes it — the round trip a real deployment would take.
//!
//! ```sh
//! cargo run --release --example export_wav -- morning /tmp/morning.wav
//! ```

use echowrite::EchoWrite;
use echowrite_dsp::wav;
use echowrite_gesture::{Writer, WriterParams};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};

fn main() {
    let word = std::env::args().nth(1).unwrap_or_else(|| "morning".to_string());
    let path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| std::env::temp_dir().join("echowrite.wav").display().to_string());

    let engine = EchoWrite::new();
    let strokes = engine.scheme().encode_word(&word).unwrap_or_else(|e| {
        eprintln!("cannot encode {word:?}: {e}");
        std::process::exit(1);
    });
    let perf = Writer::new(WriterParams::nominal(), 77).write_sequence(&strokes);
    let mic = Scene::new(DeviceProfile::mate9(), EnvironmentProfile::lab_area(), 77)
        .render(&perf.trajectory);

    wav::write_wav_file(&path, &mic, 44_100).expect("write wav");
    println!("wrote {:.1} s of audio to {path}", mic.len() as f64 / 44_100.0);
    println!("(the 20 kHz probe tone is inaudible to most adults — that's the point)");

    let audio = wav::read_wav_file(&path).expect("read wav back");
    assert_eq!(audio.sample_rate, 44_100);
    let rec = engine.recognize_word(&audio.samples);
    println!(
        "recognized from file: [{}] → {:?}",
        echowrite_gesture::stroke::format_sequence(&rec.strokes.strokes()),
        rec.candidates.iter().map(|c| c.word.as_str()).collect::<Vec<_>>()
    );
}
