//! `echowrite-wire` — a dependency-free TCP front-end over the
//! [`echowrite_serve::SessionManager`] (DESIGN.md §6.9).
//!
//! Three modules:
//!
//! - [`frame`] — the length-prefixed binary grammar: `Open`/`Push`/
//!   `Finish` requests; `Enqueued`/`QueueFull`/`Shedding` verdicts and
//!   `Segment`/`Finished`/`Reaped` events as responses, with audio and
//!   DTW scores carried as raw IEEE-754 bits so wire transcripts are
//!   bitwise identical to in-process [`echowrite_serve::SessionManager::submit`]
//!   transcripts.
//! - [`server`] — [`server::WireServer`]: accept/reader/writer/router
//!   threads over only `std::net` + `std::thread`, propagating every
//!   [`echowrite_serve::SubmitVerdict`] back to the socket in request
//!   order and shedding backpressure through bounded per-connection
//!   write queues.
//! - [`client`] — [`client::WireClient`]: the blocking client used by
//!   tests, the loopback demo, and the `wire_fleet` bench harness.
//!
//! The crate is part of the echolint pipeline scope: no panic paths, no
//! wall-clock reads outside the quarantined `Stopwatch`, deterministic
//! collections only.

pub mod client;
pub mod frame;
pub mod server;

pub use client::{ClientError, WireClient};
pub use frame::{
    encode_request, encode_response, FrameDecoder, FrameError, Request, Response, MAX_FRAME_LEN,
};
pub use server::WireServer;
