//! The frequency-ranked word list.

use crate::error::CorpusError;
use crate::lexicon_data::WORDS;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// One dictionary word with its frequency statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct WordEntry {
    /// The word, lowercase ASCII letters only.
    pub word: String,
    /// Zero-based frequency rank (0 = most frequent).
    pub rank: usize,
    /// Occurrences per million words (Zipf-law synthetic for the embedded
    /// list; real counts if loaded from a corpus export).
    pub frequency: f64,
}

/// A frequency-ranked lexicon.
///
/// # Example
///
/// ```
/// use echowrite_corpus::Lexicon;
/// let lex = Lexicon::embedded();
/// assert!(lex.contains("the"));
/// assert!(lex.frequency("the").unwrap() > lex.frequency("water").unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct Lexicon {
    entries: Vec<WordEntry>,
    // Ordered map: iteration and lookup stay deterministic (echolint's
    // determinism rule bans hash-ordered containers in the pipeline).
    index: BTreeMap<String, usize>,
}

impl Lexicon {
    /// The embedded ~1,000-word lexicon (singleton).
    ///
    /// Frequencies follow a Zipf law over the rank, `f(r) ∝ 1/(r+2)^1.07`,
    /// scaled so the most frequent word has ~50,000 occurrences per million
    /// — close to English "the".
    pub fn embedded() -> &'static Lexicon {
        static INSTANCE: OnceLock<Lexicon> = OnceLock::new();
        INSTANCE.get_or_init(|| {
            Lexicon::from_ranked_words(WORDS.iter().map(|w| w.to_string()))
                // echolint: allow(no-panic-path) -- compile-time WORDS list; validated by the embedded_lexicon_is_large_and_clean test
                .expect("embedded word list is valid")
        })
    }

    /// Builds a lexicon from words already in descending frequency order,
    /// assigning Zipf-law frequencies.
    ///
    /// # Errors
    ///
    /// Returns a [`CorpusError`] naming the offending word if any word is
    /// empty, contains non-ASCII-alphabetic characters, or repeats.
    pub fn from_ranked_words<I>(words: I) -> Result<Self, CorpusError>
    where
        I: IntoIterator<Item = String>,
    {
        let mut entries = Vec::new();
        let mut index = BTreeMap::new();
        for (rank, raw) in words.into_iter().enumerate() {
            let word = raw.to_ascii_lowercase();
            if word.is_empty() || !word.bytes().all(|b| b.is_ascii_lowercase()) {
                return Err(CorpusError::InvalidWord { word: raw, rank });
            }
            if index.contains_key(&word) {
                return Err(CorpusError::DuplicateWord { word, rank });
            }
            let frequency = 152_000.0 / ((rank as f64 + 2.0).powf(1.07));
            index.insert(word.clone(), rank);
            entries.push(WordEntry { word, rank, frequency });
        }
        if entries.is_empty() {
            return Err(CorpusError::Empty);
        }
        Ok(Lexicon { entries, index })
    }

    /// Builds a lexicon from explicit `(word, frequency)` pairs — the entry
    /// point for loading a real COCA export. Pairs are sorted by descending
    /// frequency.
    ///
    /// # Errors
    ///
    /// Same validation as [`Lexicon::from_ranked_words`], plus non-finite or
    /// non-positive frequencies.
    pub fn from_frequencies<I>(pairs: I) -> Result<Self, CorpusError>
    where
        I: IntoIterator<Item = (String, f64)>,
    {
        let mut pairs: Vec<(String, f64)> = pairs.into_iter().collect();
        for (w, f) in &pairs {
            if !f.is_finite() || *f <= 0.0 {
                return Err(CorpusError::InvalidFrequency { word: w.clone(), value: *f });
            }
        }
        pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut entries = Vec::new();
        let mut index = BTreeMap::new();
        for (rank, (raw, frequency)) in pairs.into_iter().enumerate() {
            let word = raw.to_ascii_lowercase();
            if word.is_empty() || !word.bytes().all(|b| b.is_ascii_lowercase()) {
                return Err(CorpusError::InvalidWord { word: raw, rank });
            }
            if index.contains_key(&word) {
                return Err(CorpusError::DuplicateWord { word, rank });
            }
            index.insert(word.clone(), rank);
            entries.push(WordEntry { word, rank, frequency });
        }
        if entries.is_empty() {
            return Err(CorpusError::Empty);
        }
        Ok(Lexicon { entries, index })
    }

    /// Loads a lexicon from tab-separated `word<TAB>frequency` text — the
    /// on-disk form of a COCA-style export. Blank lines and `#` comments
    /// are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Parse`] with the 1-based line number for any
    /// structurally malformed line (missing tab, unparseable number), and
    /// the [`Lexicon::from_frequencies`] validations for bad content. Never
    /// panics, whatever bytes are fed in.
    pub fn from_tsv(text: &str) -> Result<Self, CorpusError> {
        let mut pairs = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (word, freq) = line
                .split_once('\t')
                .ok_or(CorpusError::Parse { line: i + 1, what: "expected word<TAB>frequency" })?;
            let freq: f64 = freq
                .trim()
                .parse()
                .map_err(|_| CorpusError::Parse { line: i + 1, what: "frequency is not a number" })?;
            pairs.push((word.trim().to_string(), freq));
        }
        Lexicon::from_frequencies(pairs)
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the lexicon is empty (never true for a constructed lexicon).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `word` is present (case-insensitive).
    pub fn contains(&self, word: &str) -> bool {
        self.index.contains_key(&word.to_ascii_lowercase())
    }

    /// The entry for `word`, if present.
    pub fn entry(&self, word: &str) -> Option<&WordEntry> {
        self.index
            .get(&word.to_ascii_lowercase())
            .map(|&i| &self.entries[i])
    }

    /// Frequency (per million) of `word`, if present.
    pub fn frequency(&self, word: &str) -> Option<f64> {
        self.entry(word).map(|e| e.frequency)
    }

    /// The `n` most frequent words.
    pub fn top(&self, n: usize) -> &[WordEntry] {
        &self.entries[..n.min(self.entries.len())]
    }

    /// Iterates entries in descending frequency order.
    pub fn iter(&self) -> impl Iterator<Item = &WordEntry> {
        self.entries.iter()
    }

    /// Mean word length in letters.
    pub fn mean_word_length(&self) -> f64 {
        self.entries.iter().map(|e| e.word.len()).sum::<usize>() as f64
            / self.entries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_lexicon_is_large_and_clean() {
        let lex = Lexicon::embedded();
        assert!(lex.len() >= 1000, "only {} words", lex.len());
        for e in lex.iter() {
            assert!(e.word.bytes().all(|b| b.is_ascii_lowercase()));
            assert!(e.frequency > 0.0);
        }
    }

    #[test]
    fn frequencies_decrease_with_rank() {
        let lex = Lexicon::embedded();
        let mut prev = f64::INFINITY;
        for e in lex.iter() {
            assert!(e.frequency <= prev);
            prev = e.frequency;
        }
    }

    #[test]
    fn common_words_present_and_ranked_sensibly() {
        let lex = Lexicon::embedded();
        for w in ["the", "be", "and", "have", "water", "people", "question"] {
            assert!(lex.contains(w), "{w} missing");
        }
        assert!(lex.entry("the").unwrap().rank < lex.entry("water").unwrap().rank);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let lex = Lexicon::embedded();
        assert!(lex.contains("The"));
        assert_eq!(lex.frequency("THE"), lex.frequency("the"));
    }

    #[test]
    fn top_returns_prefix() {
        let lex = Lexicon::embedded();
        let top = lex.top(5);
        assert_eq!(top.len(), 5);
        assert_eq!(top[0].word, "the");
        assert_eq!(lex.top(1_000_000).len(), lex.len());
    }

    #[test]
    fn from_ranked_words_validates() {
        assert!(Lexicon::from_ranked_words(vec!["ok".into(), "it's".into()]).is_err());
        assert!(Lexicon::from_ranked_words(vec!["a".into(), "a".into()]).is_err());
        assert!(Lexicon::from_ranked_words(Vec::<String>::new()).is_err());
        let lex = Lexicon::from_ranked_words(vec!["Cat".into(), "dog".into()]).unwrap();
        assert!(lex.contains("cat"));
        assert_eq!(lex.entry("cat").unwrap().rank, 0);
    }

    #[test]
    fn from_frequencies_sorts_and_validates() {
        let lex = Lexicon::from_frequencies(vec![
            ("low".to_string(), 1.0),
            ("high".to_string(), 100.0),
        ])
        .unwrap();
        assert_eq!(lex.entry("high").unwrap().rank, 0);
        assert_eq!(lex.entry("low").unwrap().rank, 1);
        assert!(Lexicon::from_frequencies(vec![("x".to_string(), -1.0)]).is_err());
        assert!(Lexicon::from_frequencies(vec![("x".to_string(), f64::NAN)]).is_err());
    }

    #[test]
    fn from_tsv_parses_and_ranks() {
        let lex = Lexicon::from_tsv("# comment\nthe\t50000\n\nwater\t120.5\n").unwrap();
        assert_eq!(lex.len(), 2);
        assert_eq!(lex.entry("the").unwrap().rank, 0);
        assert!((lex.frequency("water").unwrap() - 120.5).abs() < 1e-12);
    }

    #[test]
    fn from_tsv_rejects_malformed_lines_with_line_numbers() {
        assert_eq!(
            Lexicon::from_tsv("the 50000\n").unwrap_err(),
            CorpusError::Parse { line: 1, what: "expected word<TAB>frequency" }
        );
        assert_eq!(
            Lexicon::from_tsv("the\t50000\nwater\tlots\n").unwrap_err(),
            CorpusError::Parse { line: 2, what: "frequency is not a number" }
        );
        assert_eq!(Lexicon::from_tsv("").unwrap_err(), CorpusError::Empty);
        assert!(matches!(
            Lexicon::from_tsv("the\tNaN\n"),
            Err(CorpusError::InvalidFrequency { .. })
        ));
    }

    #[test]
    fn from_tsv_survives_garbage_bytes() {
        // Truncated/binary-ish garbage must error typed, never panic.
        for garbage in [
            "\u{0}\u{1}\u{2}\tx",
            "word\t",
            "\t42",
            "a\t1e999\n",
            "π\t3.14\n",
            "ok\t5\nok\t5\n",
        ] {
            assert!(Lexicon::from_tsv(garbage).is_err(), "accepted {garbage:?}");
        }
    }

    #[test]
    fn typed_errors_name_the_offender() {
        let e = Lexicon::from_ranked_words(vec!["ok".into(), "it's".into()]).unwrap_err();
        assert_eq!(e, CorpusError::InvalidWord { word: "it's".into(), rank: 1 });
        let e = Lexicon::from_ranked_words(vec!["a".into(), "A".into()]).unwrap_err();
        assert_eq!(e, CorpusError::DuplicateWord { word: "a".into(), rank: 1 });
        assert!(e.to_string().contains("duplicate word"));
    }

    #[test]
    fn mean_word_length_plausible() {
        let m = Lexicon::embedded().mean_word_length();
        assert!(m > 3.5 && m < 7.5, "mean length {m}");
    }
}
