//! The event vocabulary: pipeline stages, event kinds, and the fixed-size
//! payload every emission carries.
//!
//! [`TraceEvent`] is `Copy` and allocation-free by construction — names are
//! `&'static str` and provenance strings ride in an inline [`SmallStr`] —
//! so emitting from the per-chunk hot path never touches the heap.

use core::fmt;

/// Sentinel meaning "this event carries no logical timestamp of its own".
/// Sites without a session clock (e.g. the DTW classifier, which sees one
/// stroke at a time) emit this; the recording sink stamps such events with
/// the last tick observed on the stream.
pub const TICK_UNSET: u64 = u64::MAX;

/// The pipeline stage an event belongs to. Each stage becomes one lane
/// (`tid`) in the Chrome `trace_event` export and one row in the summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Short-time Fourier transform over raw audio.
    Stft,
    /// Complex down-conversion and decimation front-end.
    Downconvert,
    /// Spectrogram enhancement (background subtraction, scaling).
    Enhance,
    /// Doppler profile building (MVCE + smoothing).
    Profile,
    /// Acceleration-based gesture segmentation.
    Segment,
    /// DTW stroke classification.
    Dtw,
    /// Bayesian word decoding.
    Lang,
    /// Core streaming push path (audio chunk in, segment events out).
    Stream,
    /// Serving layer: shard workers, queues, admission control.
    Serve,
    /// Wire front-end: socket accept/read/write and frame decode.
    Wire,
    /// Session snapshot codec: suspend/resume encode, decode, and store IO.
    Snapshot,
}

impl Stage {
    /// Every stage, in pipeline order (the lane order of the export).
    pub const ALL: [Stage; 11] = [
        Stage::Stft,
        Stage::Downconvert,
        Stage::Enhance,
        Stage::Profile,
        Stage::Segment,
        Stage::Dtw,
        Stage::Lang,
        Stage::Stream,
        Stage::Serve,
        Stage::Wire,
        Stage::Snapshot,
    ];

    /// Stable lower-case name used in exports and summaries.
    pub const fn as_str(self) -> &'static str {
        match self {
            Stage::Stft => "stft",
            Stage::Downconvert => "downconvert",
            Stage::Enhance => "enhance",
            Stage::Profile => "profile",
            Stage::Segment => "segment",
            Stage::Dtw => "dtw",
            Stage::Lang => "lang",
            Stage::Stream => "stream",
            Stage::Serve => "serve",
            Stage::Wire => "wire",
            Stage::Snapshot => "snapshot",
        }
    }

    /// Dense index of the stage (the `tid` lane in the Chrome export).
    pub const fn index(self) -> usize {
        match self {
            Stage::Stft => 0,
            Stage::Downconvert => 1,
            Stage::Enhance => 2,
            Stage::Profile => 3,
            Stage::Segment => 4,
            Stage::Dtw => 5,
            Stage::Lang => 6,
            Stage::Stream => 7,
            Stage::Serve => 8,
            Stage::Wire => 9,
            Stage::Snapshot => 10,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What a [`TraceEvent`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A completed unit of work; its duration is the event's `wall_us`.
    Span,
    /// A point-in-time marker (stroke opened, background frozen, shed, …).
    Instant,
    /// A numeric sample carried in `value` (frames emitted, prune counts,
    /// queue depth, per-hypothesis posteriors, …).
    Counter,
}

/// A fixed-capacity inline string: up to [`SmallStr::CAPACITY`] bytes with
/// no heap allocation; longer content is truncated at a UTF-8 boundary.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SmallStr {
    len: u8,
    buf: [u8; Self::CAPACITY],
}

impl SmallStr {
    /// Maximum stored length in bytes.
    pub const CAPACITY: usize = 31;

    /// The empty string.
    pub const fn empty() -> Self {
        SmallStr { len: 0, buf: [0; Self::CAPACITY] }
    }

    /// Copies `s` in, truncating at a character boundary if it exceeds
    /// [`Self::CAPACITY`].
    pub fn new(s: &str) -> Self {
        let mut out = Self::empty();
        out.push_truncating(s);
        out
    }

    /// Formats any `Display` value into a `SmallStr` (truncating).
    pub fn from_display(v: impl fmt::Display) -> Self {
        let mut out = Self::empty();
        let _ = fmt::write(&mut out, format_args!("{v}"));
        out
    }

    /// The stored text.
    pub fn as_str(&self) -> &str {
        let len = usize::from(self.len);
        match self.buf.get(..len) {
            Some(bytes) => core::str::from_utf8(bytes).unwrap_or(""),
            None => "",
        }
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends as much of `s` as fits, respecting UTF-8 boundaries.
    fn push_truncating(&mut self, s: &str) {
        let start = usize::from(self.len);
        let room = Self::CAPACITY.saturating_sub(start);
        let mut take = s.len().min(room);
        while take > 0 && !s.is_char_boundary(take) {
            take -= 1;
        }
        if let (Some(dst), Some(src)) =
            (self.buf.get_mut(start..start + take), s.as_bytes().get(..take))
        {
            dst.copy_from_slice(src);
            self.len = (start + take) as u8;
        }
    }
}

impl fmt::Write for SmallStr {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.push_truncating(s);
        Ok(())
    }
}

impl Default for SmallStr {
    fn default() -> Self {
        Self::empty()
    }
}

impl fmt::Debug for SmallStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for SmallStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for SmallStr {
    fn from(s: &str) -> Self {
        SmallStr::new(s)
    }
}

/// One observation flowing to the installed sink.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Pipeline stage (export lane).
    pub stage: Stage,
    /// Static event name, e.g. `"push"` or `"lb_skip"`.
    pub name: &'static str,
    /// Span, instant, or counter.
    pub kind: EventKind,
    /// Logical timestamp in microseconds of *audio time* (samples pushed or
    /// frames emitted, converted by the caller), or [`TICK_UNSET`] when the
    /// emitting site has no session clock.
    pub tick_us: u64,
    /// Caller-measured wall-clock duration in µs for spans; zero when not
    /// measured. Producers obtain this from the quarantined
    /// `echowrite_profile::Stopwatch` — this crate never reads a clock.
    pub wall_us: u64,
    /// Counter value or span payload (frames in a chunk, posterior, …).
    pub value: f64,
    /// Short provenance string (decoded word, winning stroke, …).
    pub detail: SmallStr,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallstr_roundtrip_and_truncation() {
        assert_eq!(SmallStr::new("hello").as_str(), "hello");
        assert!(SmallStr::empty().is_empty());
        let long = "abcdefghijklmnopqrstuvwxyz0123456789";
        let s = SmallStr::new(long);
        assert_eq!(s.as_str().len(), SmallStr::CAPACITY);
        assert!(long.starts_with(s.as_str()));
        // Truncation lands on a char boundary, never mid-codepoint.
        let uni = "ééééééééééééééééééééé"; // 2 bytes each → 42 bytes
        let t = SmallStr::new(uni);
        assert_eq!(t.as_str().len(), 30); // 31 would split a codepoint
        assert!(t.as_str().chars().all(|c| c == 'é'));
    }

    #[test]
    fn smallstr_from_display() {
        assert_eq!(SmallStr::from_display(42u64).as_str(), "42");
        assert_eq!(SmallStr::from_display(format_args!("s{}", 7)).as_str(), "s7");
    }

    #[test]
    fn stage_names_and_indices_are_dense() {
        for (i, st) in Stage::ALL.iter().enumerate() {
            assert_eq!(st.index(), i);
            assert!(!st.as_str().is_empty());
        }
    }
}
