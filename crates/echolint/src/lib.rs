//! `echolint` — workspace-native static analysis for EchoWrite.
//!
//! A from-scratch lint pass (no external parser; this build environment is
//! offline) that walks the workspace sources with a small Rust lexer and
//! enforces the repo-specific invariants the production north star demands:
//!
//! | rule | enforces |
//! |------|----------|
//! | `no-panic-path` | no `unwrap`/`expect`/`panic!`/`unreachable!`/literal slice indexing in non-test pipeline code |
//! | `no-alloc-hot`  | `*_into` kernels and `// echolint: hot` functions never allocate (`Vec::new`, `vec!`, `clone`, `collect`, `push`, `Box::new`, …) |
//! | `float-order`   | no NaN-sensitive ordering (`partial_cmp`, `f64::max`) where `total_cmp` is required |
//! | `determinism`   | no `HashMap`/`HashSet` in result paths; no `std::time`/`thread::current()` outside `crates/profile` and benches |
//! | `pub-doc`       | `pub` items in pipeline library crates carry doc comments |
//!
//! Each rule is suppressible only via an auditable marker on the offending
//! line or the line above:
//!
//! ```text
//! // echolint: allow(no-panic-path) -- index bounded by the loop above
//! ```
//!
//! Markers without a `-- <reason>` tail are themselves diagnostics. Hot
//! kernels outside the `*_into` naming convention opt in with
//! `// echolint: hot` on the line before the `fn`.
//!
//! Run it locally with `cargo run -p echolint -- --workspace`; the tier-1
//! integration test `tests/lint.rs` keeps the live tree lint-clean.

pub mod engine;
pub mod lexer;
pub mod rules;
pub mod scanner;

pub use engine::{classify, lint_file, lint_source, lint_workspace, PIPELINE_CRATES};
pub use rules::{Diagnostic, FileScope, Rule};
