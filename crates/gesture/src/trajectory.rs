//! Finger-motion trajectory synthesis.
//!
//! Strokes are written in a vertical plane a few centimetres in front of the
//! device (paper Fig. 1 scenarios). Each stroke follows a geometric path
//! (line or circular arc) traversed with a **minimum-jerk** speed profile —
//! the standard model of human point-to-point hand motion — so velocity and
//! acceleration start and end at zero, exactly the "short-duration,
//! high-acceleration process" the paper's segmentation exploits.

use crate::geom::Vec3;
use crate::stroke::Stroke;

/// Minimum-jerk arc-length fraction at normalized time `tau` in `[0, 1]`:
/// `s(τ) = 10τ³ − 15τ⁴ + 6τ⁵`.
///
/// Clamps `tau` outside `[0, 1]`.
pub fn minimum_jerk(tau: f64) -> f64 {
    let t = tau.clamp(0.0, 1.0);
    t * t * t * (10.0 - 15.0 * t + 6.0 * t * t)
}

/// Derivative of the minimum-jerk profile, `s'(τ) = 30τ² − 60τ³ + 30τ⁴`.
///
/// Peaks at τ = 0.5 with value 1.875.
pub fn minimum_jerk_rate(tau: f64) -> f64 {
    let t = tau.clamp(0.0, 1.0);
    30.0 * t * t * (1.0 - t) * (1.0 - t)
}

/// The geometric path of one stroke, parameterised over `[0, 1]` within the
/// writing plane (coordinates relative to the writing centre; `x` lateral,
/// `y` vertical, `z` fixed at 0 relative to the plane).
#[derive(Debug, Clone, PartialEq)]
pub enum StrokePath {
    /// Straight segment from `start` to `end`.
    Line {
        /// Path start, relative to the writing centre.
        start: Vec3,
        /// Path end, relative to the writing centre.
        end: Vec3,
    },
    /// Circular arc around `center` with `radius`, from `start_angle` to
    /// `end_angle` (radians, positive = counter-clockwise in the x-y plane).
    Arc {
        /// Arc centre, relative to the writing centre.
        center: Vec3,
        /// Arc radius in metres.
        radius: f64,
        /// Starting angle in radians.
        start_angle: f64,
        /// Ending angle in radians (may be below `start_angle` for
        /// clockwise traversal).
        end_angle: f64,
    },
}

impl StrokePath {
    /// Point on the path at arc-length fraction `s ∈ [0, 1]`, relative to
    /// the writing centre.
    pub fn point(&self, s: f64) -> Vec3 {
        let s = s.clamp(0.0, 1.0);
        match *self {
            StrokePath::Line { start, end } => start.lerp(end, s),
            StrokePath::Arc {
                center,
                radius,
                start_angle,
                end_angle,
            } => {
                let a = start_angle + (end_angle - start_angle) * s;
                center + Vec3::new(radius * a.cos(), radius * a.sin(), 0.0)
            }
        }
    }

    /// Total path length in metres.
    pub fn length(&self) -> f64 {
        match *self {
            StrokePath::Line { start, end } => start.distance(end),
            StrokePath::Arc {
                radius,
                start_angle,
                end_angle,
                ..
            } => radius * (end_angle - start_angle).abs(),
        }
    }

    /// The canonical path for a stroke with the given amplitude (extent in
    /// metres), relative to the writing centre.
    ///
    /// Geometry convention (see [`Stroke`] docs): S1 `—` rightward, S2 `|`
    /// downward, S3 `↙`, S4 `↘`, S5 `C` counter-clockwise open-right arc,
    /// S6 `)` clockwise open-left arc. Both curves are drawn top-to-bottom
    /// like their letterforms.
    pub fn for_stroke(stroke: Stroke, amplitude: f64) -> StrokePath {
        let h = amplitude / 2.0;
        // Writers exaggerate bowls: curved strokes sweep a visibly larger
        // radius than half the letter box (their 240° sweep keeps the
        // overall height close to the box).
        let r = 0.6 * amplitude;
        match stroke {
            Stroke::S1 => StrokePath::Line {
                start: Vec3::new(-h, 0.0, 0.0),
                end: Vec3::new(h, 0.0, 0.0),
            },
            Stroke::S2 => StrokePath::Line {
                start: Vec3::new(0.0, h, 0.0),
                end: Vec3::new(0.0, -h, 0.0),
            },
            Stroke::S3 => StrokePath::Line {
                start: Vec3::new(h, h, 0.0),
                end: Vec3::new(-h, -h, 0.0),
            },
            Stroke::S4 => StrokePath::Line {
                start: Vec3::new(-h, h, 0.0),
                end: Vec3::new(h, -h, 0.0),
            },
            // 'C': start at the top opening, sweep counter-clockwise through
            // the leftmost point, end at the bottom opening.
            Stroke::S5 => StrokePath::Arc {
                center: Vec3::ZERO,
                radius: r,
                start_angle: std::f64::consts::FRAC_PI_3,
                end_angle: 2.0 * std::f64::consts::PI - std::f64::consts::FRAC_PI_3,
            },
            // ')': start at the upper-left (where the bowl leaves the stem
            // in B/D/P), sweep clockwise through the rightmost point, end
            // at the lower-left.
            Stroke::S6 => StrokePath::Arc {
                center: Vec3::ZERO,
                radius: r,
                start_angle: 2.0 * std::f64::consts::FRAC_PI_3,
                end_angle: -2.0 * std::f64::consts::FRAC_PI_3,
            },
        }
    }
}

/// A sampled 3-D finger trajectory at a fixed sample period.
///
/// Positions are absolute device-frame coordinates (device at the origin).
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    dt: f64,
    points: Vec<Vec3>,
}

impl Trajectory {
    /// Creates an empty trajectory with the given sample period in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive and finite.
    pub fn new(dt: f64) -> Self {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive, got {dt}");
        Trajectory { dt, points: Vec::new() }
    }

    /// Sample period in seconds.
    #[inline]
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The sampled positions.
    #[inline]
    pub fn points(&self) -> &[Vec3] {
        &self.points
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trajectory has no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total duration in seconds.
    pub fn duration(&self) -> f64 {
        self.points.len() as f64 * self.dt
    }

    /// Appends a single sample.
    #[inline]
    pub fn push(&mut self, pos: Vec3) {
        self.points.push(pos);
    }

    /// Appends a stationary hold at `pos` for `seconds`.
    pub fn hold(&mut self, pos: Vec3, seconds: f64) {
        let n = (seconds / self.dt).round() as usize;
        self.points.extend(std::iter::repeat_n(pos, n));
    }

    /// Appends a minimum-jerk traversal of `path` (offset by `origin`)
    /// taking `seconds`.
    pub fn traverse(&mut self, path: &StrokePath, origin: Vec3, seconds: f64) {
        self.traverse_mapped(path, seconds, |p| origin + p);
    }

    /// Appends a minimum-jerk traversal of `path` taking `seconds`, mapping
    /// each plane-local path point to world coordinates with `embed` (e.g.
    /// a tilted writing-plane basis).
    pub fn traverse_mapped(
        &mut self,
        path: &StrokePath,
        seconds: f64,
        embed: impl Fn(Vec3) -> Vec3,
    ) {
        let n = (seconds / self.dt).round().max(1.0) as usize;
        for i in 0..n {
            let tau = i as f64 / n as f64;
            self.points.push(embed(path.point(minimum_jerk(tau))));
        }
    }

    /// Appends a minimum-jerk straight move from the current position to
    /// `target` taking `seconds`. If the trajectory is empty the move starts
    /// at `target` (a hold).
    pub fn move_to(&mut self, target: Vec3, seconds: f64) {
        let Some(&start) = self.points.last() else {
            self.hold(target, seconds);
            return;
        };
        let path = StrokePath::Line { start: Vec3::ZERO, end: target - start };
        self.traverse(&path, start, seconds);
    }

    /// Finger velocity at sample `i` via central differences (m/s).
    pub fn velocity(&self, i: usize) -> Vec3 {
        let n = self.points.len();
        if n < 2 {
            return Vec3::ZERO;
        }
        let (a, b, span) = if i == 0 {
            (0, 1, 1.0)
        } else if i >= n - 1 {
            (n - 2, n - 1, 1.0)
        } else {
            (i - 1, i + 1, 2.0)
        };
        (self.points[b] - self.points[a]) * (1.0 / (span * self.dt))
    }

    /// Radial velocity `dr/dt` toward/away from an observer at `obs`
    /// (positive = receding), for every sample.
    pub fn radial_velocity(&self, obs: Vec3) -> Vec<f64> {
        (0..self.points.len())
            .map(|i| {
                let p = self.points[i] - obs;
                let r = p.norm();
                if r < 1e-9 {
                    0.0
                } else {
                    self.velocity(i).dot(p) / r
                }
            })
            .collect()
    }

    /// Distance from the observer at each sample (metres).
    pub fn ranges(&self, obs: Vec3) -> Vec<f64> {
        self.points.iter().map(|p| p.distance(obs)).collect()
    }

    /// Peak finger speed over the trajectory (m/s).
    pub fn peak_speed(&self) -> f64 {
        (0..self.points.len())
            .map(|i| self.velocity(i).norm())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn minimum_jerk_boundary_conditions() {
        assert!(minimum_jerk(0.0).abs() < EPS);
        assert!((minimum_jerk(1.0) - 1.0).abs() < EPS);
        assert!((minimum_jerk(0.5) - 0.5).abs() < EPS); // symmetric
        assert!(minimum_jerk_rate(0.0).abs() < EPS);
        assert!(minimum_jerk_rate(1.0).abs() < EPS);
        assert!((minimum_jerk_rate(0.5) - 1.875).abs() < EPS);
        // Clamping.
        assert_eq!(minimum_jerk(-1.0), 0.0);
        assert_eq!(minimum_jerk(2.0), 1.0);
    }

    #[test]
    fn minimum_jerk_is_monotone() {
        let mut prev = 0.0;
        for i in 1..=100 {
            let v = minimum_jerk(i as f64 / 100.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn line_path_endpoints_and_length() {
        let p = StrokePath::Line {
            start: Vec3::new(-0.05, 0.0, 0.0),
            end: Vec3::new(0.05, 0.0, 0.0),
        };
        assert_eq!(p.point(0.0), Vec3::new(-0.05, 0.0, 0.0));
        assert_eq!(p.point(1.0), Vec3::new(0.05, 0.0, 0.0));
        assert!((p.length() - 0.1).abs() < EPS);
    }

    #[test]
    fn arc_path_endpoints_and_length() {
        let p = StrokePath::Arc {
            center: Vec3::ZERO,
            radius: 0.05,
            start_angle: std::f64::consts::FRAC_PI_2,
            end_angle: -std::f64::consts::FRAC_PI_2,
        };
        let start = p.point(0.0);
        assert!((start.x).abs() < EPS && (start.y - 0.05).abs() < EPS);
        let end = p.point(1.0);
        assert!((end.y + 0.05).abs() < EPS);
        // Half circle: π r.
        assert!((p.length() - std::f64::consts::PI * 0.05).abs() < EPS);
        // Clockwise sweep passes through the rightmost point at s = 0.5.
        let mid = p.point(0.5);
        assert!(mid.x > 0.049);
    }

    #[test]
    fn stroke_paths_have_expected_directions() {
        let a = 0.1;
        // S1 moves purely in +x.
        let s1 = StrokePath::for_stroke(Stroke::S1, a);
        let d = s1.point(1.0) - s1.point(0.0);
        assert!(d.x > 0.0 && d.y.abs() < EPS);
        // S2 moves purely in −y.
        let s2 = StrokePath::for_stroke(Stroke::S2, a);
        let d = s2.point(1.0) - s2.point(0.0);
        assert!(d.y < 0.0 && d.x.abs() < EPS);
        // S3 moves −x −y; S4 moves +x −y.
        let d3 = StrokePath::for_stroke(Stroke::S3, a).point(1.0)
            - StrokePath::for_stroke(Stroke::S3, a).point(0.0);
        assert!(d3.x < 0.0 && d3.y < 0.0);
        let d4 = StrokePath::for_stroke(Stroke::S4, a).point(1.0)
            - StrokePath::for_stroke(Stroke::S4, a).point(0.0);
        assert!(d4.x > 0.0 && d4.y < 0.0);
    }

    #[test]
    fn curve_strokes_bulge_opposite_sides() {
        let a = 0.1;
        // S5 ('C') bulges left at mid-traversal, S6 (')') bulges right.
        let s5mid = StrokePath::for_stroke(Stroke::S5, a).point(0.5);
        assert!(s5mid.x < 0.0, "C midpoint {s5mid:?}");
        let s6mid = StrokePath::for_stroke(Stroke::S6, a).point(0.5);
        assert!(s6mid.x > 0.0, ") midpoint {s6mid:?}");
    }

    #[test]
    fn curves_are_longer_than_lines() {
        let a = 0.1;
        assert!(
            StrokePath::for_stroke(Stroke::S5, a).length()
                > StrokePath::for_stroke(Stroke::S1, a).length()
        );
    }

    #[test]
    fn trajectory_hold_and_duration() {
        let mut t = Trajectory::new(0.01);
        assert!(t.is_empty());
        t.hold(Vec3::new(0.0, 0.0, 0.1), 0.5);
        assert_eq!(t.len(), 50);
        assert!((t.duration() - 0.5).abs() < EPS);
        assert!(t.points().iter().all(|p| p.z == 0.1));
    }

    #[test]
    fn traverse_starts_and_ends_at_path_endpoints() {
        let mut t = Trajectory::new(0.001);
        let path = StrokePath::for_stroke(Stroke::S1, 0.1);
        let origin = Vec3::new(0.0, 0.05, 0.15);
        t.traverse(&path, origin, 0.4);
        let first = t.points()[0];
        assert!((first - (origin + path.point(0.0))).norm() < 1e-6);
        // The last sample is one step before s=1; it should be very close.
        let last = *t.points().last().unwrap();
        assert!((last - (origin + path.point(1.0))).norm() < 1e-3);
    }

    #[test]
    fn velocity_zero_at_rest_peaks_mid_stroke() {
        let mut t = Trajectory::new(0.001);
        t.hold(Vec3::new(-0.05, 0.0, 0.15), 0.1);
        let path = StrokePath::for_stroke(Stroke::S1, 0.1);
        t.traverse(&path, Vec3::new(0.0, 0.0, 0.15), 0.3);
        t.hold(Vec3::new(0.05, 0.0, 0.15), 0.1);
        // Rest portions have ~zero velocity.
        assert!(t.velocity(20).norm() < 1e-9);
        // Peak speed is mean speed × 1.875 for minimum jerk: 0.1/0.3 × 1.875.
        let peak = t.peak_speed();
        let expected = 0.1 / 0.3 * 1.875;
        assert!((peak - expected).abs() < 0.05 * expected, "peak {peak} vs {expected}");
    }

    #[test]
    fn radial_velocity_sign_convention() {
        // Finger moving straight away from the observer along +z.
        let mut t = Trajectory::new(0.01);
        let path = StrokePath::Line {
            start: Vec3::new(0.0, 0.0, 0.1),
            end: Vec3::new(0.0, 0.0, 0.3),
        };
        t.traverse(&path, Vec3::ZERO, 1.0);
        let rv = t.radial_velocity(Vec3::ZERO);
        let mid = rv[rv.len() / 2];
        assert!(mid > 0.0, "receding should be positive, got {mid}");

        // Approaching: reverse the motion.
        let mut t2 = Trajectory::new(0.01);
        let back = StrokePath::Line {
            start: Vec3::new(0.0, 0.0, 0.3),
            end: Vec3::new(0.0, 0.0, 0.1),
        };
        t2.traverse(&back, Vec3::ZERO, 1.0);
        let rv2 = t2.radial_velocity(Vec3::ZERO);
        assert!(rv2[rv2.len() / 2] < 0.0);
    }

    #[test]
    fn move_to_connects_positions() {
        let mut t = Trajectory::new(0.01);
        t.hold(Vec3::new(0.0, 0.0, 0.15), 0.1);
        t.move_to(Vec3::new(0.05, 0.05, 0.15), 0.2);
        let last = *t.points().last().unwrap();
        assert!((last - Vec3::new(0.05, 0.05, 0.15)).norm() < 1e-3);
    }

    #[test]
    fn move_to_on_empty_holds_target() {
        let mut t = Trajectory::new(0.01);
        t.move_to(Vec3::new(1.0, 0.0, 0.0), 0.1);
        assert_eq!(t.len(), 10);
        assert!(t.points().iter().all(|&p| p == Vec3::new(1.0, 0.0, 0.0)));
    }

    #[test]
    fn ranges_match_distances() {
        let mut t = Trajectory::new(0.1);
        t.hold(Vec3::new(0.0, 3.0, 4.0), 0.2);
        let r = t.ranges(Vec3::ZERO);
        assert_eq!(r, vec![5.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn rejects_bad_dt() {
        Trajectory::new(0.0);
    }
}
