//! Simulation harness reproducing every experiment in the EchoWrite paper.
//!
//! The paper evaluates with six human participants, two devices, and three
//! rooms; this crate replaces the humans with seeded [`Participant`] models
//! (per-user writing variability plus a power-law-of-practice learning
//! curve), reuses the physical channel from `echowrite-synth`, and drives
//! the real recognition engine from `echowrite`.
//!
//! One runner per paper figure/table lives in [`experiments`]; the `repro`
//! binary in the workspace root prints them all. Results come back as typed
//! structs so integration tests and benches can assert on the *shape* of
//! each result (who wins, by roughly what factor) rather than parsing text.

pub mod baseline;
pub mod calibrate;
pub mod experiments;
pub mod metrics;
pub mod participant;
pub mod power;
pub mod report;
pub mod session;

pub use baseline::SmartwatchKeyboard;
pub use participant::{LearningCurve, Participant};
pub use report::Table;
