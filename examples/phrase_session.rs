//! Hands-free phrase entry with the streaming [`TextSession`] API: words
//! commit automatically at writing pauses, with candidate lists and 2-gram
//! suggestions after each commit.
//!
//! ```sh
//! cargo run --release --example phrase_session -- "the people"
//! ```

use echowrite::{EchoWrite, SessionEvent, TextSession};
use echowrite_gesture::{Writer, WriterParams};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};

fn main() {
    let phrase = std::env::args().nth(1).unwrap_or_else(|| "the people".to_string());
    let words: Vec<&str> = phrase.split_whitespace().collect();

    let engine = EchoWrite::new();

    // Render the whole phrase as one continuous performance: each word's
    // strokes with a smooth 3-second rest between words (the boundary the
    // session detects).
    let seqs: Vec<_> = words
        .iter()
        .map(|w| {
            engine.scheme().encode_word(w).unwrap_or_else(|e| {
                eprintln!("cannot encode {w:?}: {e}");
                std::process::exit(1);
            })
        })
        .collect();
    let mut writer = Writer::new(WriterParams::nominal(), 9);
    let perf = writer.write_phrase(&seqs, 3.0);
    let mut traj = perf.trajectory;
    let rest = *traj.points().last().expect("non-empty phrase");
    traj.hold(rest, 3.5);
    let mic = Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), 9)
        .render(&traj);
    println!("entering {:?} — {:.1} s of audio\n", phrase, traj.duration());

    let mut session = TextSession::new(&engine);
    let chunk = 5 * engine.config().stft.hop;
    for (i, piece) in mic.chunks(chunk).enumerate() {
        for ev in session.push(piece) {
            let t = i as f64 * chunk as f64 / 44_100.0;
            match ev {
                SessionEvent::Stroke(s) => {
                    println!("t={t:5.2}s  stroke {}", s.classification.stroke);
                }
                SessionEvent::Word { word, candidates, suggestions } => {
                    println!(
                        "t={t:5.2}s  WORD: {:?}  (candidates {:?}, next: {:?})",
                        word.unwrap_or_default(),
                        candidates.iter().map(|c| c.word.as_str()).collect::<Vec<_>>(),
                        suggestions
                    );
                }
            }
        }
    }
    if let Some(SessionEvent::Word { word, .. }) = session.flush() {
        println!("flush     WORD: {:?}", word.unwrap_or_default());
    }
    println!("\nsession text: {:?} (target {:?})", session.text(), phrase);
}
