//! Digit entry in the air (the paper's AcouDigits companion use-case):
//! digits decompose into the same six strokes, so the unchanged pipeline
//! recognizes them — only the mapping differs.
//!
//! ```sh
//! cargo run --release --example digit_entry -- 2026
//! ```

use echowrite::EchoWrite;
use echowrite_gesture::digits::DigitScheme;
use echowrite_gesture::{Writer, WriterParams};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};

fn main() {
    let number = std::env::args().nth(1).unwrap_or_else(|| "2026".to_string());
    let digits: Vec<u8> = number
        .chars()
        .map(|c| {
            c.to_digit(10).unwrap_or_else(|| {
                eprintln!("{c:?} is not a digit");
                std::process::exit(1);
            }) as u8
        })
        .collect();

    let engine = EchoWrite::new();
    let scheme = DigitScheme::standard();
    let mut writer = Writer::new(WriterParams::nominal(), 31);

    let mut decoded = String::new();
    for (i, &d) in digits.iter().enumerate() {
        let strokes = scheme.sequence_for(d).to_vec();
        let perf = writer.write_sequence(&strokes);
        let mic = Scene::new(
            DeviceProfile::mate9(),
            EnvironmentProfile::meeting_room(),
            31 + i as u64,
        )
        .render(&perf.trajectory);
        let rec = engine.recognize_strokes(&mic);
        let observed = rec.strokes();
        let ranked = scheme.decode_ranked(&observed, 0.93);
        let top = ranked[0].0;
        println!(
            "digit {d}: wrote [{}], observed [{}] → decoded {top} (runner-up {})",
            echowrite_gesture::stroke::format_sequence(&strokes),
            echowrite_gesture::stroke::format_sequence(&observed),
            ranked[1].0,
        );
        decoded.push(char::from(b'0' + top));
    }
    println!("\nentered: {decoded} (target {number})");
}
