//! Admission control with high/low-water hysteresis.
//!
//! The controller holds the authoritative live-session count. Opens pass
//! through [`AdmissionController::try_admit`] on the caller's thread —
//! lock-free, a single CAS loop — so overload is rejected *before* any
//! queue is touched. Once the population reaches the high-water mark the
//! controller sheds every new open until the population drains to the
//! low-water mark (¾ of high water), preventing admit/shed flapping right
//! at the boundary.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Shared live-session accounting for one
/// [`SessionManager`](crate::SessionManager).
#[derive(Debug)]
pub struct AdmissionController {
    live: AtomicUsize,
    shedding: AtomicBool,
    max_sessions: usize,
    high_water: usize,
    low_water: usize,
}

impl AdmissionController {
    /// Creates a controller shedding at `high_water` live sessions (with
    /// hysteresis down to ¾ of it) and hard-capped at `max_sessions`.
    pub fn new(max_sessions: usize, high_water: usize) -> Self {
        let high_water = high_water.min(max_sessions).max(1);
        AdmissionController {
            live: AtomicUsize::new(0),
            shedding: AtomicBool::new(false),
            max_sessions,
            high_water,
            low_water: high_water.saturating_mul(3) / 4,
        }
    }

    /// Tries to reserve one live-session slot. Returns `false` (shed) when
    /// the hard cap is hit, or while the hysteresis band is draining.
    pub fn try_admit(&self) -> bool {
        // ordering: Acquire loads pair with the Release latch stores below, so
        // every admit decision sees the newest shed latch and live count; the
        // AcqRel compare_exchange both claims the slot and publishes it to
        // release()'s AcqRel decrement.
        let mut live = self.live.load(Ordering::Acquire);
        loop {
            if live >= self.max_sessions {
                self.shedding.store(true, Ordering::Release);
                return false;
            }
            if self.shedding.load(Ordering::Acquire) {
                if live > self.low_water {
                    return false;
                }
                self.shedding.store(false, Ordering::Release);
            } else if live >= self.high_water {
                self.shedding.store(true, Ordering::Release);
                return false;
            }
            match self.live.compare_exchange_weak(
                live,
                live + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(current) => live = current,
            }
        }
    }

    /// Releases one live-session slot (session finished or reaped),
    /// clearing the shedding latch once the population is at or below the
    /// low-water mark.
    pub fn release(&self) {
        // ordering: AcqRel on the decrement pairs with try_admit's claim; the
        // Release store publishes the cleared latch to its Acquire readers.
        let before = self.live.fetch_sub(1, Ordering::AcqRel);
        if before.saturating_sub(1) <= self.low_water {
            self.shedding.store(false, Ordering::Release);
        }
    }

    /// Sessions currently admitted.
    pub fn live(&self) -> usize {
        // ordering: Acquire pairs with the AcqRel slot claims, so the count
        // reflects every completed admit and release.
        self.live.load(Ordering::Acquire)
    }

    /// Whether new opens are currently being shed.
    pub fn is_shedding(&self) -> bool {
        // ordering: Acquire pairs with the Release latch stores in try_admit
        // and release.
        self.shedding.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_until_high_water_then_sheds() {
        let a = AdmissionController::new(100, 8);
        for _ in 0..8 {
            assert!(a.try_admit());
        }
        assert_eq!(a.live(), 8);
        assert!(!a.try_admit(), "high water must shed");
        assert!(a.is_shedding());
    }

    #[test]
    fn hysteresis_holds_until_low_water() {
        let a = AdmissionController::new(100, 8); // low water = 6
        for _ in 0..8 {
            assert!(a.try_admit());
        }
        assert!(!a.try_admit());
        a.release(); // 7 live — still above low water
        assert!(!a.try_admit(), "must keep shedding inside the hysteresis band");
        a.release(); // 6 live — at low water, latch clears
        assert!(a.try_admit());
        assert!(!a.is_shedding());
    }

    #[test]
    fn hard_cap_binds_even_without_hysteresis() {
        let a = AdmissionController::new(4, 4);
        for _ in 0..4 {
            assert!(a.try_admit());
        }
        assert!(!a.try_admit());
        assert_eq!(a.live(), 4);
    }

    #[test]
    fn concurrent_admits_never_exceed_cap() {
        let a = std::sync::Arc::new(AdmissionController::new(64, 64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let a = a.clone();
            handles.push(std::thread::spawn(move || {
                (0..100).filter(|_| a.try_admit()).count()
            }));
        }
        let admitted: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(admitted, 64, "exactly the cap must be admitted");
        assert_eq!(a.live(), 64);
    }
}
