//! Offline stand-in for `proptest`: a miniature property-testing harness.
//!
//! Covers the surface this workspace uses — the `proptest!` macro with an
//! optional `#![proptest_config(..)]` header, `prop_assert!` /
//! `prop_assert_eq!`, numeric-range and char-class strategies,
//! `prop::collection::vec`, tuples, and `any::<T>()`. Case generation is
//! deterministic: each test's RNG is seeded from the test path and case
//! index, so failures reproduce exactly across runs.

// The int/arb macros instantiate `$ty as u64` for $ty == u64 itself;
// the casts are load-bearing for the narrower widths.
#![allow(trivial_numeric_casts)]

pub mod test_runner {
    /// Per-test configuration (only the `cases` knob is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 generator seeded per (test path, case).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the RNG for one case of one property.
        pub fn for_case(test_path: &str, case: u32) -> Self {
            // FNV-1a over the test path, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut rng = TestRng { state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)) };
            // Discard one output so near-identical seeds decorrelate.
            rng.next_u64();
            rng
        }

        /// Next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform f64 in `[lo, hi)`.
        pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
            let v = lo + self.unit_f64() * (hi - lo);
            if v < hi {
                v
            } else {
                lo
            }
        }

        /// Uniform u64 in `[lo, hi)`.
        pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(lo < hi);
            lo + self.next_u64() % (hi - lo)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.f64_in(self.start, self.end)
        }
    }

    macro_rules! int_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.u64_in(self.start as u64, self.end as u64) as $ty
                }
            }
        )*};
    }
    int_strategy!(usize, u8, u16, u32, u64);

    macro_rules! signed_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $ty
                }
            }
        )*};
    }
    signed_strategy!(i8, i16, i32, i64, isize);

    /// Char-class string strategy: supports patterns like `"[a-z]{1,12}"`
    /// (one character class, optional `{n}` / `{lo,hi}` repetition; a bare
    /// class means exactly one character).
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (chars, lo, hi) = parse_char_class(self);
            let len = rng.u64_in(lo as u64, hi as u64 + 1) as usize;
            (0..len)
                .map(|_| chars[rng.u64_in(0, chars.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_char_class(pattern: &str) -> (Vec<char>, usize, usize) {
        let bytes: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        assert!(
            bytes.first() == Some(&'['),
            "unsupported strategy pattern {pattern:?}: expected a char class"
        );
        i += 1;
        let mut chars = Vec::new();
        while i < bytes.len() && bytes[i] != ']' {
            if i + 2 < bytes.len() && bytes[i + 1] == '-' && bytes[i + 2] != ']' {
                let (a, b) = (bytes[i] as u32, bytes[i + 2] as u32);
                assert!(a <= b, "bad char range in {pattern:?}");
                chars.extend((a..=b).filter_map(char::from_u32));
                i += 3;
            } else {
                chars.push(bytes[i]);
                i += 1;
            }
        }
        assert!(i < bytes.len(), "unterminated char class in {pattern:?}");
        i += 1; // skip ']'
        assert!(!chars.is_empty(), "empty char class in {pattern:?}");

        if i >= bytes.len() {
            return (chars, 1, 1);
        }
        assert!(bytes[i] == '{', "unsupported repetition in {pattern:?}");
        let rep: String = bytes[i + 1..bytes.len() - 1].iter().collect();
        assert!(bytes.last() == Some(&'}'), "unterminated repetition in {pattern:?}");
        let (lo, hi) = match rep.split_once(',') {
            Some((a, b)) => (
                a.trim().parse().expect("repetition lower bound"),
                b.trim().parse().expect("repetition upper bound"),
            ),
            None => {
                let n = rep.trim().parse().expect("repetition count");
                (n, n)
            }
        };
        (chars, lo, hi)
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn char_class_with_repetition() {
            let mut rng = TestRng::for_case("char_class", 0);
            for _ in 0..100 {
                let s = "[a-z]{1,12}".sample(&mut rng);
                assert!((1..=12).contains(&s.len()), "{s:?}");
                assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            }
        }

        #[test]
        fn bare_char_class_is_one_char() {
            let mut rng = TestRng::for_case("bare", 0);
            let s = "[0-9]".sample(&mut rng);
            assert_eq!(s.len(), 1);
            assert!(s.chars().all(|c| c.is_ascii_digit()));
        }

        #[test]
        fn ranges_respect_bounds() {
            let mut rng = TestRng::for_case("ranges", 0);
            for _ in 0..1000 {
                let f = (-2.0f64..3.0).sample(&mut rng);
                assert!((-2.0..3.0).contains(&f));
                let u = (5usize..9).sample(&mut rng);
                assert!((5..9).contains(&u));
                let s = (-4i32..-1).sample(&mut rng);
                assert!((-4..-1).contains(&s));
            }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-exclusive element-count range for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Generates `Vec`s of values drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors with the given element strategy and length.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.u64_in(self.size.lo as u64, self.size.hi as u64) as usize
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.f64_in(-1e6, 1e6)
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s full domain.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Asserts a property-test condition (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::sample(&($strat), &mut __rng),)+
                );
                $body
            }
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { .. }`
/// becomes a `#[test]` running `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

pub mod prelude {
    //! Everything a property-test module needs in scope.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of the upstream `prop::` module-path prelude alias.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_in_range(xs in prop::collection::vec(-1.0f64..1.0, 3..7)) {
            prop_assert!((3..7).contains(&xs.len()));
            for x in &xs {
                prop_assert!((-1.0..1.0).contains(x));
            }
        }

        #[test]
        fn exact_size_and_mut_binding(mut xs in prop::collection::vec(0.0f64..1.0, 5)) {
            prop_assert_eq!(xs.len(), 5);
            xs.push(0.0);
            prop_assert_eq!(xs.len(), 6);
        }

        #[test]
        fn tuples_and_multiple_args(a in 0usize..10,
                                    (b, c) in (1u32..5, -1.0f64..1.0)) {
            prop_assert!(a < 10);
            prop_assert!((1..5).contains(&b));
            prop_assert!((-1.0..1.0).contains(&c));
        }

        #[test]
        fn any_u8_and_strings(byte in any::<u8>(), word in "[a-z]{2,4}") {
            let _ = byte;
            prop_assert!((2..=4).contains(&word.len()));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_case("t", 1);
        let mut b = crate::test_runner::TestRng::for_case("t", 1);
        assert_eq!((0.0f64..1.0).sample(&mut a), (0.0f64..1.0).sample(&mut b));
    }
}
