//! Sec. VII-A ablation — full-rate STFT versus the down-converted
//! front-end.
//!
//! The paper proposes decimation to cut the dominant STFT cost; this bench
//! quantifies the saving on identical audio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use echowrite::{EchoWrite, EchoWriteConfig, Pipeline};
use echowrite_bench::stroke_trace;
use echowrite_gesture::Stroke;
use echowrite_synth::EnvironmentProfile;
use std::hint::black_box;

fn bench_frontends(c: &mut Criterion) {
    let audio = stroke_trace(Stroke::S3, EnvironmentProfile::meeting_room(), 7);

    let mut g = c.benchmark_group("ablation_frontend");
    g.sample_size(10);
    let full = Pipeline::new(EchoWriteConfig::paper());
    g.bench_function(BenchmarkId::new("roi_spectrogram", "full"), |b| {
        b.iter(|| full.roi_spectrogram(black_box(&audio)))
    });
    for factor in [8usize, 16, 32] {
        let p = Pipeline::new(EchoWriteConfig::downsampled(factor));
        g.bench_with_input(
            BenchmarkId::new("roi_spectrogram", format!("div{factor}")),
            &p,
            |b, p| b.iter(|| p.roi_spectrogram(black_box(&audio))),
        );
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let audio = stroke_trace(Stroke::S3, EnvironmentProfile::meeting_room(), 7);
    let mut g = c.benchmark_group("ablation_frontend_end_to_end");
    g.sample_size(10);
    let full = EchoWrite::new();
    g.bench_function(BenchmarkId::new("recognize", "full"), |b| {
        b.iter(|| full.recognize_strokes(black_box(&audio)))
    });
    let fast = EchoWrite::with_config(EchoWriteConfig::downsampled(32));
    g.bench_function(BenchmarkId::new("recognize", "div32"), |b| {
        b.iter(|| fast.recognize_strokes(black_box(&audio)))
    });
    g.finish();
}

criterion_group!(benches, bench_frontends, bench_end_to_end);
criterion_main!(benches);
