//! The letter → stroke input scheme (reconstruction of the paper's Fig. 3).
//!
//! The paper's two design principles (Sec. II-A):
//! 1. **Learnability** — letters are grouped by the first or second stroke
//!    of their natural uppercase stroke order, so the mapping is memorable.
//! 2. **Doppler uniqueness** — each group's gesture must induce a unique
//!    Doppler shift pattern; the six basic strokes satisfy this (Fig. 9).
//!
//! The exact Fig. 3 artwork is not reproducible from the paper text, so
//! [`InputScheme::paper`] encodes the reconstruction documented in
//! `DESIGN.md` §4. The type is data-driven: any 26-letter assignment can be
//! loaded with [`InputScheme::from_pairs`], which the paper's "user-defined
//! input scheme" future-work section (Sec. VII-C) motivates.

use crate::stroke::{Stroke, STROKE_COUNT};
use std::fmt;

/// Errors produced while building or using an input scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemeError {
    /// A letter outside `A..=Z` was supplied.
    NotALetter(char),
    /// A letter was assigned twice in `from_pairs`.
    DuplicateLetter(char),
    /// Not all 26 letters were assigned.
    MissingLetters(Vec<char>),
    /// A stroke group would be empty, violating Doppler-profile coverage.
    EmptyGroup(Stroke),
}

impl fmt::Display for SchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeError::NotALetter(c) => write!(f, "character {c:?} is not an English letter"),
            SchemeError::DuplicateLetter(c) => write!(f, "letter {c:?} assigned more than once"),
            SchemeError::MissingLetters(ls) => write!(f, "letters without a stroke: {ls:?}"),
            SchemeError::EmptyGroup(s) => write!(f, "stroke {s} has no letters assigned"),
        }
    }
}

impl std::error::Error for SchemeError {}

/// A total mapping from the 26 uppercase English letters to the six strokes.
///
/// # Example
///
/// ```
/// use echowrite_gesture::{InputScheme, Stroke};
/// let scheme = InputScheme::paper();
/// assert_eq!(scheme.letters_for(Stroke::S5), ['C', 'G', 'O', 'Q', 'S']);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputScheme {
    /// `map[letter - 'A']` is the stroke for that letter.
    map: [Stroke; 26],
}

impl InputScheme {
    /// The reconstructed paper scheme (DESIGN.md §4):
    ///
    /// | Stroke | Letters | Rationale (first/second stroke in school order) |
    /// |---|---|---|
    /// | S1 `—` | E F L T Z | E/F/L/T's salient horizontal bar; Z starts with one |
    /// | S2 `\|` | H I J Y | dominant vertical stem / descender |
    /// | S3 `↙` | A K X | first or second stroke is the left-falling diagonal |
    /// | S4 `↘` | M N V W | first diagonal stroke falls rightward |
    /// | S5 `C` | C G O Q S | all begin with the counter-clockwise left curve |
    /// | S6 `)` | B D P R U | bowl/right-curve as first or second stroke |
    pub fn paper() -> Self {
        InputScheme::from_pairs([
            ('A', Stroke::S3),
            ('B', Stroke::S6),
            ('C', Stroke::S5),
            ('D', Stroke::S6),
            ('E', Stroke::S1),
            ('F', Stroke::S1),
            ('G', Stroke::S5),
            ('H', Stroke::S2),
            ('I', Stroke::S2),
            ('J', Stroke::S2),
            ('K', Stroke::S3),
            ('L', Stroke::S1),
            ('M', Stroke::S4),
            ('N', Stroke::S4),
            ('O', Stroke::S5),
            ('P', Stroke::S6),
            ('Q', Stroke::S5),
            ('R', Stroke::S6),
            ('S', Stroke::S5),
            ('T', Stroke::S1),
            ('U', Stroke::S6),
            ('V', Stroke::S4),
            ('W', Stroke::S4),
            ('X', Stroke::S3),
            ('Y', Stroke::S2),
            ('Z', Stroke::S1),
        ])
        // echolint: allow(no-panic-path) -- compile-time table; validated by the paper_scheme tests
        .expect("the built-in paper scheme is valid")
    }

    /// Builds a scheme from `(letter, stroke)` pairs.
    ///
    /// # Errors
    ///
    /// Returns an error if any character is not an ASCII letter, a letter is
    /// assigned twice, any of the 26 letters is missing, or a stroke group
    /// would be empty (the paper requires each gesture to map to letters).
    pub fn from_pairs<I>(pairs: I) -> Result<Self, SchemeError>
    where
        I: IntoIterator<Item = (char, Stroke)>,
    {
        let mut map: [Option<Stroke>; 26] = [None; 26];
        for (c, s) in pairs {
            let u = c.to_ascii_uppercase();
            if !u.is_ascii_uppercase() {
                return Err(SchemeError::NotALetter(c));
            }
            let idx = (u as u8 - b'A') as usize;
            if map[idx].is_some() {
                return Err(SchemeError::DuplicateLetter(u));
            }
            map[idx] = Some(s);
        }
        let missing: Vec<char> = (0..26)
            .filter(|&i| map[i].is_none())
            .map(|i| (b'A' + i as u8) as char)
            .collect();
        if !missing.is_empty() {
            return Err(SchemeError::MissingLetters(missing));
        }
        // echolint: allow(no-panic-path) -- no slot is None after the missing-letters check above
        let map = map.map(|s| s.expect("checked above"));
        let mut counts = [0usize; STROKE_COUNT];
        for s in map {
            counts[s.index()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                return Err(SchemeError::EmptyGroup(
                    // echolint: allow(no-panic-path) -- i enumerates [0, STROKE_COUNT)
                    Stroke::from_index(i).expect("index < 6"),
                ));
            }
        }
        Ok(InputScheme { map })
    }

    /// The stroke assigned to a letter (case-insensitive).
    ///
    /// Returns `None` for non-letters.
    pub fn stroke_for(&self, letter: char) -> Option<Stroke> {
        let u = letter.to_ascii_uppercase();
        if u.is_ascii_uppercase() {
            Some(self.map[(u as u8 - b'A') as usize])
        } else {
            None
        }
    }

    /// All letters assigned to a stroke, in alphabetical order.
    pub fn letters_for(&self, stroke: Stroke) -> Vec<char> {
        (0..26u8)
            .filter(|&i| self.map[i as usize] == stroke)
            .map(|i| (b'A' + i) as char)
            .collect()
    }

    /// Encodes a word as its stroke sequence.
    ///
    /// # Errors
    ///
    /// Returns the first non-letter character encountered.
    pub fn encode_word(&self, word: &str) -> Result<Vec<Stroke>, SchemeError> {
        word.chars()
            .map(|c| self.stroke_for(c).ok_or(SchemeError::NotALetter(c)))
            .collect()
    }

    /// Number of letters in each stroke group, indexed by stroke.
    pub fn group_sizes(&self) -> [usize; STROKE_COUNT] {
        let mut counts = [0usize; STROKE_COUNT];
        for s in self.map {
            counts[s.index()] += 1;
        }
        counts
    }

    /// All words in `candidates` whose stroke encoding equals `seq`
    /// (the fuzzy T9-style group lookup).
    pub fn matching_words<'a>(&self, seq: &[Stroke], candidates: &'a [&'a str]) -> Vec<&'a str> {
        candidates
            .iter()
            .filter(|w| self.encode_word(w).map(|s| s == seq).unwrap_or(false))
            .copied()
            .collect()
    }

    /// The number of distinct letter combinations a stroke sequence could
    /// expand to (product of group sizes) — the search-space bound that
    /// motivates the paper's dictionary-driven decoding.
    pub fn combination_count(&self, seq: &[Stroke]) -> u128 {
        let sizes = self.group_sizes();
        seq.iter().map(|s| sizes[s.index()] as u128).product()
    }
}

impl Default for InputScheme {
    fn default() -> Self {
        InputScheme::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scheme_covers_all_letters() {
        let scheme = InputScheme::paper();
        for c in 'A'..='Z' {
            assert!(scheme.stroke_for(c).is_some(), "letter {c} unmapped");
        }
        assert_eq!(scheme.group_sizes().iter().sum::<usize>(), 26);
    }

    #[test]
    fn paper_scheme_group_sizes() {
        let scheme = InputScheme::paper();
        assert_eq!(scheme.group_sizes(), [5, 4, 3, 4, 5, 5]);
    }

    #[test]
    fn paper_scheme_expected_groups() {
        let scheme = InputScheme::paper();
        assert_eq!(scheme.letters_for(Stroke::S1), ['E', 'F', 'L', 'T', 'Z']);
        assert_eq!(scheme.letters_for(Stroke::S2), ['H', 'I', 'J', 'Y']);
        assert_eq!(scheme.letters_for(Stroke::S3), ['A', 'K', 'X']);
        assert_eq!(scheme.letters_for(Stroke::S4), ['M', 'N', 'V', 'W']);
        assert_eq!(scheme.letters_for(Stroke::S5), ['C', 'G', 'O', 'Q', 'S']);
        assert_eq!(scheme.letters_for(Stroke::S6), ['B', 'D', 'P', 'R', 'U']);
    }

    #[test]
    fn case_insensitive_lookup() {
        let scheme = InputScheme::paper();
        assert_eq!(scheme.stroke_for('a'), scheme.stroke_for('A'));
        assert_eq!(scheme.stroke_for('5'), None);
        assert_eq!(scheme.stroke_for(' '), None);
    }

    #[test]
    fn encode_word_examples() {
        let scheme = InputScheme::paper();
        assert_eq!(
            scheme.encode_word("CAB").unwrap(),
            vec![Stroke::S5, Stroke::S3, Stroke::S6]
        );
        // "the" -> T:S1 H:S2 E:S1
        assert_eq!(
            scheme.encode_word("the").unwrap(),
            vec![Stroke::S1, Stroke::S2, Stroke::S1]
        );
        assert_eq!(
            scheme.encode_word("it's"),
            Err(SchemeError::NotALetter('\''))
        );
    }

    #[test]
    fn from_pairs_detects_duplicates_and_missing() {
        let mut pairs: Vec<(char, Stroke)> = ('A'..='Z').map(|c| (c, Stroke::S1)).collect();
        // Every stroke must be non-empty; start from the valid paper scheme.
        let err = InputScheme::from_pairs(pairs.clone().into_iter().chain([('A', Stroke::S2)]))
            .unwrap_err();
        assert_eq!(err, SchemeError::DuplicateLetter('A'));

        pairs.pop(); // drop Z
        let err = InputScheme::from_pairs(pairs).unwrap_err();
        assert_eq!(err, SchemeError::MissingLetters(vec!['Z']));
    }

    #[test]
    fn from_pairs_detects_empty_group() {
        // All letters on S1 leaves S2..S6 empty.
        let pairs: Vec<(char, Stroke)> = ('A'..='Z').map(|c| (c, Stroke::S1)).collect();
        let err = InputScheme::from_pairs(pairs).unwrap_err();
        assert_eq!(err, SchemeError::EmptyGroup(Stroke::S2));
    }

    #[test]
    fn from_pairs_rejects_non_letters() {
        let err = InputScheme::from_pairs([('3', Stroke::S1)]).unwrap_err();
        assert_eq!(err, SchemeError::NotALetter('3'));
    }

    #[test]
    fn from_pairs_accepts_lowercase() {
        let pairs: Vec<(char, Stroke)> = ('a'..='z')
            .enumerate()
            .map(|(i, c)| (c, Stroke::from_index(i % 6).unwrap()))
            .collect();
        let scheme = InputScheme::from_pairs(pairs).unwrap();
        assert_eq!(scheme.stroke_for('A'), Some(Stroke::S1));
        assert_eq!(scheme.stroke_for('B'), Some(Stroke::S2));
    }

    #[test]
    fn matching_words_filters_by_sequence() {
        let scheme = InputScheme::paper();
        let candidates = ["cab", "sad", "car", "cat", "oak"];
        // C:S5 A:S3 B:S6 — "sad" is S5 S3 S6 too (S:S5, A:S3, D:S6) — a true
        // T9-style collision; "car"/"cab" share S5 S3 S6 via R/B both in S6.
        let hits = scheme.matching_words(&[Stroke::S5, Stroke::S3, Stroke::S6], &candidates);
        assert!(hits.contains(&"cab"));
        assert!(hits.contains(&"sad"));
        assert!(hits.contains(&"car"));
        assert!(!hits.contains(&"cat")); // T is S1, not S6
    }

    #[test]
    fn combination_count_multiplies_group_sizes() {
        let scheme = InputScheme::paper();
        // S1 group has 5 letters, S3 has 3.
        assert_eq!(scheme.combination_count(&[Stroke::S1, Stroke::S3]), 15);
        assert_eq!(scheme.combination_count(&[]), 1);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(InputScheme::default(), InputScheme::paper());
    }
}
