//! The serving layer end to end: a sharded `SessionManager` multiplexing
//! several concurrent writers, with backpressure verdicts, per-session
//! transcripts, and the Prometheus metrics dump.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! # capture a Chrome trace (open in chrome://tracing or ui.perfetto.dev):
//! cargo run --release --example serve_demo -- --trace trace.json
//! ```

use echowrite::{EchoWrite, EchoWriteConfig, Parallelism};
use echowrite_gesture::{stroke::format_sequence, Stroke, Writer, WriterParams};
use echowrite_serve::{ServeConfig, ServeEvent, SessionId, SessionManager, SubmitVerdict};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use std::collections::BTreeMap;

fn render(strokes: &[Stroke], seed: u64) -> Vec<f64> {
    let perf = Writer::new(WriterParams::nominal(), seed).write_sequence(strokes);
    let mut traj = perf.trajectory;
    let last = *traj.points().last().expect("non-empty trajectory");
    traj.hold(last, 1.0);
    Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), seed).render(&traj)
}

/// Parses `--trace <path>` from the command line, if present.
fn trace_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            return Some(args.next().expect("--trace requires a file path"));
        }
    }
    None
}

fn main() {
    let trace_path = trace_path();
    let recorder = trace_path
        .as_ref()
        .map(|_| echowrite_trace::install_recording(echowrite_trace::DEFAULT_CAPACITY));

    // Four writers, four different stroke sequences.
    let writers: Vec<(SessionId, Vec<Stroke>)> = vec![
        (SessionId(1), vec![Stroke::S2, Stroke::S5]),
        (SessionId(2), vec![Stroke::S4, Stroke::S1]),
        (SessionId(3), vec![Stroke::S3]),
        (SessionId(4), vec![Stroke::S6, Stroke::S2, Stroke::S1]),
    ];
    let audios: Vec<(SessionId, Vec<f64>)> = writers
        .iter()
        .map(|(id, strokes)| (*id, render(strokes, id.0)))
        .collect();

    let engine = EchoWrite::with_config(EchoWriteConfig::streaming());
    // A gateway-side copy for word decoding once transcripts arrive.
    let decoder = engine.clone();
    let manager = SessionManager::new(
        engine,
        ServeConfig {
            shards: Parallelism::Threads(2),
            queue_capacity: 64,
            ..ServeConfig::default()
        },
    )
    .expect("valid serve config");

    for (id, _) in &audios {
        assert_eq!(manager.open(*id), SubmitVerdict::Enqueued);
    }

    // Interleave everyone's chunks round-robin, as a gateway thread would.
    let chunk = 5 * 1024;
    let mut cursors: Vec<usize> = vec![0; audios.len()];
    loop {
        let mut progressed = false;
        for (slot, (id, audio)) in audios.iter().enumerate() {
            let pos = cursors[slot];
            if pos >= audio.len() {
                continue;
            }
            let end = (pos + chunk).min(audio.len());
            match manager.push(*id, &audio[pos..end]) {
                SubmitVerdict::Enqueued => {
                    cursors[slot] = end;
                    progressed = true;
                    if end == audio.len() {
                        let _ = manager.finish(*id);
                    }
                }
                SubmitVerdict::QueueFull { retry_after_chunks } => {
                    println!(
                        "backpressure: session {} queue full, retry after ~{} chunks",
                        id.0, retry_after_chunks
                    );
                    manager.quiesce();
                }
                SubmitVerdict::Shedding => {
                    println!("session {} shed — overloaded", id.0);
                    cursors[slot] = audio.len();
                }
            }
        }
        if !progressed && cursors.iter().zip(&audios).all(|(&c, (_, a))| c >= a.len()) {
            break;
        }
    }
    manager.quiesce();

    let mut events = Vec::new();
    manager.try_events(&mut events);
    let mut transcripts: BTreeMap<u64, Vec<Stroke>> = BTreeMap::new();
    for ev in &events {
        match ev {
            ServeEvent::Segment { session, segment } => {
                if let Some(cls) = &segment.classification {
                    transcripts.entry(session.0).or_default().push(cls.stroke);
                }
            }
            ServeEvent::Finished { session } => println!("session {} finished", session.0),
            ServeEvent::Reaped { session } => println!("session {} reaped", session.0),
        }
    }
    println!();
    for (id, wrote) in &writers {
        let got = transcripts.get(&id.0).cloned().unwrap_or_default();
        let word = decoder
            .decode_sequence(&got)
            .first()
            .map(|c| c.word.clone())
            .unwrap_or_else(|| "(no candidate)".to_string());
        println!(
            "session {}: wrote [{}]  recognized [{}]  top word: {word}",
            id.0,
            format_sequence(wrote),
            format_sequence(&got)
        );
    }

    println!("\n--- metrics ---\n{}", manager.metrics().to_prometheus());

    if let (Some(path), Some(rec)) = (trace_path, recorder) {
        echowrite_trace::disable();
        std::fs::write(&path, rec.to_chrome_json()).expect("write trace file");
        println!("--- trace ---");
        println!("{}", rec.summary_text());
        println!(
            "wrote {} events to {path} ({} dropped); open in chrome://tracing",
            rec.len(),
            rec.dropped()
        );
    }
}
