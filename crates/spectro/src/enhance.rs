//! The Doppler-enhancement chain (paper Sec. III-A, Fig. 8).

use crate::image;
use crate::spectrogram::Spectrogram;

/// Parameters of the enhancement chain.
///
/// Defaults are the paper's values. `alpha` is explicitly called
/// hardware-dependent in the paper ("closely related to hardware and set to
/// 8 in our system"); the same is true of any simulator scaling, so
/// [`EnhanceConfig::paper`] keeps 8 and the synthesizer's amplitude scale is
/// calibrated so that finger-echo magnitudes sit well above it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnhanceConfig {
    /// Median filter size (paper: 3 → 3×3).
    pub median_size: usize,
    /// Number of initial static frames averaged for spectral subtraction
    /// (paper: 5).
    pub static_frames: usize,
    /// Energy threshold α zeroing bursty hardware-noise residue (paper: 8).
    pub alpha: f64,
    /// Gaussian smoothing kernel size (paper: 5).
    pub gaussian_size: usize,
    /// Binarization threshold after zero-one normalization (paper: 0.15).
    pub binarize_threshold: f64,
    /// How the smoothed magnitudes are normalized before binarization.
    pub normalization: Normalization,
    /// Optional wideband-burst suppression (the paper's Sec. VII-B future
    /// work); `None` reproduces the published pipeline.
    pub burst_suppression: Option<crate::burst::BurstConfig>,
}

/// Pre-binarization normalization strategy.
///
/// The paper normalizes the smoothed spectrogram to `[0, 1]` by its global
/// maximum before applying the 0.15 binarization threshold. That global
/// maximum is only known once the whole session has been observed, which
/// makes the stage non-causal: a truly incremental pipeline cannot reproduce
/// it without revisiting emitted columns. [`Normalization::FixedScale`]
/// replaces the data-dependent maximum with a calibrated constant, making
/// binarization a pointwise (and therefore streamable) operation:
/// `binarize(x / s, t)` is computed as `binarize(x, t·s)` without touching
/// the data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Normalization {
    /// Divide by the session-global maximum (the paper's offline behavior).
    GlobalZeroOne,
    /// Assume a fixed full-scale value `s`; the effective binarization
    /// threshold becomes `binarize_threshold · s` on raw smoothed
    /// magnitudes. Calibrated against the synthesizer's amplitude scale the
    /// same way α is.
    FixedScale(f64),
}

impl EnhanceConfig {
    /// The paper's parameter set.
    pub fn paper() -> Self {
        EnhanceConfig {
            median_size: 3,
            static_frames: 5,
            alpha: 8.0,
            gaussian_size: 5,
            binarize_threshold: 0.15,
            normalization: Normalization::GlobalZeroOne,
            burst_suppression: None,
        }
    }

    /// The paper pipeline with causal [`Normalization::FixedScale`]
    /// normalization, as required by the incremental streaming path.
    ///
    /// The full-scale constant 55 is calibrated against the synthesizer's
    /// amplitude scale (observed smoothed-stage maxima span roughly 36–73
    /// across scenes and front-ends), so the effective binarization
    /// threshold `0.15 × 55 = 8.25` sits inside the range the offline
    /// global-max normalization produces.
    pub fn streaming() -> Self {
        EnhanceConfig {
            normalization: Normalization::FixedScale(55.0),
            ..EnhanceConfig::paper()
        }
    }

    /// The paper pipeline plus Sec. VII-B burst suppression.
    pub fn with_burst_suppression() -> Self {
        EnhanceConfig {
            burst_suppression: Some(crate::burst::BurstConfig::nominal()),
            ..EnhanceConfig::paper()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message if filter sizes are even/zero or thresholds are
    /// out of range.
    pub fn validate(&self) -> Result<(), String> {
        if self.median_size.is_multiple_of(2) || self.median_size == 0 {
            return Err(format!("median_size must be odd, got {}", self.median_size));
        }
        if self.gaussian_size.is_multiple_of(2) || self.gaussian_size == 0 {
            return Err(format!("gaussian_size must be odd, got {}", self.gaussian_size));
        }
        if self.static_frames == 0 {
            return Err("static_frames must be positive".to_string());
        }
        if !(0.0..=1.0).contains(&self.binarize_threshold) {
            return Err(format!(
                "binarize_threshold must be in [0,1], got {}",
                self.binarize_threshold
            ));
        }
        if self.alpha < 0.0 {
            return Err(format!("alpha must be non-negative, got {}", self.alpha));
        }
        if let Normalization::FixedScale(s) = self.normalization {
            if !s.is_finite() || s <= 0.0 {
                return Err(format!("fixed normalization scale must be finite and positive, got {s}"));
            }
        }
        if let Some(b) = &self.burst_suppression {
            b.validate()?;
        }
        Ok(())
    }
}

impl Default for EnhanceConfig {
    fn default() -> Self {
        EnhanceConfig::paper()
    }
}

/// Every intermediate stage of the chain — the panels of the paper's Fig. 8.
#[derive(Debug, Clone, PartialEq)]
pub struct EnhanceStages {
    /// (a) Raw ROI spectrogram.
    pub raw: Spectrogram,
    /// After median filtering and spectral subtraction.
    pub subtracted: Spectrogram,
    /// (b) After thresholding and Gaussian smoothing.
    pub smoothed: Spectrogram,
    /// (c) Final binary spectrogram after normalization, binarization, and
    /// hole filling.
    pub binary: Spectrogram,
}

/// Runs the Sec. III-A enhancement chain.
///
/// # Example
///
/// ```
/// use echowrite_spectro::{Enhancer, EnhanceConfig, Spectrogram};
/// let spec = Spectrogram::zeros(32, 10);
/// let out = Enhancer::new(EnhanceConfig::paper()).enhance(&spec);
/// assert!(out.is_binary());
/// ```
#[derive(Debug, Clone)]
pub struct Enhancer {
    config: EnhanceConfig,
}

impl Enhancer {
    /// Creates an enhancer.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(config: EnhanceConfig) -> Self {
        if let Err(msg) = config.validate() {
            // echolint: allow(no-panic-path) -- documented `# Panics` contract of Enhancer::new
            panic!("invalid enhancement config: {msg}");
        }
        Enhancer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EnhanceConfig {
        &self.config
    }

    /// Runs the full chain and returns only the final binary spectrogram.
    ///
    /// This is the hot path: after the median filter every stage mutates one
    /// working matrix in place, instead of cloning the full spectrogram at
    /// each step like the diagnostic [`Enhancer::enhance_stages`] does. The
    /// result is element-for-element identical to `enhance_stages(spec).binary`.
    pub fn enhance(&self, spec: &Spectrogram) -> Spectrogram {
        self.enhance_impl(spec, None)
    }

    fn enhance_impl(&self, spec: &Spectrogram, background: Option<&[f64]>) -> Spectrogram {
        let c = &self.config;
        if spec.cols() == 0 {
            return spec.clone();
        }
        let mut work = image::median_filter_2d(spec, c.median_size);
        match background {
            Some(bg) => image::subtract_background_in_place(&mut work, bg),
            None => {
                let n_static = c.static_frames.min(spec.cols().max(1));
                image::subtract_static_in_place(&mut work, n_static);
            }
        }
        image::threshold_in_place(&mut work, c.alpha);
        if let Some(cfg) = &c.burst_suppression {
            work = crate::burst::suppress_bursts(&work, *cfg).0;
        }
        image::gaussian_filter_2d_in_place(&mut work, c.gaussian_size);
        match c.normalization {
            Normalization::GlobalZeroOne => {
                echowrite_dsp::util::normalize_zero_one(work.data_mut());
                image::binarize_in_place(&mut work, c.binarize_threshold);
            }
            Normalization::FixedScale(scale) => {
                image::binarize_in_place(&mut work, c.binarize_threshold * scale);
            }
        }
        image::fill_holes_in_place(&mut work);
        work
    }

    /// Estimates the static background (per-row means over the first
    /// `static_frames` median-filtered columns) for later use with
    /// [`Enhancer::enhance_with_background`]. Returns `None` when the
    /// spectrogram has no columns.
    pub fn estimate_background(&self, spec: &Spectrogram) -> Option<Vec<f64>> {
        if spec.cols() == 0 {
            return None;
        }
        let median = image::median_filter_2d(spec, self.config.median_size);
        let n = self.config.static_frames.min(spec.cols());
        Some(image::row_means(&median, n))
    }

    /// Runs the chain substituting a frozen background for the in-buffer
    /// static frames — the streaming path, where the buffer's front may no
    /// longer be static.
    pub fn enhance_with_background(&self, spec: &Spectrogram, background: &[f64]) -> Spectrogram {
        self.enhance_impl(spec, Some(background))
    }

    /// Runs the full chain keeping every intermediate (Fig. 8 panels).
    ///
    /// Spectrograms with fewer columns than `static_frames` use all columns
    /// as the static estimate (start-up transient of the streaming path).
    pub fn enhance_stages(&self, spec: &Spectrogram) -> EnhanceStages {
        self.stages_impl(spec, None)
    }

    fn stages_impl(&self, spec: &Spectrogram, background: Option<&[f64]>) -> EnhanceStages {
        let c = &self.config;
        let raw = spec.clone();
        if spec.cols() == 0 {
            return EnhanceStages {
                raw: raw.clone(),
                subtracted: raw.clone(),
                smoothed: raw.clone(),
                binary: raw,
            };
        }
        let median = image::median_filter_2d(&raw, c.median_size);
        let subtracted = match background {
            Some(bg) => image::subtract_background(&median, bg),
            None => {
                let n_static = c.static_frames.min(spec.cols().max(1));
                image::subtract_static(&median, n_static)
            }
        };
        let thresholded = image::threshold(&subtracted, c.alpha);
        let thresholded = match &c.burst_suppression {
            Some(cfg) => crate::burst::suppress_bursts(&thresholded, *cfg).0,
            None => thresholded,
        };
        let smoothed = image::gaussian_filter_2d(&thresholded, c.gaussian_size);
        let binary0 = match c.normalization {
            Normalization::GlobalZeroOne => {
                let normalized = image::normalize_zero_one(&smoothed);
                image::binarize(&normalized, c.binarize_threshold)
            }
            Normalization::FixedScale(scale) => {
                image::binarize(&smoothed, c.binarize_threshold * scale)
            }
        };
        let binary = image::fill_holes(&binary0);
        EnhanceStages { raw, subtracted, smoothed, binary }
    }
}

impl Default for Enhancer {
    fn default() -> Self {
        Enhancer::new(EnhanceConfig::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic ROI spectrogram: a strong static carrier row, a noise
    /// floor, and a moving "stroke" blob wandering above the carrier.
    fn synthetic(rows: usize, cols: usize) -> Spectrogram {
        let mut s = Spectrogram::zeros(rows, cols);
        let cf = s.carrier_row();
        for c in 0..cols {
            for r in 0..rows {
                // Pseudo-random but deterministic noise floor ~1.
                let h = ((r * 31 + c * 17) % 7) as f64 * 0.3;
                s.set(r, c, h);
            }
            s.set(cf, c, 900.0); // carrier line
            if c >= 8 && c < cols - 4 {
                // Stroke blob: rises then falls above the carrier.
                let k = (c - 8) as f64 / (cols - 12) as f64;
                let peak = cf + 3 + (12.0 * (std::f64::consts::PI * k).sin()) as usize;
                for r in cf + 1..=peak.min(rows - 1) {
                    s.set(r, c, 60.0);
                }
            }
        }
        s
    }

    #[test]
    fn paper_config_is_valid() {
        EnhanceConfig::paper().validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = EnhanceConfig::paper();
        c.median_size = 4;
        assert!(c.validate().is_err());
        let mut c = EnhanceConfig::paper();
        c.gaussian_size = 0;
        assert!(c.validate().is_err());
        let mut c = EnhanceConfig::paper();
        c.binarize_threshold = 1.5;
        assert!(c.validate().is_err());
        let mut c = EnhanceConfig::paper();
        c.static_frames = 0;
        assert!(c.validate().is_err());
        let mut c = EnhanceConfig::paper();
        c.alpha = -1.0;
        assert!(c.validate().is_err());
        let mut c = EnhanceConfig::paper();
        c.normalization = Normalization::FixedScale(0.0);
        assert!(c.validate().is_err());
        let mut c = EnhanceConfig::paper();
        c.normalization = Normalization::FixedScale(f64::NAN);
        assert!(c.validate().is_err());
        EnhanceConfig::streaming().validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "invalid enhancement config")]
    fn enhancer_panics_on_bad_config() {
        Enhancer::new(EnhanceConfig { median_size: 2, ..EnhanceConfig::paper() });
    }

    #[test]
    fn output_is_binary_and_same_shape() {
        let spec = synthetic(64, 40);
        let out = Enhancer::default().enhance(&spec);
        assert!(out.is_binary());
        assert_eq!(out.rows(), spec.rows());
        assert_eq!(out.cols(), spec.cols());
        assert_eq!(out.carrier_row(), spec.carrier_row());
    }

    #[test]
    fn carrier_line_is_removed() {
        let spec = synthetic(64, 40);
        let out = Enhancer::default().enhance(&spec);
        let cf = out.carrier_row();
        // Static columns (before the stroke) must be empty at the carrier.
        for c in 0..6 {
            assert_eq!(out.get(cf, c), 0.0, "carrier residue at column {c}");
        }
    }

    #[test]
    fn stroke_blob_survives() {
        let spec = synthetic(64, 40);
        let out = Enhancer::default().enhance(&spec);
        let cf = out.carrier_row();
        // Mid-stroke columns keep foreground above the carrier.
        let hot: usize = (16..24)
            .map(|c| (cf + 2..cf + 16).filter(|&r| out.get(r, c) == 1.0).count())
            .sum();
        assert!(hot > 10, "stroke energy lost: {hot} hot cells");
    }

    #[test]
    fn noise_floor_is_suppressed() {
        let spec = synthetic(64, 40);
        let out = Enhancer::default().enhance(&spec);
        // Rows far below the carrier (no signal was placed there).
        let bad: usize = (0..out.cols())
            .map(|c| (0..8).filter(|&r| out.get(r, c) == 1.0).count())
            .sum();
        assert_eq!(bad, 0, "noise-floor cells survived enhancement");
    }

    #[test]
    fn stages_expose_all_panels() {
        let spec = synthetic(32, 20);
        let stages = Enhancer::default().enhance_stages(&spec);
        assert_eq!(stages.raw, spec);
        assert!(!stages.subtracted.is_binary() || stages.subtracted.max_value() == 0.0);
        assert!(stages.binary.is_binary());
        // Subtraction must strictly reduce total energy.
        let sum = |s: &Spectrogram| s.data().iter().sum::<f64>();
        assert!(sum(&stages.subtracted) < sum(&stages.raw));
    }

    #[test]
    fn short_streams_use_available_columns() {
        // Fewer columns than static_frames must not panic.
        let spec = synthetic(32, 3);
        let out = Enhancer::default().enhance(&spec);
        assert_eq!(out.cols(), 3);
    }

    /// The in-place hot path must agree with the diagnostic staged path
    /// element for element, with and without a frozen background, with and
    /// without burst suppression.
    #[test]
    fn fast_path_is_identical_to_staged_path() {
        for cfg in [
            EnhanceConfig::paper(),
            EnhanceConfig::with_burst_suppression(),
            EnhanceConfig::streaming(),
        ] {
            let e = Enhancer::new(cfg);
            for (rows, cols) in [(64, 40), (32, 3), (16, 1)] {
                let spec = synthetic(rows, cols);
                assert_eq!(e.enhance(&spec), e.enhance_stages(&spec).binary);
                if let Some(bg) = e.estimate_background(&spec) {
                    assert_eq!(
                        e.enhance_with_background(&spec, &bg),
                        e.stages_impl(&spec, Some(&bg)).binary
                    );
                }
            }
        }
    }

    #[test]
    fn all_zero_input_stays_zero() {
        let spec = Spectrogram::zeros(16, 10);
        let out = Enhancer::default().enhance(&spec);
        assert_eq!(out.occupancy(), 0.0);
    }
}
