//! Real-input FFT via the packed half-size complex transform.
//!
//! An N-point DFT of a real signal wastes half its butterflies on the
//! conjugate-symmetric upper spectrum. [`RealFft`] instead packs the even
//! samples into the real lane and the odd samples into the imaginary lane of
//! an N/2-point complex FFT, then unpacks the interleaved spectra with one
//! O(N) split pass:
//!
//! ```text
//! z[t]  = x[2t] + i·x[2t+1]                    (packing, t < N/2)
//! Z     = FFT_{N/2}(z)
//! Xe[k] = (Z[k] + conj(Z[N/2−k])) / 2          (even-sample spectrum)
//! Xo[k] = (Z[k] − conj(Z[N/2−k])) / 2i         (odd-sample spectrum)
//! X[k]  = Xe[k] + e^{−2πik/N} · Xo[k]          (k ≤ N/2)
//! ```
//!
//! This halves the butterfly work of the STFT hot path. Callers that need
//! zero allocation per transform thread a [`RealFftScratch`] through
//! [`RealFft::forward_into`]; the planner itself is immutable and can be
//! shared across threads.

use crate::complex::Complex;
use crate::fft::Fft;

/// A planned FFT for real input of a fixed power-of-two size.
///
/// Produces the lower `size/2 + 1` spectrum bins (DC through Nyquist); the
/// remaining bins of a real signal's spectrum are their conjugates.
///
/// # Example
///
/// ```
/// use echowrite_dsp::RealFft;
///
/// let fft = RealFft::new(8);
/// let signal = [1.0; 8];
/// let spec = fft.forward(&signal);
/// assert_eq!(spec.len(), 5);
/// assert!((spec[0].re - 8.0).abs() < 1e-12);
/// assert!(spec[1].norm() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct RealFft {
    size: usize,
    half: Fft,
    /// Split twiddles `exp(-2πik/N)` for `k < N/2`.
    twiddles: Vec<Complex>,
}

/// Reusable workspace for [`RealFft::forward_into`]: the packed half-size
/// complex buffer.
#[derive(Debug, Clone)]
pub struct RealFftScratch {
    packed: Vec<Complex>,
}

impl RealFft {
    /// Plans a real-input FFT of the given size.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two, or is smaller than 2.
    pub fn new(size: usize) -> Self {
        assert!(size.is_power_of_two(), "FFT size must be a power of two, got {size}");
        assert!(size >= 2, "real FFT size must be at least 2, got {size}");
        let half = Fft::new(size / 2);
        let twiddles = (0..size / 2)
            .map(|k| Complex::from_angle(-2.0 * std::f64::consts::PI * k as f64 / size as f64))
            .collect();
        RealFft { size, half, twiddles }
    }

    /// Returns the planned (real input) transform size.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Returns the number of spectrum bins produced: `size/2 + 1`.
    #[inline]
    pub fn output_len(&self) -> usize {
        self.size / 2 + 1
    }

    /// Allocates a scratch buffer sized for this plan.
    pub fn make_scratch(&self) -> RealFftScratch {
        // echolint: allow(alloc-reach) -- deliberate one-time plan allocation; hot paths reuse the scratch
        RealFftScratch { packed: vec![Complex::ZERO; self.size / 2] }
    }

    /// Computes the lower half-spectrum of `signal` into `out` without
    /// allocating.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len() != size` or `out.len() != size/2 + 1`.
    pub fn forward_into(
        &self,
        signal: &[f64],
        scratch: &mut RealFftScratch,
        out: &mut [Complex],
    ) {
        assert_eq!(
            signal.len(),
            self.size,
            "signal length {} does not match planned real FFT size {}",
            signal.len(),
            self.size
        );
        assert_eq!(
            out.len(),
            self.output_len(),
            "output length {} does not match spectrum size {}",
            out.len(),
            self.output_len()
        );
        let m = self.size / 2;
        let packed = &mut scratch.packed;
        packed.resize(m, Complex::ZERO);
        for (t, z) in packed.iter_mut().enumerate() {
            *z = Complex::new(signal[2 * t], signal[2 * t + 1]);
        }
        self.half.forward(packed);

        // DC and Nyquist are purely real: the even/odd spectra both equal
        // Z[0]'s components there.
        // echolint: allow(no-panic-path) -- out.len() == m+1 and packed.len() == m asserted at entry
        out[0] = Complex::new(packed[0].re + packed[0].im, 0.0);
        // echolint: allow(no-panic-path) -- out.len() == m+1 asserted at entry
        out[m] = Complex::new(packed[0].re - packed[0].im, 0.0);
        // Interior bins 1..m run through the SIMD-dispatched split kernel,
        // pinned bitwise to the scalar loop it replaced:
        //   odd = diff / 2i = (diff.im - i·diff.re) / 2
        crate::kernels::realfft_split(out, packed, &self.twiddles);
    }

    /// Computes the lower half-spectrum of `signal`, allocating the result.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len() != size`.
    pub fn forward(&self, signal: &[f64]) -> Vec<Complex> {
        let mut scratch = self.make_scratch();
        // echolint: allow(alloc-reach) -- allocating convenience wrapper; hot callers use forward_into
        let mut out = vec![Complex::ZERO; self.output_len()];
        self.forward_into(signal, &mut scratch, &mut out);
        out
    }

    /// Computes half-spectrum magnitudes into `mags` without allocating.
    ///
    /// `spectrum` is overwritten as workspace.
    ///
    /// # Panics
    ///
    /// Panics if any buffer length disagrees with the plan.
    pub fn magnitudes_into(
        &self,
        signal: &[f64],
        scratch: &mut RealFftScratch,
        spectrum: &mut [Complex],
        mags: &mut [f64],
    ) {
        assert_eq!(
            mags.len(),
            self.output_len(),
            "magnitude length {} does not match spectrum size {}",
            mags.len(),
            self.output_len()
        );
        self.forward_into(signal, scratch, spectrum);
        for (m, z) in mags.iter_mut().zip(spectrum.iter()) {
            *m = z.norm();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::dft_naive;

    /// Deterministic pseudo-random real signal (no RNG dependency needed).
    fn noise(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                (t * 0.731 + phase).sin() + 0.4 * (t * 1.934 + 2.0 * phase).cos()
                    + 0.05 * ((t * t * 0.013 + phase).sin())
            })
            .collect()
    }

    #[test]
    fn matches_complex_fft_to_1e9() {
        for &n in &[2usize, 4, 8, 32, 256, 1024, 8192] {
            let real = RealFft::new(n);
            let full = Fft::new(n);
            for trial in 0..3 {
                let signal = noise(n, trial as f64 * 1.7);
                let fast = real.forward(&signal);
                let reference = full.forward_real(&signal);
                assert_eq!(fast.len(), n / 2 + 1);
                for (k, (a, b)) in fast.iter().zip(&reference).enumerate() {
                    assert!(
                        (*a - *b).norm() <= 1e-9,
                        "n={n} trial={trial} bin {k}: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_naive_dft() {
        let n = 64;
        let real = RealFft::new(n);
        let signal = noise(n, 0.3);
        let input: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let slow = dft_naive(&input);
        for (k, a) in real.forward(&signal).iter().enumerate() {
            assert!((*a - slow[k]).norm() < 1e-9, "bin {k}");
        }
    }

    #[test]
    fn forward_into_is_allocation_free_on_reuse() {
        let n = 128;
        let real = RealFft::new(n);
        let mut scratch = real.make_scratch();
        let mut out = vec![Complex::ZERO; real.output_len()];
        let a = noise(n, 0.0);
        let b = noise(n, 5.0);
        real.forward_into(&a, &mut scratch, &mut out);
        let first = out[3];
        real.forward_into(&b, &mut scratch, &mut out);
        real.forward_into(&a, &mut scratch, &mut out);
        // Scratch reuse must not leak state between transforms.
        assert_eq!(out[3], first);
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let real = RealFft::new(n);
        let k0 = 9;
        let signal: Vec<f64> = (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * k0 as f64 * t as f64 / n as f64).cos())
            .collect();
        let mut scratch = real.make_scratch();
        let mut spec = vec![Complex::ZERO; real.output_len()];
        let mut mags = vec![0.0; real.output_len()];
        real.magnitudes_into(&signal, &mut scratch, &mut spec, &mut mags);
        assert!((mags[k0] - n as f64 / 2.0).abs() < 1e-9);
        for (k, &m) in mags.iter().enumerate() {
            if k != k0 {
                assert!(m < 1e-9, "leakage at bin {k}: {m}");
            }
        }
    }

    #[test]
    fn dc_and_nyquist_are_real() {
        let n = 32;
        let real = RealFft::new(n);
        let spec = real.forward(&noise(n, 2.2));
        assert_eq!(spec[0].im, 0.0);
        assert_eq!(spec[n / 2].im, 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        RealFft::new(24);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_size_one() {
        RealFft::new(1);
    }

    #[test]
    #[should_panic(expected = "does not match planned")]
    fn rejects_wrong_signal_length() {
        let real = RealFft::new(16);
        real.forward(&[0.0; 8]);
    }
}
