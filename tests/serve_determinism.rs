//! The serving-layer determinism guarantee (DESIGN.md §6.4): pushing K
//! sessions' chunks through a sharded [`SessionManager`] — in *any*
//! interleaving, on any shard count — yields per-session transcripts
//! bitwise identical to K isolated [`StreamingRecognizer`]s, because every
//! session's DSP state is pinned to exactly one shard and processed in
//! submission order.

use echowrite::{EchoWrite, EchoWriteConfig, Parallelism, StreamingRecognizer};
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_serve::{ServeConfig, ServeEvent, SessionId, SessionManager, SubmitVerdict};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Chunk size for every push: the Android app's 5-frame buffer.
const CHUNK: usize = 5 * 1024;
/// Concurrent sessions per scenario.
const K: usize = 4;

/// A transcript row: `(start, end, stroke, scores)` — scores compared
/// bitwise.
type Row = (usize, usize, Stroke, [f64; 6]);

fn engine() -> &'static EchoWrite {
    static E: OnceLock<EchoWrite> = OnceLock::new();
    E.get_or_init(|| EchoWrite::with_config(EchoWriteConfig::streaming()))
}

fn render(strokes: &[Stroke], seed: u64, tail: f64) -> Vec<f64> {
    let perf = Writer::new(WriterParams::nominal(), seed).write_sequence(strokes);
    let mut traj = perf.trajectory;
    if tail > 0.0 {
        let last = *traj.points().last().expect("non-empty trajectory");
        traj.hold(last, tail);
    }
    Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), seed).render(&traj)
}

/// K session audios plus their isolated-recognizer oracle transcripts.
fn sessions() -> &'static Vec<(Vec<f64>, Vec<Row>)> {
    static S: OnceLock<Vec<(Vec<f64>, Vec<Row>)>> = OnceLock::new();
    S.get_or_init(|| {
        let audios = [
            render(&[Stroke::S2, Stroke::S5], 101, 1.2),
            render(&[Stroke::S4], 37, 1.0),
            // No tail: last stroke decidable only at finish.
            render(&[Stroke::S3, Stroke::S6], 59, 0.0),
            render(&[Stroke::S1, Stroke::S2, Stroke::S4], 73, 1.1),
        ];
        audios
            .into_iter()
            .map(|audio| {
                let mut rec = StreamingRecognizer::new(engine());
                let mut rows: Vec<Row> = Vec::new();
                for chunk in audio.chunks(CHUNK) {
                    for ev in rec.push(chunk) {
                        rows.push((
                            ev.start_frame,
                            ev.end_frame,
                            ev.classification.stroke,
                            ev.classification.scores,
                        ));
                    }
                }
                for ev in rec.finish() {
                    rows.push((
                        ev.start_frame,
                        ev.end_frame,
                        ev.classification.stroke,
                        ev.classification.scores,
                    ));
                }
                (audio, rows)
            })
            .collect()
    })
}

/// Submits with bounded retries: `submit()` itself never blocks, so on
/// QueueFull the test quiesces the shards (drains the queues) and retries.
fn must_enqueue(m: &SessionManager, mut attempt: impl FnMut() -> SubmitVerdict) {
    for _ in 0..1000 {
        match attempt() {
            SubmitVerdict::Enqueued => return,
            SubmitVerdict::QueueFull { retry_after_chunks } => {
                assert!(retry_after_chunks >= 1);
                m.quiesce();
            }
            SubmitVerdict::Shedding => panic!("admission must not shed in this scenario"),
        }
    }
    panic!("queue never drained");
}

/// Runs the K sessions through a manager with `shards` shards and the given
/// worker batch size, feeding chunks in the order given by `interleave`
/// (indices into the sessions, cycled past exhausted ones), and returns the
/// per-session transcripts.
fn run_interleaved(shards: usize, batch_max: usize, interleave: &[usize]) -> Vec<Vec<Row>> {
    let manager = SessionManager::new(
        engine().clone(),
        ServeConfig {
            shards: Parallelism::Threads(shards),
            queue_capacity: 64,
            // Degradation must be off for bitwise-deterministic output.
            deadline_chunks: None,
            idle_timeout_samples: None,
            batch_max,
            ..ServeConfig::default()
        },
    )
    .expect("valid serve config");

    for k in 0..K {
        must_enqueue(&manager, || manager.open(SessionId(k as u64)));
    }
    let mut cursors = [0usize; K];
    let mut pending: Vec<usize> = (0..K).collect();
    let mut step = 0usize;
    while !pending.is_empty() {
        // Pick the next session the interleaving names that still has audio.
        let pick = interleave[step % interleave.len()] % pending.len();
        step += 1;
        let k = pending[pick];
        let audio = &sessions()[k].0;
        let pos = cursors[k];
        let end = (pos + CHUNK).min(audio.len());
        must_enqueue(&manager, || manager.push(SessionId(k as u64), &audio[pos..end]));
        cursors[k] = end;
        if end == audio.len() {
            must_enqueue(&manager, || manager.finish(SessionId(k as u64)));
            pending.remove(pick);
        }
    }
    manager.quiesce();

    let mut events = Vec::new();
    manager.try_events(&mut events);
    let mut transcripts: Vec<Vec<Row>> = vec![Vec::new(); K];
    let mut finished = 0usize;
    for ev in events {
        match ev {
            ServeEvent::Segment { session, segment } => {
                let cls = segment.classification.expect("no degradation configured");
                transcripts[session.0 as usize].push((
                    segment.start_frame,
                    segment.end_frame,
                    cls.stroke,
                    cls.scores,
                ));
            }
            ServeEvent::Finished { .. } => finished += 1,
            ServeEvent::Reaped { .. } => panic!("reaper is disabled"),
        }
    }
    assert_eq!(finished, K, "every session must emit Finished");
    let snapshot = manager.shutdown().metrics;
    assert_eq!(snapshot.sessions_opened as usize, K);
    assert_eq!(snapshot.sessions_finished as usize, K);
    assert_eq!(snapshot.sessions_live, 0);
    assert!(snapshot.batch_drains >= 1, "workers must account their drain rounds");
    transcripts
}

fn assert_matches_oracle(transcripts: &[Vec<Row>], shards: usize, batch_max: usize) {
    for (k, got) in transcripts.iter().enumerate() {
        let want = &sessions()[k].1;
        assert_eq!(
            got, want,
            "session {k} on {shards} shard(s) with batch_max {batch_max}: \
             transcript diverged from isolated recognizer"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random interleavings of the K sessions' chunks across shard counts
    /// and worker batch sizes (1 = unbatched, 8 = the batched drain running
    /// N sessions' pushes through one shared DSP scratch): per-session
    /// transcripts must equal the isolated oracles bitwise.
    #[test]
    fn interleaved_sessions_match_isolated_recognizers(
        interleave in prop::collection::vec(0usize..K, 8..64),
    ) {
        for (shards, batch_max) in [(1usize, 8usize), (4, 1), (4, 8)] {
            let transcripts = run_interleaved(shards, batch_max, &interleave);
            assert_matches_oracle(&transcripts, shards, batch_max);
        }
    }
}

/// Deterministic edge interleavings random sampling is unlikely to hit:
/// strict round-robin, one-session-at-a-time, and a skewed pattern that
/// starves one session until the end.
#[test]
fn edge_interleavings_match_isolated_recognizers() {
    let round_robin: Vec<usize> = (0..K).collect();
    let sequential = vec![0usize];
    let skewed = vec![0usize, 1, 1, 2, 2, 2, 3, 3, 3, 3];
    for interleave in [round_robin, sequential, skewed] {
        for (shards, batch_max) in [(1usize, 1usize), (4, 8)] {
            let transcripts = run_interleaved(shards, batch_max, &interleave);
            assert_matches_oracle(&transcripts, shards, batch_max);
        }
    }
}

/// A duplicate `Open` mid-stream — the retry a wire client sends when an
/// ack is lost — must be idempotent: every session gets re-opened after
/// its first chunk and every transcript still matches the isolated oracle
/// bitwise, with the re-opens counted instead of state destroyed.
#[test]
fn duplicate_open_mid_stream_keeps_transcripts_bitwise() {
    let manager = SessionManager::new(
        engine().clone(),
        ServeConfig {
            shards: Parallelism::Threads(4),
            queue_capacity: 64,
            deadline_chunks: None,
            idle_timeout_samples: None,
            ..ServeConfig::default()
        },
    )
    .expect("valid serve config");

    for k in 0..K {
        must_enqueue(&manager, || manager.open(SessionId(k as u64)));
    }
    let mut cursors = [0usize; K];
    let mut reopened = [false; K];
    let mut pending: Vec<usize> = (0..K).collect();
    while !pending.is_empty() {
        let mut still = Vec::with_capacity(pending.len());
        for &k in &pending {
            let audio = &sessions()[k].0;
            let pos = cursors[k];
            let end = (pos + CHUNK).min(audio.len());
            must_enqueue(&manager, || manager.push(SessionId(k as u64), &audio[pos..end]));
            cursors[k] = end;
            if !reopened[k] {
                // The lost-ack retry, mid-stream.
                must_enqueue(&manager, || manager.open(SessionId(k as u64)));
                reopened[k] = true;
            }
            if end == audio.len() {
                must_enqueue(&manager, || manager.finish(SessionId(k as u64)));
            } else {
                still.push(k);
            }
        }
        pending = still;
    }
    manager.quiesce();

    let mut events = Vec::new();
    manager.try_events(&mut events);
    let mut transcripts: Vec<Vec<Row>> = vec![Vec::new(); K];
    for ev in events {
        if let ServeEvent::Segment { session, segment } = ev {
            let cls = segment.classification.expect("no degradation configured");
            transcripts[session.0 as usize].push((
                segment.start_frame,
                segment.end_frame,
                cls.stroke,
                cls.scores,
            ));
        }
    }
    assert_matches_oracle(&transcripts, 4, ServeConfig::default().batch_max);
    let snapshot = manager.shutdown().metrics;
    assert_eq!(snapshot.sessions_opened as usize, K, "re-opens must not count as opens");
    assert_eq!(snapshot.sessions_reopened as usize, K);
    assert_eq!(snapshot.sessions_finished as usize, K);
}

/// A `Finish` that loses the race with the idle reaper is an orphan
/// command — counted, never fatal, and never a second terminal event for
/// the session.
#[test]
fn finish_after_reap_is_orphaned_not_fatal() {
    let manager = SessionManager::new(
        engine().clone(),
        ServeConfig {
            shards: Parallelism::Threads(1),
            queue_capacity: 256,
            deadline_chunks: None,
            // The reaper's clock is samples pushed through the shard.
            idle_timeout_samples: Some(30_000),
            ..ServeConfig::default()
        },
    )
    .expect("valid serve config");

    let idle = SessionId(0);
    let busy = SessionId(1);
    must_enqueue(&manager, || manager.open(idle));
    must_enqueue(&manager, || manager.open(busy));
    must_enqueue(&manager, || manager.push(idle, &[0.0; 1024]));
    // Advance the shard clock far past the idle session's timeout and
    // through at least one reap scan (every 64 commands).
    let silence = vec![0.0; 5 * 1024];
    for _ in 0..70 {
        must_enqueue(&manager, || manager.push(busy, &silence));
    }
    manager.quiesce();
    // The race: finish the session the reaper already reclaimed.
    must_enqueue(&manager, || manager.finish(idle));
    must_enqueue(&manager, || manager.finish(busy));
    manager.quiesce();

    let mut events = Vec::new();
    manager.try_events(&mut events);
    let mut reaped = Vec::new();
    let mut finished = Vec::new();
    for ev in &events {
        match ev {
            ServeEvent::Reaped { session } => reaped.push(session.0),
            ServeEvent::Finished { session } => finished.push(session.0),
            ServeEvent::Segment { .. } => {}
        }
    }
    assert_eq!(reaped, vec![0], "only the idle session may be reaped");
    assert_eq!(finished, vec![1], "the reaped session must not also finish");
    let snapshot = manager.shutdown().metrics;
    assert_eq!(snapshot.sessions_reaped, 1);
    assert_eq!(snapshot.sessions_finished, 1);
    assert!(snapshot.orphan_commands >= 1, "the late finish must count as an orphan");
    assert_eq!(snapshot.sessions_live, 0);
}

/// Queue-full-and-retry sequences keep the transcript bitwise: a rejected
/// push never enters the shard queue, so the retried submission order is
/// the processed order.
#[test]
fn queue_full_retry_preserves_bitwise_transcript() {
    let manager = SessionManager::new(
        engine().clone(),
        ServeConfig {
            shards: Parallelism::Threads(1),
            // A two-deep queue guarantees rejections under a burst.
            queue_capacity: 2,
            deadline_chunks: None,
            idle_timeout_samples: None,
            ..ServeConfig::default()
        },
    )
    .expect("valid serve config");

    let (audio, want) = &sessions()[0];
    let id = SessionId(7);
    must_enqueue(&manager, || manager.open(id));
    for chunk in audio.chunks(CHUNK) {
        must_enqueue(&manager, || manager.push(id, chunk));
    }
    must_enqueue(&manager, || manager.finish(id));
    manager.quiesce();

    let mut events = Vec::new();
    manager.try_events(&mut events);
    let mut rows: Vec<Row> = Vec::new();
    for ev in events {
        if let ServeEvent::Segment { session, segment } = ev {
            assert_eq!(session, id);
            let cls = segment.classification.expect("no degradation configured");
            rows.push((segment.start_frame, segment.end_frame, cls.stroke, cls.scores));
        }
    }
    assert_eq!(&rows, want, "retried pushes must not reorder or drop chunks");
    let snapshot = manager.shutdown().metrics;
    assert!(
        snapshot.queue_full >= 1,
        "a capacity-2 queue must reject at least once under this burst"
    );
}

/// At least one scenario must produce a non-trivial transcript, or the
/// bitwise comparison proves nothing.
#[test]
fn oracles_are_nontrivial() {
    let total: usize = sessions().iter().map(|(_, rows)| rows.len()).sum();
    assert!(total >= 6, "oracle transcripts too sparse: {total} strokes");
}
