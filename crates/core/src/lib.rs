//! # EchoWrite
//!
//! A full reproduction of *EchoWrite: An Acoustic-based Finger Input System
//! Without Training* (ICDCS 2019). EchoWrite turns a commodity speaker +
//! microphone pair into a touch-free text-entry device: the speaker emits
//! an inaudible 20 kHz tone, the user writes one of six basic strokes per
//! letter in the air, and the Doppler signature each stroke imprints on the
//! echo is recognized — without any per-user training — and decoded into
//! words T9-style.
//!
//! The pipeline (paper Fig. 7):
//!
//! ```text
//! audio 44.1 kHz
//!   └─ STFT (8192-pt Hann, 1024 hop)          echowrite-dsp
//!       └─ ROI crop [19 530, 20 470] Hz        echowrite-spectro
//!           └─ enhancement (median, spectral
//!              subtraction, α-threshold,
//!              Gaussian, binarize, fill)       echowrite-spectro
//!               └─ MVCE Doppler profile        echowrite-profile
//!                   └─ acceleration-based
//!                      stroke segmentation     echowrite-profile
//!                       └─ DTW vs 6 templates  echowrite-dtw
//!                           └─ Bayesian word
//!                              decoding + 2-gram
//!                              prediction      echowrite-lang
//! ```
//!
//! # Quickstart
//!
//! ```
//! use echowrite::EchoWrite;
//! use echowrite_gesture::{Writer, WriterParams, Stroke};
//! use echowrite_synth::{Scene, DeviceProfile, EnvironmentProfile};
//!
//! // Simulate a user writing "S2" near a phone in a meeting room …
//! let perf = Writer::new(WriterParams::nominal(), 1).write_stroke(Stroke::S2);
//! let scene = Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), 1);
//! let mic = scene.render(&perf.trajectory);
//!
//! // … and recognize it from the raw microphone samples.
//! let engine = EchoWrite::new();
//! let rec = engine.recognize_strokes(&mic);
//! assert_eq!(rec.strokes(), vec![Stroke::S2]);
//! ```

pub mod config;
pub mod engine;
pub mod pipeline;
pub mod session_state;
pub mod streaming;
pub mod templates;
pub mod text_session;

pub use config::{EchoWriteConfig, Frontend, Parallelism, StreamingMode};
pub use engine::{EchoWrite, StrokeRecognition, WordRecognition};
pub use pipeline::{Pipeline, StageTiming};
pub use session_state::{
    ChainState, DownState, FrontState, IncrementalState, ReplayState, RestoreError, SessionBody,
    SessionState, SnapshotState,
};
pub use streaming::{
    SegmentEvent, SharedDspScratch, StreamingRecognizer, StreamingSession, StrokeEvent,
};
pub use text_session::{SessionEvent, TextSession};
