//! Visualizes the paper's Fig. 8: the Doppler-enhancement stages, plus the
//! extracted profile and detected segment for one stroke.
//!
//! ```sh
//! cargo run --release --example spectrogram_stages -- S5
//! ```
//!
//! Prints ASCII heat maps of the raw ROI spectrogram, the
//! spectral-subtracted/smoothed stage, and the final binary image, followed
//! by the MVCE Doppler profile with the detected stroke span.

use echowrite::{EchoWrite, EchoWriteConfig, Pipeline};
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_spectro::Spectrogram;
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};

/// Crops a spectrogram to ±`band` rows around the carrier so terminal
/// output stays readable.
fn crop(s: &Spectrogram, band: usize) -> Spectrogram {
    let cf = s.carrier_row();
    let lo = cf.saturating_sub(band);
    let hi = (cf + band + 1).min(s.rows());
    let mut out = Spectrogram::zeros(hi - lo, s.cols());
    out.set_carrier_row(cf - lo);
    for r in lo..hi {
        for c in 0..s.cols() {
            out.set(r - lo, c, s.get(r, c));
        }
    }
    out
}

fn main() {
    let stroke: Stroke = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "S5".into())
        .parse()
        .unwrap_or(Stroke::S5);

    let perf = Writer::new(WriterParams::nominal(), 7).write_stroke(stroke);
    let scene = Scene::new(DeviceProfile::mate9(), EnvironmentProfile::lab_area(), 7);
    let mic = scene.render(&perf.trajectory);

    let pipeline = Pipeline::new(EchoWriteConfig::paper());
    let (analysis, stages) = pipeline.analyze_verbose(&mic);
    let stages = stages.expect("non-empty audio");

    println!("=== stroke {stroke}: {} ===\n", stroke.description());
    println!("--- Fig. 8(a): raw ROI spectrogram (±30 bins around 20 kHz) ---");
    print!("{}", crop(&stages.raw, 30));
    println!("--- after median filter + spectral subtraction + α-threshold + Gaussian ---");
    print!("{}", crop(&stages.smoothed, 30));
    println!("--- Fig. 8(c): binary spectrogram after normalize/binarize/fill ---");
    print!("{}", crop(&stages.binary, 30));

    println!("--- Fig. 8(d)-style: MVCE Doppler profile (Hz per frame) ---");
    let shifts = analysis.profile.shifts();
    let peak = analysis.profile.peak_shift().max(1.0);
    for (i, &v) in shifts.iter().enumerate() {
        let cols = ((v / peak) * 30.0).round() as i64;
        let bar: String = if cols >= 0 {
            format!("{:>31}|{}", "", "#".repeat(cols as usize))
        } else {
            format!("{:>width$}|", "#".repeat((-cols) as usize), width = 31)
        };
        let marker = analysis
            .segments
            .iter()
            .any(|s| (s.start..s.end).contains(&i));
        println!("{i:4} {bar} {}{:+.0} Hz", if marker { "*" } else { " " }, v);
    }
    println!("\ndetected segments (frames): {:?}", analysis.segments);

    // Classify the stroke for good measure.
    let engine = EchoWrite::new();
    let rec = engine.recognize_strokes(&mic);
    println!(
        "classified as: {:?}",
        rec.classifications.iter().map(|c| c.stroke.to_string()).collect::<Vec<_>>()
    );
}
