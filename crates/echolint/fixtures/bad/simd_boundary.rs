//! Bad fixture: raw SIMD surface outside `crates/dsp/src/kernels`.

use std::arch::x86_64::_mm256_add_pd;

fn probe() -> bool {
    is_x86_feature_detected!("avx2")
}

#[target_feature(enable = "avx2")]
unsafe fn sum_lanes(a: __m256d, b: __m256d) -> __m256d {
    _mm256_add_pd(a, b)
}
