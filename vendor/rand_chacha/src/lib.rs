//! Offline stand-in for `rand_chacha` 0.3: [`ChaCha8Rng`].
//!
//! Implements the genuine ChaCha stream cipher with 8 rounds, a 64-bit
//! block counter, and the word-buffer (`BlockRng`) read discipline of
//! rand_core 0.6 — four 16-word blocks are generated per refill and
//! `next_u64` straddles refills exactly as upstream does — so a generator
//! seeded via `seed_from_u64` emits the same `u32`/`u64` stream as the real
//! rand_chacha crate. The workspace's simulator seeds were calibrated on
//! that stream.

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

/// Words per refill: rand_chacha buffers 4 ChaCha blocks of 16 words.
const BUF_WORDS: usize = 64;

/// A ChaCha stream cipher with 8 rounds used as an RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (little-endian from the 32-byte seed).
    key: [u32; 8],
    /// Block counter of the *next* refill's first block.
    counter: u64,
    /// Buffered output words.
    buf: [u32; BUF_WORDS],
    /// Next unread index into `buf`; `BUF_WORDS` means exhausted.
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        for b in 0..4 {
            let block = chacha_block(&self.key, self.counter.wrapping_add(b as u64));
            self.buf[b * 16..(b + 1) * 16].copy_from_slice(&block);
        }
        self.counter = self.counter.wrapping_add(4);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng { key, counter: 0, buf: [0; BUF_WORDS], index: BUF_WORDS }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill();
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    /// Two consecutive buffered words, low half first — including the
    /// straddle-a-refill behaviour of rand_core's `BlockRng`.
    fn next_u64(&mut self) -> u64 {
        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index += 2;
            (u64::from(self.buf[index + 1]) << 32) | u64::from(self.buf[index])
        } else if index >= BUF_WORDS {
            self.refill();
            self.index = 2;
            (u64::from(self.buf[1]) << 32) | u64::from(self.buf[0])
        } else {
            let lo = u64::from(self.buf[BUF_WORDS - 1]);
            self.refill();
            self.index = 1;
            (u64::from(self.buf[0]) << 32) | lo
        }
    }
}

/// One 16-word ChaCha8 block for the given key and 64-bit block counter
/// (nonce zero).
fn chacha_block(key: &[u32; 8], counter: u64) -> [u32; 16] {
    let mut state = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let initial = state;
    for _ in 0..4 {
        // Column round.
        quarter(&mut state, 0, 4, 8, 12);
        quarter(&mut state, 1, 5, 9, 13);
        quarter(&mut state, 2, 6, 10, 14);
        quarter(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter(&mut state, 0, 5, 10, 15);
        quarter(&mut state, 1, 6, 11, 12);
        quarter(&mut state, 2, 7, 8, 13);
        quarter(&mut state, 3, 4, 9, 14);
    }
    for (s, i) in state.iter_mut().zip(initial) {
        *s = s.wrapping_add(i);
    }
    state
}

#[inline]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..200).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..200).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn u64_is_two_u32s_lo_first() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let lo = a.next_u32() as u64;
        let hi = a.next_u32() as u64;
        assert_eq!(b.next_u64(), (hi << 32) | lo);
    }

    #[test]
    fn straddles_buffer_boundary_like_block_rng() {
        // Consume 63 words, then next_u64 must use word 63 as the low half
        // and the first word of the next refill as the high half.
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let words: Vec<u32> = (0..130).map(|_| a.next_u32()).collect();
        for _ in 0..31 {
            b.next_u64();
        }
        assert_eq!(b.next_u32(), words[62]);
        let straddle = b.next_u64();
        assert_eq!(straddle & 0xFFFF_FFFF, u64::from(words[63]));
        assert_eq!(straddle >> 32, u64::from(words[64]));
    }

    #[test]
    fn counter_advances_blocks() {
        // Word 16 of the stream is the first word of block 1, which must
        // differ from block 0's (identical state except the counter).
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let w: Vec<u32> = (0..32).map(|_| r.next_u32()).collect();
        assert_ne!(w[0], w[16]);
    }

    #[test]
    fn known_answer_chacha_core() {
        // All-zero key, counter 0: the block function must be a pure
        // function of its inputs (regression pin for the round structure).
        let k = [0u32; 8];
        let b0 = chacha_block(&k, 0);
        let b0_again = chacha_block(&k, 0);
        let b1 = chacha_block(&k, 1);
        assert_eq!(b0, b0_again);
        assert_ne!(b0, b1);
        // Mixing must leave no word equal to the initial state's constants.
        assert_ne!(b0[0], 0x6170_7865);
    }
}
