//! Typed errors for corpus loading.
//!
//! Loaders never panic on malformed input: every validation failure is a
//! [`CorpusError`] naming the offending word or line, so adversarial or
//! truncated word lists surface as recoverable errors at the API boundary.

use std::fmt;

/// Why a lexicon or bigram table failed to load.
#[derive(Debug, Clone, PartialEq)]
pub enum CorpusError {
    /// A word is empty or contains non-ASCII-alphabetic characters.
    InvalidWord {
        /// The raw word as supplied.
        word: String,
        /// Zero-based position in the input.
        rank: usize,
    },
    /// The same word appears twice.
    DuplicateWord {
        /// The (lowercased) duplicated word.
        word: String,
        /// Zero-based position of the second occurrence.
        rank: usize,
    },
    /// A frequency or weight is non-finite or non-positive.
    InvalidFrequency {
        /// The word the frequency belongs to.
        word: String,
        /// The offending value.
        value: f64,
    },
    /// The input produced no entries at all.
    Empty,
    /// A structured text line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        what: &'static str,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::InvalidWord { word, rank } => {
                write!(f, "invalid word {word:?} at rank {rank} (want ASCII letters)")
            }
            CorpusError::DuplicateWord { word, rank } => {
                write!(f, "duplicate word {word:?} at rank {rank}")
            }
            CorpusError::InvalidFrequency { word, value } => {
                write!(f, "invalid frequency {value} for word {word:?}")
            }
            CorpusError::Empty => write!(f, "corpus must contain at least one entry"),
            CorpusError::Parse { line, what } => write!(f, "parse error on line {line}: {what}"),
        }
    }
}

impl std::error::Error for CorpusError {}
