//! Tracing overhead benchmarks (DESIGN.md §6.5): the same steady-state
//! streaming push measured with tracing disabled, with the discarding
//! no-op sink, and with the bounded recording sink.
//!
//! The contract being measured: the disabled path costs one relaxed
//! atomic load per instrumentation site (indistinguishable from the
//! pre-observability build), and the recording sink stays within the 5%
//! per-push overhead budget enforced by the `trace_gate` CI job.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use echowrite::{EchoWrite, EchoWriteConfig, StreamingRecognizer};
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use echowrite_trace::ScopedMode;
use std::sync::OnceLock;

const SAMPLE_RATE: usize = 44_100;
const SESSION_SECONDS: usize = 12;
/// Five STFT hops per push — the chunk an audio callback would hand over.
const CHUNK: usize = 5 * 1024;

/// A 12 s writing session: four strokes, then held still to the 12 s mark.
fn session_audio() -> &'static Vec<f64> {
    static A: OnceLock<Vec<f64>> = OnceLock::new();
    A.get_or_init(|| {
        let strokes = [Stroke::S2, Stroke::S4, Stroke::S1, Stroke::S3];
        let perf = Writer::new(WriterParams::nominal(), 7).write_sequence(&strokes);
        let mut audio = Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), 7)
            .render(&perf.trajectory);
        audio.resize(SESSION_SECONDS * SAMPLE_RATE, 0.0);
        audio
    })
}

fn engine() -> &'static EchoWrite {
    static E: OnceLock<EchoWrite> = OnceLock::new();
    E.get_or_init(|| EchoWrite::with_config(EchoWriteConfig::streaming()))
}

/// Steady-state pushes (6 s prefill) under one sink mode.
fn bench_mode(g: &mut criterion::BenchmarkGroup<'_>, name: &str, mode: ScopedMode) {
    g.bench_function(BenchmarkId::new(name, "push"), |b| {
        let _scope = echowrite_trace::scoped(mode);
        let audio = session_audio();
        let mut stream = StreamingRecognizer::new(engine());
        let mut pos = 0;
        while pos < 6 * SAMPLE_RATE {
            let end = (pos + CHUNK).min(audio.len());
            black_box(stream.push(&audio[pos..end]));
            pos = end;
        }
        b.iter(|| {
            if pos + CHUNK > audio.len() {
                pos = 0; // keep streaming: cycle the session audio
            }
            let events = stream.push(black_box(&audio[pos..pos + CHUNK])).len();
            pos += CHUNK;
            events
        })
    });
}

/// Whole sessions under one sink mode (includes finish + decode-free tail).
fn bench_session_mode(g: &mut criterion::BenchmarkGroup<'_>, name: &str, mode: ScopedMode) {
    g.bench_function(BenchmarkId::new(name, "12s"), |b| {
        let _scope = echowrite_trace::scoped(mode);
        b.iter(|| {
            let mut stream = StreamingRecognizer::new(engine());
            let mut events = 0;
            for chunk in session_audio().chunks(CHUNK) {
                events += stream.push(black_box(chunk)).len();
            }
            events + stream.finish().len()
        })
    });
}

fn bench_push_overhead(c: &mut Criterion) {
    echowrite_bench::print_bench_environment();
    let mut g = c.benchmark_group("trace_push");
    g.sample_size(10);
    bench_mode(&mut g, "disabled", ScopedMode::Disabled);
    bench_mode(&mut g, "noop", ScopedMode::Noop);
    bench_mode(&mut g, "recording", ScopedMode::Recording(1 << 16));
    g.finish();
}

fn bench_session_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_session");
    g.sample_size(10);
    bench_session_mode(&mut g, "disabled", ScopedMode::Disabled);
    bench_session_mode(&mut g, "recording", ScopedMode::Recording(1 << 16));
    g.finish();
}

criterion_group!(benches, bench_push_overhead, bench_session_overhead);
criterion_main!(benches);
