//! Figs. 20–21 — the battery and CPU model evaluations.

use criterion::{criterion_group, criterion_main, Criterion};
use echowrite_sim::power::{BatteryModel, CpuModel};
use std::hint::black_box;

fn bench_battery(c: &mut Criterion) {
    let battery = BatteryModel::mate9();
    c.bench_function("fig20_battery_series", |b| {
        b.iter(|| battery.series(black_box(30.0), 5.0, 0.152))
    });
}

fn bench_cpu(c: &mut Criterion) {
    let cpu = CpuModel::mate9();
    let fractions = vec![0.01; 360];
    c.bench_function("fig21_cpu_series", |b| {
        b.iter(|| cpu.series(black_box(&fractions), 7))
    });
}

criterion_group!(benches, bench_battery, bench_cpu);
criterion_main!(benches);
