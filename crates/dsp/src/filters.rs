//! One-dimensional filters and differentiators.
//!
//! The EchoWrite pipeline uses:
//! - a simple moving average with window 3 to smooth the raw Doppler profile
//!   (Sec. III-B, Fig. 8(d)),
//! - Holoborodko's noise-robust first-difference (paper Eq. 2) to estimate
//!   Doppler-shift acceleration for stroke segmentation,
//! - median and Gaussian filtering (their 2-D counterparts live in
//!   `echowrite-spectro`; the 1-D versions here are used on profiles and as
//!   reference implementations).

/// Applies a centred simple moving average of the given odd `window` size.
///
/// Edges are handled by shrinking the window to the available samples, so the
/// output has the same length as the input and no phase shift.
///
/// # Panics
///
/// Panics if `window` is even or zero.
///
/// # Example
///
/// ```
/// use echowrite_dsp::filters::moving_average;
/// let y = moving_average(&[0.0, 3.0, 0.0], 3);
/// assert_eq!(y[1], 1.0);
/// ```
pub fn moving_average(x: &[f64], window: usize) -> Vec<f64> {
    assert!(window % 2 == 1 && window > 0, "window must be odd and positive, got {window}");
    let half = window / 2;
    let n = x.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let sum: f64 = x[lo..hi].iter().sum();
        out.push(sum / (hi - lo) as f64);
    }
    out
}

/// Applies a centred median filter of the given odd `window` size.
///
/// Edges shrink the window like [`moving_average`].
///
/// # Panics
///
/// Panics if `window` is even or zero.
pub fn median_filter(x: &[f64], window: usize) -> Vec<f64> {
    assert!(window % 2 == 1 && window > 0, "window must be odd and positive, got {window}");
    let half = window / 2;
    let n = x.len();
    let mut out = Vec::with_capacity(n);
    let mut scratch: Vec<f64> = Vec::with_capacity(window);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        scratch.clear();
        scratch.extend_from_slice(&x[lo..hi]);
        scratch.sort_by(|a, b| a.total_cmp(b));
        out.push(median_of_sorted(&scratch));
    }
    out
}

fn median_of_sorted(s: &[f64]) -> f64 {
    let m = s.len();
    if m % 2 == 1 {
        s[m / 2]
    } else {
        0.5 * (s[m / 2 - 1] + s[m / 2])
    }
}

/// Builds a normalized 1-D Gaussian kernel of the given odd size.
///
/// `sigma` defaults to `size as f64 / 6.0` when `None`, matching the common
/// "kernel spans ±3σ" convention.
///
/// # Panics
///
/// Panics if `size` is even or zero, or `sigma` is non-positive.
pub fn gaussian_kernel(size: usize, sigma: Option<f64>) -> Vec<f64> {
    assert!(size % 2 == 1 && size > 0, "kernel size must be odd and positive, got {size}");
    let sigma = sigma.unwrap_or(size as f64 / 6.0);
    assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
    let half = (size / 2) as isize;
    let mut k: Vec<f64> = (-half..=half)
        .map(|i| (-(i as f64).powi(2) / (2.0 * sigma * sigma)).exp())
        .collect();
    let sum: f64 = k.iter().sum();
    for v in &mut k {
        *v /= sum;
    }
    k
}

/// Convolves `x` with a centred kernel, clamping indices at the edges
/// (replicate padding). Output length equals input length.
///
/// # Panics
///
/// Panics if the kernel is empty or of even length.
pub fn convolve_same(x: &[f64], kernel: &[f64]) -> Vec<f64> {
    assert!(
        !kernel.is_empty() && kernel.len() % 2 == 1,
        "kernel must be odd-length and non-empty"
    );
    let half = (kernel.len() / 2) as isize;
    let n = x.len() as isize;
    let mut out = Vec::with_capacity(x.len());
    for i in 0..n {
        let mut acc = 0.0;
        for (j, &kv) in kernel.iter().enumerate() {
            let idx = (i + j as isize - half).clamp(0, n - 1);
            acc += kv * x[idx as usize];
        }
        out.push(acc);
    }
    out
}

/// Smooths `x` with a Gaussian of the given odd `size` (σ = size/6).
pub fn gaussian_smooth(x: &[f64], size: usize) -> Vec<f64> {
    convolve_same(x, &gaussian_kernel(size, None))
}

/// Holoborodko's smooth noise-robust first-order differentiator (N = 5),
/// exactly the paper's Eq. 2:
///
/// `acc(i) = (2·[y(i+1) − y(i−1)] + [y(i+2) − y(i−2)]) / 8`
///
/// Values within two samples of either edge replicate the nearest interior
/// estimate so the output has the same length as the input. For inputs
/// shorter than 5 samples the result is all zeros (no reliable derivative).
pub fn holoborodko_diff(y: &[f64]) -> Vec<f64> {
    let n = y.len();
    if n < 5 {
        return vec![0.0; n];
    }
    let mut out = vec![0.0; n];
    for i in 2..n - 2 {
        out[i] = (2.0 * (y[i + 1] - y[i - 1]) + (y[i + 2] - y[i - 2])) / 8.0;
    }
    // echolint: allow(no-panic-path) -- out.len() == n >= 5 guarded above
    out[0] = out[2];
    // echolint: allow(no-panic-path) -- out.len() == n >= 5 guarded above
    out[1] = out[2];
    out[n - 1] = out[n - 3];
    out[n - 2] = out[n - 3];
    out
}

/// Central first difference `(y[i+1] − y[i−1]) / 2`, the noisy baseline the
/// Holoborodko filter improves upon. Edges replicate the nearest estimate.
pub fn central_diff(y: &[f64]) -> Vec<f64> {
    let n = y.len();
    if n < 3 {
        return vec![0.0; n];
    }
    let mut out = vec![0.0; n];
    for i in 1..n - 1 {
        out[i] = (y[i + 1] - y[i - 1]) / 2.0;
    }
    // echolint: allow(no-panic-path) -- out.len() == n >= 3 guarded above
    out[0] = out[1];
    out[n - 1] = out[n - 2];
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_flat_is_identity() {
        let x = vec![2.0; 10];
        assert_eq!(moving_average(&x, 3), x);
        assert_eq!(moving_average(&x, 5), x);
    }

    #[test]
    fn moving_average_smooths_spike() {
        let y = moving_average(&[0.0, 0.0, 9.0, 0.0, 0.0], 3);
        assert_eq!(y, vec![0.0, 3.0, 3.0, 3.0, 0.0]);
    }

    #[test]
    fn moving_average_edges_shrink() {
        let y = moving_average(&[1.0, 2.0, 3.0], 5);
        // First output averages elements 0..=2 (window clipped).
        assert!((y[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn moving_average_rejects_even_window() {
        moving_average(&[1.0], 2);
    }

    #[test]
    fn median_removes_impulse_noise() {
        let y = median_filter(&[1.0, 1.0, 99.0, 1.0, 1.0], 3);
        assert_eq!(y, vec![1.0, 1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn median_preserves_step_edge() {
        let y = median_filter(&[0.0, 0.0, 0.0, 5.0, 5.0, 5.0], 3);
        assert_eq!(y, vec![0.0, 0.0, 0.0, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn median_even_window_at_edges_interpolates() {
        // Window of 3 at index 0 covers two samples -> mean of the two middles.
        let y = median_filter(&[0.0, 2.0], 3);
        assert_eq!(y, vec![1.0, 1.0]);
    }

    #[test]
    fn gaussian_kernel_normalized_and_symmetric() {
        let k = gaussian_kernel(5, None);
        assert!((k.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((k[0] - k[4]).abs() < 1e-12);
        assert!((k[1] - k[3]).abs() < 1e-12);
        assert!(k[2] > k[1] && k[1] > k[0]);
    }

    #[test]
    fn gaussian_smooth_preserves_mean_of_flat() {
        let y = gaussian_smooth(&[4.0; 20], 5);
        for v in y {
            assert!((v - 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn convolve_identity_kernel() {
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(convolve_same(&x, &[1.0]), x);
    }

    #[test]
    fn convolve_replicates_edges() {
        // Averaging kernel at the left edge sees x[0] twice.
        let y = convolve_same(&[0.0, 3.0, 3.0], &[1.0 / 3.0; 3]);
        assert!((y[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn holoborodko_exact_on_linear_ramp() {
        // d/di of y = 3i is exactly 3 for the N=5 noise-robust kernel.
        let y: Vec<f64> = (0..20).map(|i| 3.0 * i as f64).collect();
        let d = holoborodko_diff(&y);
        for v in d {
            assert!((v - 3.0).abs() < 1e-12, "{v}");
        }
    }

    #[test]
    fn holoborodko_zero_on_constant() {
        let d = holoborodko_diff(&[7.0; 12]);
        assert!(d.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn holoborodko_short_input_is_zero() {
        assert_eq!(holoborodko_diff(&[1.0, 2.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn holoborodko_suppresses_alternating_noise_vs_central_diff() {
        // y = ramp + period-4 noise (frequency π/2). The Holoborodko kernel's
        // response at π/2 is 0.5 vs 1.0 for the central difference, so its
        // derivative estimate must be closer to the true slope.
        let y: Vec<f64> = (0..52)
            .map(|i| i as f64 + 0.5 * (std::f64::consts::FRAC_PI_2 * i as f64).sin())
            .collect();
        let robust = holoborodko_diff(&y);
        let central = central_diff(&y);
        let err = |d: &[f64]| d[5..45].iter().map(|v| (v - 1.0).abs()).sum::<f64>() / 40.0;
        assert!(
            err(&robust) < 0.6 * err(&central),
            "robust {} not clearly below central {}",
            err(&robust),
            err(&central)
        );
    }

    #[test]
    fn central_diff_on_ramp() {
        let y: Vec<f64> = (0..10).map(|i| 2.0 * i as f64).collect();
        let d = central_diff(&y);
        assert!(d.iter().all(|&v| (v - 2.0).abs() < 1e-12));
    }
}
