//! x86-64 kernel bodies: AVX2 (4 `f64` lanes) and SSE2 (2 lanes; the
//! architectural baseline, so these are plain safe functions).
//!
//! Every body performs the same per-element operations in the same order as
//! its `*_ref` reference in the parent module — no FMA, no reassociation —
//! except the two documented 1e-9 reductions (`fir_complex_dot`,
//! `envelope_charge`), which split the sum across lane accumulators.
//!
//! Safety: all pointer arithmetic is bounded by the slice-length assertions
//! in the parent module's safe wrappers; loads and stores never cross
//! `len()`. `Complex` is `repr(C)` (`re`, `im`), so a `[Complex]` slice is
//! loaded as interleaved `f64` pairs.

use super::conv1d_clamped_range;
use crate::complex::Complex;
use std::arch::x86_64::{
    __m128d, __m256d, _mm256_add_pd, _mm256_addsub_pd, _mm256_and_pd, _mm256_andnot_pd,
    _mm256_castpd128_pd256, _mm256_castpd256_pd128, _mm256_cmp_pd, _mm256_extractf128_pd,
    _mm256_loadu_pd, _mm256_max_pd, _mm256_min_pd, _mm256_movedup_pd, _mm256_mul_pd,
    _mm256_permute2f128_pd, _mm256_permute4x64_pd, _mm256_permute_pd, _mm256_set1_pd,
    _mm256_set_pd, _mm256_setzero_pd, _mm256_storeu_pd, _mm256_sub_pd, _mm256_xor_pd,
    _mm_add_pd, _mm_and_pd, _mm_andnot_pd, _mm_cmpge_pd, _mm_cmplt_pd, _mm_cvtsd_f64,
    _mm_loadu_pd, _mm_max_pd, _mm_min_pd, _mm_mul_pd, _mm_set1_pd, _mm_set_pd, _mm_setzero_pd,
    _mm_shuffle_pd, _mm_storeu_pd, _mm_sub_pd, _mm_unpackhi_pd, _mm_unpacklo_pd, _mm_xor_pd,
    _CMP_GE_OQ, _CMP_LT_OQ,
};

/// `_CMP_*` predicates used with `_mm256_cmp_pd` (ordered, quiet: NaN
/// compares false, exactly like the scalar `<` / `>=`).
const LT: i32 = _CMP_LT_OQ;
const GE: i32 = _CMP_GE_OQ;

#[inline]
fn f64_ptr(s: &[Complex]) -> *const f64 {
    s.as_ptr().cast::<f64>()
}

#[inline]
fn f64_ptr_mut(s: &mut [Complex]) -> *mut f64 {
    s.as_mut_ptr().cast::<f64>()
}

// ---------------------------------------------------------------------------
// Complex multiply building blocks
// ---------------------------------------------------------------------------

/// Complex product of two packed pairs, matching `Complex::mul` exactly:
/// `(ar·br − ai·bi, ar·bi + ai·br)` per 128-bit lane, no FMA.
#[inline]
#[target_feature(enable = "avx2")]
fn cmul_avx2(a: __m256d, b: __m256d) -> __m256d {
    let ar = _mm256_movedup_pd(a); // [ar0, ar0, ar1, ar1]
    let ai = _mm256_permute_pd(a, 0b1111); // [ai0, ai0, ai1, ai1]
    let bswap = _mm256_permute_pd(b, 0b0101); // [bi0, br0, bi1, br1]
    // addsub: even lanes subtract, odd lanes add — exactly the scalar
    // (ar·br − ai·bi, ar·bi + ai·br) with one rounding per operation.
    _mm256_addsub_pd(_mm256_mul_pd(ar, b), _mm256_mul_pd(ai, bswap))
}

/// Complex product of one packed pair (SSE2 has no `addsub`: negate the
/// low lane of the cross product — an exact sign flip — and add, which is
/// bitwise `a − b` in IEEE 754).
#[inline]
#[target_feature(enable = "sse2")]
fn cmul_sse2(a: __m128d, b: __m128d) -> __m128d {
    let ar = _mm_unpacklo_pd(a, a);
    let ai = _mm_unpackhi_pd(a, a);
    let bswap = _mm_shuffle_pd(b, b, 0b01);
    let p2 = _mm_xor_pd(_mm_mul_pd(ai, bswap), _mm_set_pd(0.0, -0.0));
    _mm_add_pd(_mm_mul_pd(ar, b), p2)
}

/// Sign mask that conjugates packed complex pairs (flips `im` lanes).
#[inline]
#[target_feature(enable = "avx2")]
fn conj_mask_avx2() -> __m256d {
    _mm256_set_pd(-0.0, 0.0, -0.0, 0.0)
}

// ---------------------------------------------------------------------------
// Elementwise maps
// ---------------------------------------------------------------------------

#[target_feature(enable = "avx2")]
pub(super) fn mul_into_avx2(dst: &mut [f64], a: &[f64], b: &[f64]) {
    let n = dst.len();
    let (dp, ap, bp) = (dst.as_mut_ptr(), a.as_ptr(), b.as_ptr());
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n == dst.len() == a.len() == b.len().
        unsafe {
            let va = _mm256_loadu_pd(ap.add(i));
            let vb = _mm256_loadu_pd(bp.add(i));
            _mm256_storeu_pd(dp.add(i), _mm256_mul_pd(va, vb));
        }
        i += 4;
    }
    while i < n {
        dst[i] = a[i] * b[i];
        i += 1;
    }
}

#[target_feature(enable = "sse2")]
pub(super) fn mul_into_sse2(dst: &mut [f64], a: &[f64], b: &[f64]) {
    let n = dst.len();
    let (dp, ap, bp) = (dst.as_mut_ptr(), a.as_ptr(), b.as_ptr());
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n == dst.len() == a.len() == b.len().
        unsafe {
            let va = _mm_loadu_pd(ap.add(i));
            let vb = _mm_loadu_pd(bp.add(i));
            _mm_storeu_pd(dp.add(i), _mm_mul_pd(va, vb));
        }
        i += 2;
    }
    if i < n {
        dst[i] = a[i] * b[i];
    }
}

#[target_feature(enable = "avx2")]
pub(super) fn scale_complex_into_avx2(dst: &mut [Complex], src: &[Complex], w: &[f64]) {
    let n = dst.len();
    let (dp, sp, wp) = (f64_ptr_mut(dst), f64_ptr(src), w.as_ptr());
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: complex i+1 ends at f64 offset 2i+4 <= 2n.
        unsafe {
            let z = _mm256_loadu_pd(sp.add(2 * i));
            let wv = _mm_loadu_pd(wp.add(i));
            // [w0, w0, w1, w1]
            let wd = _mm256_permute4x64_pd(_mm256_castpd128_pd256(wv), 0b0101_0000);
            _mm256_storeu_pd(dp.add(2 * i), _mm256_mul_pd(z, wd));
        }
        i += 2;
    }
    if i < n {
        dst[i] = src[i].scale(w[i]);
    }
}

#[target_feature(enable = "sse2")]
pub(super) fn scale_complex_into_sse2(dst: &mut [Complex], src: &[Complex], w: &[f64]) {
    let n = dst.len();
    let (dp, sp) = (f64_ptr_mut(dst), f64_ptr(src));
    for i in 0..n {
        // SAFETY: complex i spans f64 offsets [2i, 2i+2) <= 2n.
        unsafe {
            let z = _mm_loadu_pd(sp.add(2 * i));
            let wd = _mm_set1_pd(w[i]);
            _mm_storeu_pd(dp.add(2 * i), _mm_mul_pd(z, wd));
        }
    }
}

#[target_feature(enable = "avx2")]
pub(super) fn subtract_clamp_avx2(dst: &mut [f64], sub: f64) {
    let n = dst.len();
    let dp = dst.as_mut_ptr();
    let sv = _mm256_set1_pd(sub);
    let zero = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n.
        unsafe {
            let v = _mm256_loadu_pd(dp.add(i));
            _mm256_storeu_pd(dp.add(i), _mm256_max_pd(_mm256_sub_pd(v, sv), zero));
        }
        i += 4;
    }
    for v in dst.iter_mut().skip(i) {
        *v = (*v - sub).max(0.0);
    }
}

#[target_feature(enable = "sse2")]
pub(super) fn subtract_clamp_sse2(dst: &mut [f64], sub: f64) {
    let n = dst.len();
    let dp = dst.as_mut_ptr();
    let sv = _mm_set1_pd(sub);
    let zero = _mm_setzero_pd();
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n.
        unsafe {
            let v = _mm_loadu_pd(dp.add(i));
            _mm_storeu_pd(dp.add(i), _mm_max_pd(_mm_sub_pd(v, sv), zero));
        }
        i += 2;
    }
    for v in dst.iter_mut().skip(i) {
        *v = (*v - sub).max(0.0);
    }
}

#[target_feature(enable = "avx2")]
pub(super) fn subtract_clamp_bg_avx2(dst: &mut [f64], bg: &[f64]) {
    let n = dst.len();
    let (dp, bp) = (dst.as_mut_ptr(), bg.as_ptr());
    let zero = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n == dst.len() == bg.len().
        unsafe {
            let v = _mm256_loadu_pd(dp.add(i));
            let b = _mm256_loadu_pd(bp.add(i));
            _mm256_storeu_pd(dp.add(i), _mm256_max_pd(_mm256_sub_pd(v, b), zero));
        }
        i += 4;
    }
    while i < n {
        dst[i] = (dst[i] - bg[i]).max(0.0);
        i += 1;
    }
}

#[target_feature(enable = "sse2")]
pub(super) fn subtract_clamp_bg_sse2(dst: &mut [f64], bg: &[f64]) {
    let n = dst.len();
    let (dp, bp) = (dst.as_mut_ptr(), bg.as_ptr());
    let zero = _mm_setzero_pd();
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n == dst.len() == bg.len().
        unsafe {
            let v = _mm_loadu_pd(dp.add(i));
            let b = _mm_loadu_pd(bp.add(i));
            _mm_storeu_pd(dp.add(i), _mm_max_pd(_mm_sub_pd(v, b), zero));
        }
        i += 2;
    }
    if i < n {
        dst[i] = (dst[i] - bg[i]).max(0.0);
    }
}

#[target_feature(enable = "avx2")]
pub(super) fn threshold_zero_avx2(dst: &mut [f64], alpha: f64) {
    let n = dst.len();
    let dp = dst.as_mut_ptr();
    let av = _mm256_set1_pd(alpha);
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n.
        unsafe {
            let v = _mm256_loadu_pd(dp.add(i));
            let below = _mm256_cmp_pd::<LT>(v, av);
            _mm256_storeu_pd(dp.add(i), _mm256_andnot_pd(below, v));
        }
        i += 4;
    }
    for v in dst.iter_mut().skip(i) {
        if *v < alpha {
            *v = 0.0;
        }
    }
}

#[target_feature(enable = "sse2")]
pub(super) fn threshold_zero_sse2(dst: &mut [f64], alpha: f64) {
    let n = dst.len();
    let dp = dst.as_mut_ptr();
    let av = _mm_set1_pd(alpha);
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n.
        unsafe {
            let v = _mm_loadu_pd(dp.add(i));
            let below = _mm_cmplt_pd(v, av);
            _mm_storeu_pd(dp.add(i), _mm_andnot_pd(below, v));
        }
        i += 2;
    }
    for v in dst.iter_mut().skip(i) {
        if *v < alpha {
            *v = 0.0;
        }
    }
}

#[target_feature(enable = "avx2")]
pub(super) fn binarize_avx2(dst: &mut [f64], t: f64) {
    let n = dst.len();
    let dp = dst.as_mut_ptr();
    let tv = _mm256_set1_pd(t);
    let one = _mm256_set1_pd(1.0);
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n.
        unsafe {
            let v = _mm256_loadu_pd(dp.add(i));
            let at_or_above = _mm256_cmp_pd::<GE>(v, tv);
            _mm256_storeu_pd(dp.add(i), _mm256_and_pd(at_or_above, one));
        }
        i += 4;
    }
    for v in dst.iter_mut().skip(i) {
        *v = if *v >= t { 1.0 } else { 0.0 };
    }
}

#[target_feature(enable = "sse2")]
pub(super) fn binarize_sse2(dst: &mut [f64], t: f64) {
    let n = dst.len();
    let dp = dst.as_mut_ptr();
    let tv = _mm_set1_pd(t);
    let one = _mm_set1_pd(1.0);
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n.
        unsafe {
            let v = _mm_loadu_pd(dp.add(i));
            let at_or_above = _mm_cmpge_pd(v, tv);
            _mm_storeu_pd(dp.add(i), _mm_and_pd(at_or_above, one));
        }
        i += 2;
    }
    for v in dst.iter_mut().skip(i) {
        *v = if *v >= t { 1.0 } else { 0.0 };
    }
}

#[target_feature(enable = "avx2")]
pub(super) fn abs_diff_broadcast_into_avx2(out: &mut [f64], x: f64, b: &[f64]) {
    let n = out.len();
    let (op, bp) = (out.as_mut_ptr(), b.as_ptr());
    let xv = _mm256_set1_pd(x);
    let absmask = _mm256_set1_pd(f64::from_bits(0x7fff_ffff_ffff_ffff));
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n == out.len() == b.len().
        unsafe {
            let d = _mm256_sub_pd(xv, _mm256_loadu_pd(bp.add(i)));
            _mm256_storeu_pd(op.add(i), _mm256_and_pd(d, absmask));
        }
        i += 4;
    }
    while i < n {
        out[i] = (x - b[i]).abs();
        i += 1;
    }
}

#[target_feature(enable = "sse2")]
pub(super) fn abs_diff_broadcast_into_sse2(out: &mut [f64], x: f64, b: &[f64]) {
    let n = out.len();
    let (op, bp) = (out.as_mut_ptr(), b.as_ptr());
    let xv = _mm_set1_pd(x);
    let absmask = _mm_set1_pd(f64::from_bits(0x7fff_ffff_ffff_ffff));
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n == out.len() == b.len().
        unsafe {
            let d = _mm_sub_pd(xv, _mm_loadu_pd(bp.add(i)));
            _mm_storeu_pd(op.add(i), _mm_and_pd(d, absmask));
        }
        i += 2;
    }
    if i < n {
        out[i] = (x - b[i]).abs();
    }
}

#[target_feature(enable = "avx2")]
pub(super) fn axpy_avx2(acc: &mut [f64], src: &[f64], w: f64) {
    let n = acc.len();
    let (ap, sp) = (acc.as_mut_ptr(), src.as_ptr());
    let wv = _mm256_set1_pd(w);
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n == acc.len() == src.len().
        unsafe {
            let a = _mm256_loadu_pd(ap.add(i));
            let s = _mm256_loadu_pd(sp.add(i));
            _mm256_storeu_pd(ap.add(i), _mm256_add_pd(a, _mm256_mul_pd(wv, s)));
        }
        i += 4;
    }
    while i < n {
        acc[i] += w * src[i];
        i += 1;
    }
}

#[target_feature(enable = "sse2")]
pub(super) fn axpy_sse2(acc: &mut [f64], src: &[f64], w: f64) {
    let n = acc.len();
    let (ap, sp) = (acc.as_mut_ptr(), src.as_ptr());
    let wv = _mm_set1_pd(w);
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n == acc.len() == src.len().
        unsafe {
            let a = _mm_loadu_pd(ap.add(i));
            let s = _mm_loadu_pd(sp.add(i));
            _mm_storeu_pd(ap.add(i), _mm_add_pd(a, _mm_mul_pd(wv, s)));
        }
        i += 2;
    }
    if i < n {
        acc[i] += w * src[i];
    }
}

// ---------------------------------------------------------------------------
// Structured passes
// ---------------------------------------------------------------------------

#[target_feature(enable = "avx2")]
pub(super) fn butterfly_pass_avx2(
    u: &mut [Complex],
    v: &mut [Complex],
    tw: &[Complex],
    inverse: bool,
) {
    let n = u.len();
    let (up, vp, tp) = (f64_ptr_mut(u), f64_ptr_mut(v), f64_ptr(tw));
    let conj = conj_mask_avx2();
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: complexes [i, i+2) span f64 offsets [2i, 2i+4) <= 2n in
        // all three buffers (equal lengths asserted by the wrapper).
        unsafe {
            let mut w = _mm256_loadu_pd(tp.add(2 * i));
            if inverse {
                w = _mm256_xor_pd(w, conj);
            }
            let b = _mm256_loadu_pd(vp.add(2 * i));
            let a = _mm256_loadu_pd(up.add(2 * i));
            let t = cmul_avx2(w, b);
            _mm256_storeu_pd(up.add(2 * i), _mm256_add_pd(a, t));
            _mm256_storeu_pd(vp.add(2 * i), _mm256_sub_pd(a, t));
        }
        i += 2;
    }
    if i < n {
        let w = if inverse { tw[i].conj() } else { tw[i] };
        let t = w * v[i];
        let a = u[i];
        u[i] = a + t;
        v[i] = a - t;
    }
}

#[target_feature(enable = "sse2")]
pub(super) fn butterfly_pass_sse2(
    u: &mut [Complex],
    v: &mut [Complex],
    tw: &[Complex],
    inverse: bool,
) {
    let n = u.len();
    let (up, vp, tp) = (f64_ptr_mut(u), f64_ptr_mut(v), f64_ptr(tw));
    let conj = _mm_set_pd(-0.0, 0.0);
    for i in 0..n {
        // SAFETY: complex i spans f64 offsets [2i, 2i+2) <= 2n in all three
        // buffers (equal lengths asserted by the wrapper).
        unsafe {
            let mut w = _mm_loadu_pd(tp.add(2 * i));
            if inverse {
                w = _mm_xor_pd(w, conj);
            }
            let b = _mm_loadu_pd(vp.add(2 * i));
            let a = _mm_loadu_pd(up.add(2 * i));
            let t = cmul_sse2(w, b);
            _mm_storeu_pd(up.add(2 * i), _mm_add_pd(a, t));
            _mm_storeu_pd(vp.add(2 * i), _mm_sub_pd(a, t));
        }
    }
}

#[target_feature(enable = "avx2")]
pub(super) fn realfft_split_avx2(out: &mut [Complex], packed: &[Complex], tw: &[Complex]) {
    let m = packed.len();
    let (op, pp, tp) = (f64_ptr_mut(out), f64_ptr(packed), f64_ptr(tw));
    let conj = conj_mask_avx2();
    let halfv = _mm256_set1_pd(0.5);
    // [0.5, −0.5] per complex: odd_k = (diff.im · 0.5, diff.re · −0.5),
    // bitwise equal to the reference's (diff.im · 0.5, −(diff.re · 0.5)).
    let half_neghalf = _mm256_set_pd(-0.5, 0.5, -0.5, 0.5);
    let mut k = 1;
    while k + 2 <= m {
        // SAFETY: reads packed[k..k+2] and packed[m−k−1..m−k+1] (both in
        // range for 1 <= k <= m−2), tw[k..k+2], writes out[k..k+2]; the
        // wrapper asserts out.len() >= m and tw.len() >= m.
        unsafe {
            let zk = _mm256_loadu_pd(pp.add(2 * k));
            // [packed[m−k−1], packed[m−k]] → swap halves → [packed[m−k], packed[m−k−1]]
            let zc_raw = _mm256_loadu_pd(pp.add(2 * (m - k - 1)));
            let zc = _mm256_xor_pd(_mm256_permute2f128_pd(zc_raw, zc_raw, 0x01), conj);
            let even = _mm256_mul_pd(_mm256_add_pd(zk, zc), halfv);
            let diff = _mm256_sub_pd(zk, zc);
            // [diff.im, diff.re] per complex, then scale by [0.5, −0.5].
            let odd = _mm256_mul_pd(_mm256_permute_pd(diff, 0b0101), half_neghalf);
            let w = _mm256_loadu_pd(tp.add(2 * k));
            _mm256_storeu_pd(op.add(2 * k), _mm256_add_pd(even, cmul_avx2(w, odd)));
        }
        k += 2;
    }
    while k < m {
        let zk = packed[k];
        let zc = packed[m - k].conj();
        let even = (zk + zc).scale(0.5);
        let diff = zk - zc;
        let odd = Complex::new(diff.im * 0.5, -diff.re * 0.5);
        out[k] = even + tw[k] * odd;
        k += 1;
    }
}

#[target_feature(enable = "sse2")]
pub(super) fn realfft_split_sse2(out: &mut [Complex], packed: &[Complex], tw: &[Complex]) {
    let m = packed.len();
    let (op, pp, tp) = (f64_ptr_mut(out), f64_ptr(packed), f64_ptr(tw));
    let conj = _mm_set_pd(-0.0, 0.0);
    let halfv = _mm_set1_pd(0.5);
    let half_neghalf = _mm_set_pd(-0.5, 0.5);
    for k in 1..m {
        // SAFETY: reads packed[k], packed[m−k], tw[k], writes out[k]; all in
        // range for 1 <= k < m given the wrapper's length assertions.
        unsafe {
            let zk = _mm_loadu_pd(pp.add(2 * k));
            let zc = _mm_xor_pd(_mm_loadu_pd(pp.add(2 * (m - k))), conj);
            let even = _mm_mul_pd(_mm_add_pd(zk, zc), halfv);
            let diff = _mm_sub_pd(zk, zc);
            let odd = _mm_mul_pd(_mm_shuffle_pd(diff, diff, 0b01), half_neghalf);
            let w = _mm_loadu_pd(tp.add(2 * k));
            _mm_storeu_pd(op.add(2 * k), _mm_add_pd(even, cmul_sse2(w, odd)));
        }
    }
}

#[target_feature(enable = "avx2")]
pub(super) fn conv1d_clamped_into_avx2(out: &mut [f64], src: &[f64], taps: &[f64]) {
    let n = src.len();
    let t = taps.len();
    let half = t / 2;
    if n < t {
        return conv1d_clamped_range(out, src, taps, 0, n);
    }
    // Clamped boundary columns, then the unclamped interior vectorized
    // across output positions with a sequential tap loop (each lane keeps
    // the reference's accumulation order).
    let hi = n - t + half + 1;
    conv1d_clamped_range(out, src, taps, 0, half);
    conv1d_clamped_range(out, src, taps, hi, n);
    let (op, sp) = (out.as_mut_ptr(), src.as_ptr());
    let mut i = half;
    while i + 4 <= hi {
        // SAFETY: lanes [i, i+4) read src[i−half+k .. i−half+k+4) which
        // stays within [0, n) for every tap k in [0, t).
        unsafe {
            let mut acc = _mm256_setzero_pd();
            let base = sp.add(i - half);
            for (k, &kv) in taps.iter().enumerate() {
                let s = _mm256_loadu_pd(base.add(k));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(kv), s));
            }
            _mm256_storeu_pd(op.add(i), acc);
        }
        i += 4;
    }
    conv1d_clamped_range(out, src, taps, i, hi);
}

#[target_feature(enable = "sse2")]
pub(super) fn conv1d_clamped_into_sse2(out: &mut [f64], src: &[f64], taps: &[f64]) {
    let n = src.len();
    let t = taps.len();
    let half = t / 2;
    if n < t {
        return conv1d_clamped_range(out, src, taps, 0, n);
    }
    let hi = n - t + half + 1;
    conv1d_clamped_range(out, src, taps, 0, half);
    conv1d_clamped_range(out, src, taps, hi, n);
    let (op, sp) = (out.as_mut_ptr(), src.as_ptr());
    let mut i = half;
    while i + 2 <= hi {
        // SAFETY: lanes [i, i+2) read src[i−half+k .. i−half+k+2) which
        // stays within [0, n) for every tap k in [0, t).
        unsafe {
            let mut acc = _mm_setzero_pd();
            let base = sp.add(i - half);
            for (k, &kv) in taps.iter().enumerate() {
                let s = _mm_loadu_pd(base.add(k));
                acc = _mm_add_pd(acc, _mm_mul_pd(_mm_set1_pd(kv), s));
            }
            _mm_storeu_pd(op.add(i), acc);
        }
        i += 2;
    }
    conv1d_clamped_range(out, src, taps, i, hi);
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

#[target_feature(enable = "avx2")]
pub(super) fn fir_complex_dot_avx2(taps: &[Complex], x: &[f64]) -> Complex {
    let n = taps.len();
    let (tp, xp) = (f64_ptr(taps), x.as_ptr());
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: taps [i, i+4) span f64 offsets [2i, 2i+8) <= 2n and
        // x[i..i+4) <= n (equal lengths asserted by the wrapper).
        unsafe {
            let t0 = _mm256_loadu_pd(tp.add(2 * i));
            let t1 = _mm256_loadu_pd(tp.add(2 * i + 4));
            let xv = _mm256_loadu_pd(xp.add(i)); // [x0, x1, x2, x3]
            // [x0, x0, x1, x1] and [x2, x2, x3, x3]
            let x01 = _mm256_permute4x64_pd(xv, 0b0101_0000);
            let x23 = _mm256_permute4x64_pd(xv, 0b1111_1010);
            acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(t0, x01));
            acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(t1, x23));
        }
        i += 4;
    }
    let acc = _mm256_add_pd(acc0, acc1);
    let pair = _mm_add_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
    let mut sums = [0.0; 2];
    // SAFETY: `sums` is exactly two f64s.
    unsafe { _mm_storeu_pd(sums.as_mut_ptr(), pair) };
    // echolint: allow(no-panic-path) -- `sums` is a fixed-size [f64; 2]
    let mut total = Complex::new(sums[0], sums[1]);
    while i < n {
        total += taps[i].scale(x[i]);
        i += 1;
    }
    total
}

#[target_feature(enable = "sse2")]
pub(super) fn fir_complex_dot_sse2(taps: &[Complex], x: &[f64]) -> Complex {
    let n = taps.len();
    let (tp, xp) = (f64_ptr(taps), x.as_ptr());
    let mut acc0 = _mm_setzero_pd();
    let mut acc1 = _mm_setzero_pd();
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: taps [i, i+2) span f64 offsets [2i, 2i+4) <= 2n and
        // x[i..i+2) <= n.
        unsafe {
            let t0 = _mm_loadu_pd(tp.add(2 * i));
            let t1 = _mm_loadu_pd(tp.add(2 * i + 2));
            acc0 = _mm_add_pd(acc0, _mm_mul_pd(t0, _mm_set1_pd(*xp.add(i))));
            acc1 = _mm_add_pd(acc1, _mm_mul_pd(t1, _mm_set1_pd(*xp.add(i + 1))));
        }
        i += 2;
    }
    let acc = _mm_add_pd(acc0, acc1);
    let mut sums = [0.0; 2];
    // SAFETY: `sums` is exactly two f64s.
    unsafe { _mm_storeu_pd(sums.as_mut_ptr(), acc) };
    // echolint: allow(no-panic-path) -- `sums` is a fixed-size [f64; 2]
    let mut total = Complex::new(sums[0], sums[1]);
    while i < n {
        total += taps[i].scale(x[i]);
        i += 1;
    }
    total
}

#[target_feature(enable = "avx2")]
pub(super) fn fold_min_avx2(xs: &[f64]) -> f64 {
    let n = xs.len();
    let xp = xs.as_ptr();
    let mut acc = _mm256_set1_pd(f64::INFINITY);
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n.
        unsafe { acc = _mm256_min_pd(acc, _mm256_loadu_pd(xp.add(i))) };
        i += 4;
    }
    let pair = _mm_min_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
    let mut m = _mm_cvtsd_f64(_mm_min_pd(pair, _mm_shuffle_pd(pair, pair, 0b01)));
    while i < n {
        m = m.min(xs[i]);
        i += 1;
    }
    m
}

#[target_feature(enable = "sse2")]
pub(super) fn fold_min_sse2(xs: &[f64]) -> f64 {
    let n = xs.len();
    let xp = xs.as_ptr();
    let mut acc = _mm_set1_pd(f64::INFINITY);
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n.
        unsafe { acc = _mm_min_pd(acc, _mm_loadu_pd(xp.add(i))) };
        i += 2;
    }
    let mut m = _mm_cvtsd_f64(_mm_min_pd(acc, _mm_shuffle_pd(acc, acc, 0b01)));
    while i < n {
        m = m.min(xs[i]);
        i += 1;
    }
    m
}

#[target_feature(enable = "avx2")]
pub(super) fn fold_max_avx2(xs: &[f64]) -> f64 {
    let n = xs.len();
    let xp = xs.as_ptr();
    let mut acc = _mm256_set1_pd(f64::NEG_INFINITY);
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n.
        unsafe { acc = _mm256_max_pd(acc, _mm256_loadu_pd(xp.add(i))) };
        i += 4;
    }
    let pair = _mm_max_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
    let mut m = _mm_cvtsd_f64(_mm_max_pd(pair, _mm_shuffle_pd(pair, pair, 0b01)));
    while i < n {
        m = m.max(xs[i]);
        i += 1;
    }
    m
}

#[target_feature(enable = "sse2")]
pub(super) fn fold_max_sse2(xs: &[f64]) -> f64 {
    let n = xs.len();
    let xp = xs.as_ptr();
    let mut acc = _mm_set1_pd(f64::NEG_INFINITY);
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n.
        unsafe { acc = _mm_max_pd(acc, _mm_loadu_pd(xp.add(i))) };
        i += 2;
    }
    let mut m = _mm_cvtsd_f64(_mm_max_pd(acc, _mm_shuffle_pd(acc, acc, 0b01)));
    while i < n {
        m = m.max(xs[i]);
        i += 1;
    }
    m
}

#[target_feature(enable = "avx2")]
pub(super) fn envelope_charge_avx2(xs: &[f64], lo: f64, hi: f64) -> f64 {
    let n = xs.len();
    let xp = xs.as_ptr();
    let lov = _mm256_set1_pd(lo);
    let hiv = _mm256_set1_pd(hi);
    let zero = _mm256_setzero_pd();
    let mut acc = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n.
        unsafe {
            let v = _mm256_loadu_pd(xp.add(i));
            let over = _mm256_max_pd(_mm256_sub_pd(v, hiv), zero);
            let under = _mm256_max_pd(_mm256_sub_pd(lov, v), zero);
            acc = _mm256_add_pd(acc, _mm256_add_pd(over, under));
        }
        i += 4;
    }
    let pair = _mm_add_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
    let mut total = _mm_cvtsd_f64(_mm_add_pd(pair, _mm_shuffle_pd(pair, pair, 0b01)));
    while i < n {
        let v = xs[i];
        if v > hi {
            total += v - hi;
        } else if v < lo {
            total += lo - v;
        }
        i += 1;
    }
    total
}

#[target_feature(enable = "sse2")]
pub(super) fn envelope_charge_sse2(xs: &[f64], lo: f64, hi: f64) -> f64 {
    let n = xs.len();
    let xp = xs.as_ptr();
    let lov = _mm_set1_pd(lo);
    let hiv = _mm_set1_pd(hi);
    let zero = _mm_setzero_pd();
    let mut acc = _mm_setzero_pd();
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n.
        unsafe {
            let v = _mm_loadu_pd(xp.add(i));
            let over = _mm_max_pd(_mm_sub_pd(v, hiv), zero);
            let under = _mm_max_pd(_mm_sub_pd(lov, v), zero);
            acc = _mm_add_pd(acc, _mm_add_pd(over, under));
        }
        i += 2;
    }
    let mut total = _mm_cvtsd_f64(_mm_add_pd(acc, _mm_shuffle_pd(acc, acc, 0b01)));
    while i < n {
        let v = xs[i];
        if v > hi {
            total += v - hi;
        } else if v < lo {
            total += lo - v;
        }
        i += 1;
    }
    total
}
