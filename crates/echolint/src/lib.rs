//! `echolint` — workspace-native static analysis for EchoWrite.
//!
//! A from-scratch lint pass (no external parser; this build environment is
//! offline) that walks the workspace sources with a small Rust lexer and
//! enforces the repo-specific invariants the production north star demands:
//!
//! | rule | enforces |
//! |------|----------|
//! | `no-panic-path` | no `unwrap`/`expect`/`panic!`/`unreachable!`/literal slice indexing in non-test pipeline code |
//! | `no-alloc-hot`  | `*_into` kernels and `// echolint: hot` functions never allocate (`Vec::new`, `vec!`, `clone`, `collect`, `push`, `Box::new`, …) |
//! | `float-order`   | no NaN-sensitive ordering (`partial_cmp`, `f64::max`) where `total_cmp` is required |
//! | `determinism`   | no `HashMap`/`HashSet` in result paths; no `std::time`/`thread::current()` outside `crates/profile` and benches |
//! | `pub-doc`       | `pub` items in pipeline library crates carry doc comments |
//! | `simd-boundary` | raw `std::arch` SIMD surface confined to `crates/dsp/src/kernels` |
//! | `unsafe-boundary` | `unsafe` confined to the kernels module, SAFETY-commented, lane fns reached only via safe wrappers |
//! | `atomics-order` | every `Ordering::*` site carries a reasoned `// ordering:` comment; Relaxed stores need explicit rationale |
//! | `panic-reach`   | graph rule: no panic site transitively reachable from a `// echolint: entry` point (diagnostic carries the call chain) |
//! | `alloc-reach`   | graph rule: no allocation transitively reachable from a hot kernel |
//!
//! The last three families run over a workspace-wide conservative call graph
//! ([`symbols`] → [`callgraph`] → [`reach`]); everything else is per-file.
//! `--format sarif` emits SARIF 2.1.0 for CI annotation, `--graph dot`
//! dumps the resolved graph.
//!
//! Each rule is suppressible only via an auditable marker on the offending
//! line or the line above:
//!
//! ```text
//! // echolint: allow(no-panic-path) -- index bounded by the loop above
//! ```
//!
//! Markers without a `-- <reason>` tail are themselves diagnostics. Hot
//! kernels outside the `*_into` naming convention opt in with
//! `// echolint: hot` on the line before the `fn`.
//!
//! Run it locally with `cargo run -p echolint -- --workspace`; the tier-1
//! integration test `tests/lint.rs` keeps the live tree lint-clean.

pub mod callgraph;
pub mod engine;
pub mod lexer;
pub mod reach;
pub mod rules;
pub mod sarif;
pub mod scanner;
pub mod symbols;

pub use engine::{
    analyze_workspace, classify, lint_file, lint_source, lint_workspace, Analysis, Parallelism,
    PIPELINE_CRATES,
};
pub use rules::{Diagnostic, FileScope, Rule};
pub use sarif::{to_json, to_sarif};
