//! Fixture: every `unsafe` here fires outside the kernels scope; under the
//! kernels scope only the uncovered site at the bottom fires.

fn read_raw(ptr: *const f64) -> f64 {
    // SAFETY: caller guarantees `ptr` is valid and aligned.
    unsafe { *ptr }
}

fn dispatch(a: &[f64]) -> f64 {
    // SAFETY: the backend probe verified the CPU feature for every arm
    // below; the slices pass through unchanged.
    if probe() {
        return unsafe { lane_a(a) };
    }
    unsafe { lane_b(a) }
}

fn naked(a: &[f64]) -> f64 {
    unsafe { lane_b(a) }
}
