//! Fig. 19 — running time of each processing part.
//!
//! Benchmarks every pipeline stage in isolation on a fixed single-stroke
//! trace: STFT+ROI, enhancement, MVCE, segmentation, DTW classification,
//! and word decoding. The paper's claims: the total stays well inside the
//! real-time budget and signal processing dominates.

use criterion::{criterion_group, criterion_main, Criterion};
use echowrite_bench::{engine, stroke_trace};
use echowrite_dsp::Stft;
use echowrite_gesture::Stroke;
use echowrite_profile::mvce::extract_profile_with_guard;
use echowrite_profile::Segmenter;
use echowrite_spectro::{Enhancer, Spectrogram};
use echowrite_synth::EnvironmentProfile;
use std::hint::black_box;

fn bench_stages(c: &mut Criterion) {
    let e = engine();
    let cfg = e.config().clone();
    let audio = stroke_trace(Stroke::S5, EnvironmentProfile::meeting_room(), 7);

    let stft = Stft::new(cfg.stft);
    let frames = stft.process(&audio);
    let spec = Spectrogram::roi_from_stft(&frames, stft.config(), cfg.carrier_hz, cfg.roi_span_hz);
    let enhancer = Enhancer::new(cfg.enhance);
    let binary = enhancer.enhance(&spec);
    let profile = extract_profile_with_guard(&binary, cfg.guard_bins);
    let segmenter = Segmenter::new(cfg.segment);
    let segments = segmenter.segment(&profile);
    let seg = segments.first().copied().expect("one stroke segment");
    let sub = profile.slice(seg.start, seg.end);
    let observed = vec![e.classifier().classify(sub.shifts()).stroke];

    let mut g = c.benchmark_group("fig19_pipeline_stages");
    g.sample_size(20);
    g.bench_function("stft_roi", |b| {
        b.iter(|| {
            let frames = stft.process(black_box(&audio));
            Spectrogram::roi_from_stft(&frames, stft.config(), cfg.carrier_hz, cfg.roi_span_hz)
        })
    });
    g.bench_function("enhance", |b| b.iter(|| enhancer.enhance(black_box(&spec))));
    g.bench_function("mvce_profile", |b| {
        b.iter(|| extract_profile_with_guard(black_box(&binary), cfg.guard_bins))
    });
    g.bench_function("segment", |b| b.iter(|| segmenter.segment(black_box(&profile))));
    g.bench_function("dtw_classify", |b| {
        b.iter(|| e.classifier().classify(black_box(sub.shifts())))
    });
    g.bench_function("decode", |b| b.iter(|| e.decoder().decode(black_box(&observed))));
    g.bench_function("end_to_end_word", |b| {
        b.iter(|| e.recognize_word(black_box(&audio)))
    });
    g.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
