//! Standard text-entry evaluation metrics.
//!
//! The paper reports WPM/LPM and top-k accuracy; the HCI community's
//! standard companions are the **MSD error rate** (minimum string distance
//! between presented and transcribed text, normalized by the larger
//! length) and **KSPC** (keystrokes per character — here, strokes per
//! character, the input-efficiency of the stroke scheme itself). These
//! make the reproduction's sessions comparable to the broader text-entry
//! literature.

use echowrite_gesture::InputScheme;

/// Minimum string distance (Levenshtein over words) between two word
/// sequences.
pub fn word_msd(presented: &[&str], transcribed: &[&str]) -> usize {
    let (n, m) = (presented.len(), transcribed.len());
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let sub = prev[j - 1] + usize::from(presented[i - 1] != transcribed[j - 1]);
            cur[j] = sub.min(prev[j] + 1).min(cur[j - 1] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// MSD error rate: `MSD / max(|presented|, |transcribed|)`, in `[0, 1]`.
///
/// Returns 0 when both texts are empty.
pub fn msd_error_rate(presented: &[&str], transcribed: &[&str]) -> f64 {
    let denom = presented.len().max(transcribed.len());
    if denom == 0 {
        return 0.0;
    }
    word_msd(presented, transcribed) as f64 / denom as f64
}

/// Strokes-per-character of a text under an input scheme: the stroke-count
/// cost of entering it divided by its character count (including one
/// "space" gesture per word boundary, charged as 1 like a keyboard's space
/// bar). The letter→stroke scheme maps each letter to exactly one stroke,
/// so the intrinsic SPC is 1; corrections and retries push the *observed*
/// SPC above it.
pub fn strokes_per_character(words: &[&str], scheme: &InputScheme) -> f64 {
    let mut strokes = 0usize;
    let mut chars = 0usize;
    for (i, w) in words.iter().enumerate() {
        match scheme.encode_word(w) {
            Ok(seq) => strokes += seq.len(),
            Err(_) => continue,
        }
        chars += w.len();
        if i + 1 < words.len() {
            strokes += 1; // word-boundary gesture
            chars += 1; // the space it produces
        }
    }
    if chars == 0 {
        0.0
    } else {
        strokes as f64 / chars as f64
    }
}

/// Observed strokes-per-character when `attempted_strokes` were actually
/// written (including rewrites) to produce `chars` characters of committed
/// text.
pub fn observed_kspc(attempted_strokes: usize, chars: usize) -> f64 {
    if chars == 0 {
        0.0
    } else {
        attempted_strokes as f64 / chars as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msd_basics() {
        assert_eq!(word_msd(&[], &[]), 0);
        assert_eq!(word_msd(&["a"], &[]), 1);
        assert_eq!(word_msd(&["the", "people"], &["the", "people"]), 0);
        assert_eq!(word_msd(&["the", "people"], &["the", "purple"]), 1);
        // Insertion and deletion each cost one.
        assert_eq!(word_msd(&["come", "and", "get"], &["come", "get"]), 1);
        assert_eq!(word_msd(&["come", "get"], &["come", "and", "get"]), 1);
    }

    #[test]
    fn msd_error_rate_normalized() {
        assert_eq!(msd_error_rate(&[], &[]), 0.0);
        assert_eq!(msd_error_rate(&["a", "b"], &["a", "b"]), 0.0);
        assert_eq!(msd_error_rate(&["a", "b"], &["a", "c"]), 0.5);
        assert_eq!(msd_error_rate(&["a"], &["b", "c"]), 1.0);
        // The session example's observed failure mode: one word split into
        // two wrong words = 1 substitution + 1 insertion over 4 targets.
        let presented = ["come", "and", "get", "it"];
        let transcribed = ["some", "i", "i", "get", "it"];
        let rate = msd_error_rate(&presented, &transcribed);
        assert!((rate - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn intrinsic_spc_is_one() {
        let scheme = InputScheme::paper();
        let spc = strokes_per_character(&["the", "people"], &scheme);
        assert!((spc - 1.0).abs() < 1e-12, "letter↔stroke is 1:1, got {spc}");
        assert_eq!(strokes_per_character(&[], &scheme), 0.0);
    }

    #[test]
    fn rewrites_raise_observed_kspc() {
        // Entering 10 characters with one full 5-stroke rewrite.
        let kspc = observed_kspc(15, 10);
        assert!((kspc - 1.5).abs() < 1e-12);
        assert_eq!(observed_kspc(5, 0), 0.0);
    }
}
