//! aarch64 NEON kernel bodies (2 `f64` lanes).
//!
//! NEON is a baseline feature on aarch64, so every function here is a plain
//! safe function; the only `unsafe` is the pointer loads/stores, bounded by
//! the slice-length assertions in the parent module's safe wrappers.
//!
//! Per-element operation order matches the scalar references exactly — no
//! FMA (`vfmaq`) anywhere — so bitwise-pinned kernels stay bitwise. The two
//! 1e-9 reductions (`fir_complex_dot`, `envelope_charge`) split their sums
//! across lane accumulators like the x86 bodies do.

use super::conv1d_clamped_range;
use crate::complex::Complex;
use std::arch::aarch64::{
    float64x2_t, uint64x2_t, vaddq_f64, vaddvq_f64, vbicq_u64, vbslq_f64, vcgeq_f64, vcltq_f64,
    vdupq_n_f64, vextq_f64, vgetq_lane_f64, vld1q_f64, vmaxnmq_f64, vmaxq_f64, vminq_f64,
    vmulq_f64, vreinterpretq_f64_u64, vreinterpretq_u64_f64, vst1q_f64, vsubq_f64,
};

#[inline]
fn f64_ptr(s: &[Complex]) -> *const f64 {
    s.as_ptr().cast::<f64>()
}

#[inline]
fn f64_ptr_mut(s: &mut [Complex]) -> *mut f64 {
    s.as_mut_ptr().cast::<f64>()
}

/// Lane select: `mask ? a : b` per bit (NEON `BSL`).
#[inline]
#[target_feature(enable = "neon")]
fn select(mask: uint64x2_t, a: float64x2_t, b: float64x2_t) -> float64x2_t {
    vbslq_f64(mask, a, b)
}

/// `max(x, 0.0)` matching Rust's `f64::max` (NaN input yields the other
/// operand, i.e. `0.0`): `vmaxnmq` implements IEEE `maxNum`, which does
/// exactly that; plain `vmaxq` would propagate the NaN.
#[inline]
#[target_feature(enable = "neon")]
fn max_zero(v: float64x2_t) -> float64x2_t {
    vmaxnmq_f64(v, vdupq_n_f64(0.0))
}

/// Complex product of one packed pair, matching `Complex::mul` exactly:
/// `(ar·br − ai·bi, ar·bi + ai·br)`, no FMA.
#[inline]
#[target_feature(enable = "neon")]
fn cmul(a: float64x2_t, b: float64x2_t) -> float64x2_t {
    let ar = vdupq_n_f64(vgetq_lane_f64::<0>(a));
    let ai = vdupq_n_f64(vgetq_lane_f64::<1>(a));
    let bswap = vextq_f64::<1>(b, b); // [bi, br]
    let p1 = vmulq_f64(ar, b); // [ar·br, ar·bi]
    let p2 = vmulq_f64(ai, bswap); // [ai·bi, ai·br]
    // Negate lane 0 of p2 (exact sign flip), then add: a + (−b) ≡ a − b.
    let p2s = vreinterpretq_f64_u64(veor(vreinterpretq_u64_f64(p2), neg_lane0_sign()));
    vaddq_f64(p1, p2s)
}

#[inline]
#[target_feature(enable = "neon")]
fn veor(a: uint64x2_t, b: uint64x2_t) -> uint64x2_t {
    std::arch::aarch64::veorq_u64(a, b)
}

/// Sign bit in lane 0 only — xor flips the sign of the first lane.
#[inline]
#[target_feature(enable = "neon")]
fn neg_lane0_sign() -> uint64x2_t {
    let lanes: [u64; 2] = [0x8000_0000_0000_0000, 0];
    // SAFETY: `lanes` is exactly two u64s.
    unsafe { std::arch::aarch64::vld1q_u64(lanes.as_ptr()) }
}

/// Conjugate mask: flips the sign bit of lane 1 (the `im` lane).
#[inline]
#[target_feature(enable = "neon")]
fn conj_mask() -> uint64x2_t {
    let lanes: [u64; 2] = [0, 0x8000_0000_0000_0000];
    // SAFETY: `lanes` is exactly two u64s.
    unsafe { std::arch::aarch64::vld1q_u64(lanes.as_ptr()) }
}

#[target_feature(enable = "neon")]
pub(super) fn mul_into_neon(dst: &mut [f64], a: &[f64], b: &[f64]) {
    let n = dst.len();
    let (dp, ap, bp) = (dst.as_mut_ptr(), a.as_ptr(), b.as_ptr());
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n == dst.len() == a.len() == b.len().
        unsafe {
            let va = vld1q_f64(ap.add(i));
            let vb = vld1q_f64(bp.add(i));
            vst1q_f64(dp.add(i), vmulq_f64(va, vb));
        }
        i += 2;
    }
    if i < n {
        dst[i] = a[i] * b[i];
    }
}

#[target_feature(enable = "neon")]
pub(super) fn scale_complex_into_neon(dst: &mut [Complex], src: &[Complex], w: &[f64]) {
    let n = dst.len();
    let (dp, sp) = (f64_ptr_mut(dst), f64_ptr(src));
    for i in 0..n {
        // SAFETY: complex i spans f64 offsets [2i, 2i+2) <= 2n.
        unsafe {
            let z = vld1q_f64(sp.add(2 * i));
            vst1q_f64(dp.add(2 * i), vmulq_f64(z, vdupq_n_f64(w[i])));
        }
    }
}

#[target_feature(enable = "neon")]
pub(super) fn subtract_clamp_neon(dst: &mut [f64], sub: f64) {
    let n = dst.len();
    let dp = dst.as_mut_ptr();
    let sv = vdupq_n_f64(sub);
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n.
        unsafe {
            let v = vld1q_f64(dp.add(i));
            vst1q_f64(dp.add(i), max_zero(vsubq_f64(v, sv)));
        }
        i += 2;
    }
    if i < n {
        dst[i] = (dst[i] - sub).max(0.0);
    }
}

#[target_feature(enable = "neon")]
pub(super) fn subtract_clamp_bg_neon(dst: &mut [f64], bg: &[f64]) {
    let n = dst.len();
    let (dp, bp) = (dst.as_mut_ptr(), bg.as_ptr());
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n == dst.len() == bg.len().
        unsafe {
            let v = vld1q_f64(dp.add(i));
            let b = vld1q_f64(bp.add(i));
            vst1q_f64(dp.add(i), max_zero(vsubq_f64(v, b)));
        }
        i += 2;
    }
    if i < n {
        dst[i] = (dst[i] - bg[i]).max(0.0);
    }
}

#[target_feature(enable = "neon")]
pub(super) fn threshold_zero_neon(dst: &mut [f64], alpha: f64) {
    let n = dst.len();
    let dp = dst.as_mut_ptr();
    let av = vdupq_n_f64(alpha);
    let zero = vdupq_n_f64(0.0);
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n.
        unsafe {
            let v = vld1q_f64(dp.add(i));
            let below = vcltq_f64(v, av); // NaN compares false, like scalar `<`
            vst1q_f64(dp.add(i), select(below, zero, v));
        }
        i += 2;
    }
    if i < n && dst[i] < alpha {
        dst[i] = 0.0;
    }
}

#[target_feature(enable = "neon")]
pub(super) fn binarize_neon(dst: &mut [f64], t: f64) {
    let n = dst.len();
    let dp = dst.as_mut_ptr();
    let tv = vdupq_n_f64(t);
    let one = vdupq_n_f64(1.0);
    let zero = vdupq_n_f64(0.0);
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n.
        unsafe {
            let v = vld1q_f64(dp.add(i));
            let ge = vcgeq_f64(v, tv);
            vst1q_f64(dp.add(i), select(ge, one, zero));
        }
        i += 2;
    }
    if i < n {
        dst[i] = if dst[i] >= t { 1.0 } else { 0.0 };
    }
}

#[target_feature(enable = "neon")]
pub(super) fn abs_diff_broadcast_into_neon(out: &mut [f64], x: f64, b: &[f64]) {
    let n = out.len();
    let (op, bp) = (out.as_mut_ptr(), b.as_ptr());
    let xv = vdupq_n_f64(x);
    let signbits = vreinterpretq_u64_f64(vdupq_n_f64(-0.0));
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n == out.len() == b.len().
        unsafe {
            let d = vsubq_f64(xv, vld1q_f64(bp.add(i)));
            let a = vreinterpretq_f64_u64(vbicq_u64(vreinterpretq_u64_f64(d), signbits));
            vst1q_f64(op.add(i), a);
        }
        i += 2;
    }
    if i < n {
        out[i] = (x - b[i]).abs();
    }
}

#[target_feature(enable = "neon")]
pub(super) fn axpy_neon(acc: &mut [f64], src: &[f64], w: f64) {
    let n = acc.len();
    let (ap, sp) = (acc.as_mut_ptr(), src.as_ptr());
    let wv = vdupq_n_f64(w);
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n == acc.len() == src.len().
        unsafe {
            let a = vld1q_f64(ap.add(i));
            let s = vld1q_f64(sp.add(i));
            vst1q_f64(ap.add(i), vaddq_f64(a, vmulq_f64(wv, s)));
        }
        i += 2;
    }
    if i < n {
        acc[i] += w * src[i];
    }
}

#[target_feature(enable = "neon")]
pub(super) fn butterfly_pass_neon(
    u: &mut [Complex],
    v: &mut [Complex],
    tw: &[Complex],
    inverse: bool,
) {
    let n = u.len();
    let (up, vp, tp) = (f64_ptr_mut(u), f64_ptr_mut(v), f64_ptr(tw));
    let conj = conj_mask();
    for i in 0..n {
        // SAFETY: complex i spans f64 offsets [2i, 2i+2) <= 2n in all three
        // buffers (equal lengths asserted by the wrapper).
        unsafe {
            let mut w = vld1q_f64(tp.add(2 * i));
            if inverse {
                w = vreinterpretq_f64_u64(veor(vreinterpretq_u64_f64(w), conj));
            }
            let b = vld1q_f64(vp.add(2 * i));
            let a = vld1q_f64(up.add(2 * i));
            let t = cmul(w, b);
            vst1q_f64(up.add(2 * i), vaddq_f64(a, t));
            vst1q_f64(vp.add(2 * i), vsubq_f64(a, t));
        }
    }
}

#[target_feature(enable = "neon")]
pub(super) fn realfft_split_neon(out: &mut [Complex], packed: &[Complex], tw: &[Complex]) {
    let m = packed.len();
    let (op, pp, tp) = (f64_ptr_mut(out), f64_ptr(packed), f64_ptr(tw));
    let conj = conj_mask();
    let halfv = vdupq_n_f64(0.5);
    let half_neghalf = {
        let lanes: [f64; 2] = [0.5, -0.5];
        // SAFETY: `lanes` is exactly two f64s.
        unsafe { vld1q_f64(lanes.as_ptr()) }
    };
    for k in 1..m {
        // SAFETY: reads packed[k], packed[m−k], tw[k], writes out[k]; all in
        // range for 1 <= k < m given the wrapper's length assertions.
        unsafe {
            let zk = vld1q_f64(pp.add(2 * k));
            let zc = vreinterpretq_f64_u64(veor(
                vreinterpretq_u64_f64(vld1q_f64(pp.add(2 * (m - k)))),
                conj,
            ));
            let even = vmulq_f64(vaddq_f64(zk, zc), halfv);
            let diff = vsubq_f64(zk, zc);
            // [diff.im, diff.re] · [0.5, −0.5] — bitwise equal to the
            // reference's (diff.im · 0.5, −(diff.re · 0.5)).
            let odd = vmulq_f64(vextq_f64::<1>(diff, diff), half_neghalf);
            let w = vld1q_f64(tp.add(2 * k));
            vst1q_f64(op.add(2 * k), vaddq_f64(even, cmul(w, odd)));
        }
    }
}

#[target_feature(enable = "neon")]
pub(super) fn conv1d_clamped_into_neon(out: &mut [f64], src: &[f64], taps: &[f64]) {
    let n = src.len();
    let t = taps.len();
    let half = t / 2;
    if n < t {
        return conv1d_clamped_range(out, src, taps, 0, n);
    }
    let hi = n - t + half + 1;
    conv1d_clamped_range(out, src, taps, 0, half);
    conv1d_clamped_range(out, src, taps, hi, n);
    let (op, sp) = (out.as_mut_ptr(), src.as_ptr());
    let mut i = half;
    while i + 2 <= hi {
        // SAFETY: lanes [i, i+2) read src[i−half+k .. i−half+k+2) which
        // stays within [0, n) for every tap k in [0, t).
        unsafe {
            let mut acc = vdupq_n_f64(0.0);
            let base = sp.add(i - half);
            for (k, &kv) in taps.iter().enumerate() {
                let s = vld1q_f64(base.add(k));
                acc = vaddq_f64(acc, vmulq_f64(vdupq_n_f64(kv), s));
            }
            vst1q_f64(op.add(i), acc);
        }
        i += 2;
    }
    conv1d_clamped_range(out, src, taps, i, hi);
}

#[target_feature(enable = "neon")]
pub(super) fn fir_complex_dot_neon(taps: &[Complex], x: &[f64]) -> Complex {
    let n = taps.len();
    let tp = f64_ptr(taps);
    let mut acc0 = vdupq_n_f64(0.0);
    let mut acc1 = vdupq_n_f64(0.0);
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: taps [i, i+2) span f64 offsets [2i, 2i+4) <= 2n and
        // x[i..i+2) <= n (equal lengths asserted by the wrapper).
        unsafe {
            let t0 = vld1q_f64(tp.add(2 * i));
            let t1 = vld1q_f64(tp.add(2 * i + 2));
            acc0 = vaddq_f64(acc0, vmulq_f64(t0, vdupq_n_f64(x[i])));
            acc1 = vaddq_f64(acc1, vmulq_f64(t1, vdupq_n_f64(x[i + 1])));
        }
        i += 2;
    }
    let acc = vaddq_f64(acc0, acc1);
    let mut total = Complex::new(vgetq_lane_f64::<0>(acc), vgetq_lane_f64::<1>(acc));
    while i < n {
        total += taps[i].scale(x[i]);
        i += 1;
    }
    total
}

#[target_feature(enable = "neon")]
pub(super) fn fold_min_neon(xs: &[f64]) -> f64 {
    let n = xs.len();
    let xp = xs.as_ptr();
    let mut acc = vdupq_n_f64(f64::INFINITY);
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n.
        unsafe { acc = vminq_f64(acc, vld1q_f64(xp.add(i))) };
        i += 2;
    }
    let mut m = vgetq_lane_f64::<0>(acc).min(vgetq_lane_f64::<1>(acc));
    while i < n {
        m = m.min(xs[i]);
        i += 1;
    }
    m
}

#[target_feature(enable = "neon")]
pub(super) fn fold_max_neon(xs: &[f64]) -> f64 {
    let n = xs.len();
    let xp = xs.as_ptr();
    let mut acc = vdupq_n_f64(f64::NEG_INFINITY);
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n.
        unsafe { acc = vmaxq_f64(acc, vld1q_f64(xp.add(i))) };
        i += 2;
    }
    let mut m = vgetq_lane_f64::<0>(acc).max(vgetq_lane_f64::<1>(acc));
    while i < n {
        m = m.max(xs[i]);
        i += 1;
    }
    m
}

#[target_feature(enable = "neon")]
pub(super) fn envelope_charge_neon(xs: &[f64], lo: f64, hi: f64) -> f64 {
    let n = xs.len();
    let xp = xs.as_ptr();
    let lov = vdupq_n_f64(lo);
    let hiv = vdupq_n_f64(hi);
    let mut acc = vdupq_n_f64(0.0);
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n.
        unsafe {
            let v = vld1q_f64(xp.add(i));
            let over = max_zero(vsubq_f64(v, hiv));
            let under = max_zero(vsubq_f64(lov, v));
            acc = vaddq_f64(acc, vaddq_f64(over, under));
        }
        i += 2;
    }
    let mut total = vaddvq_f64(acc);
    while i < n {
        let v = xs[i];
        if v > hi {
            total += v - hi;
        } else if v < lo {
            total += lo - v;
        }
        i += 1;
    }
    total
}
