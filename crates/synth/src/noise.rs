//! Stochastic interference sources.
//!
//! The paper's three experiment rooms differ only in their interference
//! statistics: a stationary ambient floor (air conditioning), keyboard
//! clicks and speech babble in the lab, and — in the resting zone — walking
//! passers-by and occasional wideband "rubbing" bursts that overlap the
//! probe band and cause the accuracy drop the paper reports (Sec. V-A2,
//! Sec. VII-B). The device itself contributes short bursty hardware spikes
//! (Sec. III-A).

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Kinds of transient interference events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransientKind {
    /// Keyboard click: a few milliseconds of wideband noise, moderate level.
    KeyboardClick,
    /// Speech babble: hundreds of milliseconds of low-passed noise; most
    /// energy is far below the 20 kHz probe band.
    Babble,
    /// Rubbing/knocking: tens–hundreds of milliseconds of *strong* wideband
    /// noise that does overlap the probe band.
    Rubbing,
    /// Bursty hardware noise: 1–3 ms spikes, "larger than background noise
    /// but lower than echoes".
    HardwareBurst,
}

impl TransientKind {
    /// Duration range of one event in seconds.
    pub fn duration_range(self) -> (f64, f64) {
        match self {
            TransientKind::KeyboardClick => (0.002, 0.008),
            TransientKind::Babble => (0.10, 0.40),
            TransientKind::Rubbing => (0.05, 0.25),
            TransientKind::HardwareBurst => (0.001, 0.003),
        }
    }

    /// Peak amplitude range of one event (full scale = 1).
    pub fn amplitude_range(self) -> (f64, f64) {
        match self {
            TransientKind::KeyboardClick => (0.03, 0.09),
            TransientKind::Babble => (0.04, 0.12),
            TransientKind::Rubbing => (0.08, 0.30),
            TransientKind::HardwareBurst => (0.008, 0.02),
        }
    }

    /// Whether the event's spectrum is low-passed (true for babble, whose
    /// energy sits in the speech band) rather than wideband.
    pub fn is_lowpassed(self) -> bool {
        matches!(self, TransientKind::Babble)
    }
}

/// Standard-normal sample via Box–Muller.
pub fn gauss(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Adds white Gaussian noise of standard deviation `sigma` to `out`.
pub fn add_awgn(out: &mut [f64], sigma: f64, rng: &mut ChaCha8Rng) {
    if sigma <= 0.0 {
        return;
    }
    for o in out.iter_mut() {
        *o += sigma * gauss(rng);
    }
}

/// Adds Poisson-arriving transient events of the given kind at `rate`
/// events per second.
///
/// Each event is enveloped noise: a raised-cosine envelope over a draw from
/// the kind's duration and amplitude ranges. Babble is low-passed with a
/// one-pole filter at ~3.5 kHz so only its weak spectral tail reaches the
/// probe band, matching the paper's observation that "the frequency range of
/// received echoes shares few overlaps with common noises".
pub fn add_transients(
    out: &mut [f64],
    kind: TransientKind,
    rate: f64,
    sample_rate: f64,
    rng: &mut ChaCha8Rng,
) {
    if rate <= 0.0 || out.is_empty() {
        return;
    }
    let duration = out.len() as f64 / sample_rate;
    // Poisson process via exponential inter-arrival times.
    let mut t = -(1.0 - rng.gen::<f64>()).ln() / rate;
    while t < duration {
        let (dlo, dhi) = kind.duration_range();
        let (alo, ahi) = kind.amplitude_range();
        let dur = rng.gen_range(dlo..dhi);
        let amp = rng.gen_range(alo..ahi);
        let start = (t * sample_rate) as usize;
        let len = ((dur * sample_rate) as usize).max(2);
        let alpha = lowpass_alpha(3_500.0, sample_rate);
        let mut lp = 0.0;
        for i in 0..len {
            let idx = start + i;
            if idx >= out.len() {
                break;
            }
            // Raised-cosine envelope.
            let env = 0.5 - 0.5 * (std::f64::consts::TAU * i as f64 / len as f64).cos();
            let mut sample = gauss(rng);
            if kind.is_lowpassed() {
                lp += alpha * (sample - lp);
                sample = lp * 3.0; // compensate the filter's amplitude loss
            }
            out[idx] += amp * env * sample;
        }
        t += -(1.0 - rng.gen::<f64>()).ln() / rate;
    }
}

/// One-pole low-pass coefficient for a cutoff frequency.
fn lowpass_alpha(cutoff: f64, sample_rate: f64) -> f64 {
    let rc = 1.0 / (std::f64::consts::TAU * cutoff);
    let dt = 1.0 / sample_rate;
    dt / (rc + dt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn gauss_moments() {
        let mut r = rng(1);
        let samples: Vec<f64> = (0..20_000).map(|_| gauss(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / samples.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn awgn_level() {
        let mut out = vec![0.0; 10_000];
        add_awgn(&mut out, 0.05, &mut rng(2));
        let rms = (out.iter().map(|x| x * x).sum::<f64>() / out.len() as f64).sqrt();
        assert!((rms - 0.05).abs() < 0.005, "rms {rms}");
    }

    #[test]
    fn awgn_zero_sigma_is_noop() {
        let mut out = vec![1.0; 16];
        add_awgn(&mut out, 0.0, &mut rng(3));
        assert!(out.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn transients_deterministic_per_seed() {
        let mut a = vec![0.0; 44_100];
        let mut b = vec![0.0; 44_100];
        add_transients(&mut a, TransientKind::KeyboardClick, 5.0, 44_100.0, &mut rng(7));
        add_transients(&mut b, TransientKind::KeyboardClick, 5.0, 44_100.0, &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn transient_rate_scales_event_energy() {
        let energy = |rate: f64| {
            let mut out = vec![0.0; 4 * 44_100];
            add_transients(&mut out, TransientKind::KeyboardClick, rate, 44_100.0, &mut rng(11));
            out.iter().map(|x| x * x).sum::<f64>()
        };
        assert!(energy(20.0) > 3.0 * energy(1.0));
        assert_eq!(energy(0.0), 0.0);
    }

    #[test]
    fn rubbing_is_stronger_than_clicks() {
        let energy = |kind| {
            let mut out = vec![0.0; 4 * 44_100];
            add_transients(&mut out, kind, 4.0, 44_100.0, &mut rng(13));
            out.iter().map(|x| x * x).sum::<f64>()
        };
        assert!(energy(TransientKind::Rubbing) > 5.0 * energy(TransientKind::KeyboardClick));
    }

    #[test]
    fn babble_energy_concentrated_at_low_frequency() {
        use echowrite_dsp::{Stft, StftConfig, WindowKind};
        let fs = 44_100.0;
        let mut out = vec![0.0; 2 * 44_100];
        add_transients(&mut out, TransientKind::Babble, 8.0, fs, &mut rng(17));
        let stft = Stft::new(StftConfig {
            fft_size: 4096,
            hop: 2048,
            window: WindowKind::Hann,
            sample_rate: fs,
        });
        let frames = stft.process(&out);
        let cfg = stft.config();
        let low_band: f64 = frames
            .iter()
            .flat_map(|f| f[..cfg.frequency_bin(4_000.0)].iter())
            .map(|m| m * m)
            .sum();
        let probe_band: f64 = frames
            .iter()
            .flat_map(|f| f[cfg.frequency_bin(19_500.0)..cfg.frequency_bin(20_500.0)].iter())
            .map(|m| m * m)
            .sum();
        assert!(
            low_band > 50.0 * probe_band,
            "babble not low-passed enough: low {low_band}, probe {probe_band}"
        );
    }

    #[test]
    fn hardware_bursts_are_short_and_small() {
        let (dlo, dhi) = TransientKind::HardwareBurst.duration_range();
        assert!(dhi <= 0.005 && dlo > 0.0);
        let (_, ahi) = TransientKind::HardwareBurst.amplitude_range();
        let (elo, _) = TransientKind::Rubbing.amplitude_range();
        assert!(ahi < elo, "hardware bursts must stay below echo-like levels");
    }

    #[test]
    fn empty_buffer_is_fine() {
        let mut out: Vec<f64> = vec![];
        add_transients(&mut out, TransientKind::Rubbing, 10.0, 44_100.0, &mut rng(1));
        assert!(out.is_empty());
    }
}
