//! `trace-stitch`: merge client- and server-side Chrome traces into one
//! timeline and correlate them by wire request id (DESIGN.md §6.11).
//!
//! The wire client assigns every request a `request_id`; the serving
//! layer threads it through push spans and flight-ring entries, and both
//! sides export Chrome `trace_event` JSON carrying `"req":<id>` args —
//! the client under `pid` 0, the server under `pid` 1. Stitching is
//! therefore a pure string-level splice of the two `traceEvents` arrays
//! plus a set intersection on the ids: no JSON parser dependency, which
//! keeps the helper usable from the dependency-free bench binaries.

use std::collections::BTreeSet;
use std::fmt::Write as _;

/// The Chrome-trace envelope both sides emit.
const HEADER: &str = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
/// The envelope's closing bytes.
const TRAILER: &str = "]}";

/// A client-side Chrome-trace builder: events render under `pid` 0 (the
/// client half of a stitched timeline), each carrying the wire
/// `request_id` it belongs to, so the trace correlates 1:1 against
/// server-side flight dumps and recordings.
#[derive(Debug, Default)]
pub struct ClientTrace {
    events: Vec<String>,
}

impl ClientTrace {
    /// An empty client trace.
    pub fn new() -> Self {
        ClientTrace { events: Vec::new() }
    }

    /// Records a completed request span: `ts_us` is the client's logical
    /// timestamp (e.g. cumulative request ordinal or audio time),
    /// `dur_us` the measured round-trip.
    pub fn span(&mut self, name: &str, request_id: u64, ts_us: u64, dur_us: u64) {
        let mut ev = String::with_capacity(96);
        let _ = write!(
            ev,
            "{{\"name\":\"{name}\",\"cat\":\"client\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\
             \"ts\":{ts_us},\"dur\":{dur_us},\"args\":{{\"req\":{request_id}}}}}"
        );
        self.events.push(ev);
    }

    /// Records an instant (verdicts, errors).
    pub fn instant(&mut self, name: &str, request_id: u64, ts_us: u64) {
        let mut ev = String::with_capacity(96);
        let _ = write!(
            ev,
            "{{\"name\":\"{name}\",\"cat\":\"client\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\
             \"tid\":0,\"ts\":{ts_us},\"args\":{{\"req\":{request_id}}}}}"
        );
        self.events.push(ev);
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the Chrome-trace JSON document (same envelope as the
    /// server-side exports, so [`stitch_traces`] can splice them).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 128);
        out.push_str(HEADER);
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\
             \"args\":{\"name\":\"wire client\"}}",
        );
        for ev in &self.events {
            out.push(',');
            out.push_str(ev);
        }
        out.push_str(TRAILER);
        out
    }
}

/// Every nonzero `"req":<id>` correlation id in a Chrome-trace document.
/// Zero is the "untagged" sentinel on the server side and is skipped.
pub fn request_ids(chrome_json: &str) -> BTreeSet<u64> {
    let mut out = BTreeSet::new();
    let needle = "\"req\":";
    let mut rest = chrome_json;
    while let Some(pos) = rest.find(needle) {
        rest = rest.get(pos + needle.len()..).unwrap_or_default();
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        if let Ok(id) = digits.parse::<u64>() {
            if id != 0 {
                out.insert(id);
            }
        }
    }
    out
}

/// Splices two Chrome-trace documents into one merged timeline (client
/// events keep `pid` 0, server events `pid` 1 — Perfetto renders them as
/// two processes on a shared clock).
///
/// # Errors
///
/// Returns a description when either input does not carry the expected
/// envelope.
pub fn stitch_traces(client: &str, server: &str) -> Result<String, String> {
    let inner = |doc: &str, which: &str| -> Result<String, String> {
        let body = doc
            .strip_prefix(HEADER)
            .and_then(|d| d.strip_suffix(TRAILER))
            .ok_or_else(|| format!("{which} trace lacks the Chrome-trace envelope"))?;
        Ok(body.to_string())
    };
    let client_events = inner(client, "client")?;
    let server_events = inner(server, "server")?;
    let mut out = String::with_capacity(client.len() + server.len());
    out.push_str(HEADER);
    out.push_str(&client_events);
    if !client_events.is_empty() && !server_events.is_empty() {
        out.push(',');
    }
    out.push_str(&server_events);
    out.push_str(TRAILER);
    Ok(out)
}

/// The request-id correlation between a client trace and a server trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StitchReport {
    /// Ids present on both sides — the stitched pairs.
    pub matched: usize,
    /// Server-side ids with no client counterpart. Nonzero means the
    /// server invented or corrupted a correlation id: always a bug.
    pub server_only: Vec<u64>,
    /// Distinct nonzero ids the client trace carries.
    pub client_total: usize,
}

impl StitchReport {
    /// True when every server-side id stitches to a client request.
    pub fn is_one_to_one(&self) -> bool {
        self.server_only.is_empty() && self.matched > 0
    }
}

/// Correlates the nonzero request ids of two Chrome-trace documents.
pub fn correlate(client: &str, server: &str) -> StitchReport {
    let client_ids = request_ids(client);
    let server_ids = request_ids(server);
    StitchReport {
        matched: server_ids.intersection(&client_ids).count(),
        server_only: server_ids.difference(&client_ids).copied().collect(),
        client_total: client_ids.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server_doc() -> String {
        // The flight exporter's shape: sid/req args under pid 1.
        format!(
            "{HEADER}{{\"name\":\"push\",\"cat\":\"serve\",\"pid\":1,\"tid\":6,\"ts\":10,\
             \"ph\":\"X\",\"dur\":5,\"args\":{{\"sid\":7,\"req\":42}}}},\
             {{\"name\":\"session_open\",\"cat\":\"serve\",\"pid\":1,\"tid\":6,\"ts\":0,\
             \"ph\":\"i\",\"s\":\"t\",\"args\":{{\"sid\":7,\"req\":41}}}},\
             {{\"name\":\"reap_scan\",\"cat\":\"serve\",\"pid\":1,\"tid\":6,\"ts\":20,\
             \"ph\":\"i\",\"s\":\"t\",\"args\":{{\"sid\":0,\"req\":0}}}}{TRAILER}"
        )
    }

    #[test]
    fn client_trace_renders_the_shared_envelope() {
        let mut t = ClientTrace::new();
        assert!(t.is_empty());
        t.span("push", 42, 10, 900);
        t.instant("shed", 43, 20);
        assert_eq!(t.len(), 2);
        let json = t.to_chrome_json();
        assert!(json.starts_with(HEADER));
        assert!(json.ends_with(TRAILER));
        assert!(json.contains("\"pid\":0"));
        assert!(json.contains("\"req\":42"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn request_id_extraction_skips_the_untagged_sentinel() {
        let ids = request_ids(&server_doc());
        assert_eq!(ids.into_iter().collect::<Vec<_>>(), vec![41, 42]);
    }

    #[test]
    fn stitch_splices_and_correlates_one_to_one() {
        let mut client = ClientTrace::new();
        client.span("open", 41, 0, 100);
        client.span("push", 42, 10, 900);
        client.span("finish", 99, 30, 80); // client-only id: allowed
        let client_json = client.to_chrome_json();
        let server_json = server_doc();

        let merged = stitch_traces(&client_json, &server_json).expect("both well-formed");
        assert!(merged.starts_with(HEADER) && merged.ends_with(TRAILER));
        assert!(merged.contains("\"pid\":0") && merged.contains("\"pid\":1"));
        assert_eq!(merged.matches('{').count(), merged.matches('}').count());

        let report = correlate(&client_json, &server_json);
        assert_eq!(report.matched, 2);
        assert!(report.server_only.is_empty());
        assert_eq!(report.client_total, 3);
        assert!(report.is_one_to_one());
    }

    #[test]
    fn server_only_ids_fail_the_one_to_one_check() {
        let client = ClientTrace::new().to_chrome_json();
        let report = correlate(&client, &server_doc());
        assert_eq!(report.matched, 0);
        assert_eq!(report.server_only, vec![41, 42]);
        assert!(!report.is_one_to_one());
    }

    #[test]
    fn stitch_rejects_foreign_envelopes() {
        assert!(stitch_traces("[]", &server_doc()).is_err());
        assert!(stitch_traces(&server_doc(), "{\"traceEvents\":{}}").is_err());
    }
}
