//! A small Rust lexer — just enough fidelity for lint-rule matching.
//!
//! Produces a token stream (identifiers, literals, punctuation) with line
//! numbers, plus a separate list of comments. Strings, raw strings, char
//! literals, lifetimes, and nested block comments are recognized so that
//! rule patterns never fire on text inside literals or comments. The lexer
//! is intentionally lossy everywhere else: it does not distinguish keywords
//! from identifiers (the scanner does that by spelling) and it collapses
//! multi-character operators into single punctuation tokens.

/// What kind of token was lexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `Vec`, `unwrap`, …).
    Ident,
    /// Integer literal (`42`, `0xFF`, `1_000`).
    Int,
    /// Float literal (`1.5`, `2e-3`).
    Float,
    /// String, raw-string, byte-string, or char literal.
    Literal,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// A single punctuation character (`.`/`:`/`[`/`(`/`!`…).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// The token text (single character for punctuation; literals keep only
    /// their opening delimiter to stay cheap).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }
}

/// A comment, kept out of the token stream.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Full comment text including the `//` / `/*` introducer.
    pub text: String,
    /// `///`, `//!`, or `/** … */` — rustdoc.
    pub is_doc: bool,
    /// Whether any non-comment token precedes it on the same line
    /// (a trailing comment annotates its own line, not the next).
    pub trailing: bool,
}

/// Lexer output: tokens plus comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Unrecognized bytes are skipped — the goal is robustness on
/// arbitrary repository text, not validation.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Line of the most recently emitted token, to classify trailing comments.
    let mut last_tok_line: u32 = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = &src[start..i];
                out.comments.push(Comment {
                    line,
                    is_doc: text.starts_with("///") || text.starts_with("//!"),
                    trailing: last_tok_line == line,
                    text: text.to_string(),
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                out.comments.push(Comment {
                    line: start_line,
                    is_doc: text.starts_with("/**") || text.starts_with("/*!"),
                    trailing: last_tok_line == start_line,
                    text: text.to_string(),
                });
            }
            b'"' => {
                let l = line;
                i = skip_string(b, i, &mut line);
                out.tokens.push(Token { kind: TokKind::Literal, text: "\"".into(), line: l });
                last_tok_line = l;
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let l = line;
                i = skip_raw_or_byte_string(b, i, &mut line);
                out.tokens.push(Token { kind: TokKind::Literal, text: "\"".into(), line: l });
                last_tok_line = l;
            }
            b'\'' => {
                // Disambiguate char literal from lifetime: a lifetime is `'`
                // followed by an identifier NOT closed by another `'`.
                let is_lifetime = i + 1 < b.len()
                    && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_')
                    && !(i + 2 < b.len() && b[i + 2] == b'\'');
                if is_lifetime {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: src[i..j].to_string(),
                        line,
                    });
                    last_tok_line = line;
                    i = j;
                } else {
                    let l = line;
                    i = skip_char_literal(b, i, &mut line);
                    out.tokens.push(Token { kind: TokKind::Literal, text: "'".into(), line: l });
                    last_tok_line = l;
                }
            }
            c if c.is_ascii_digit() => {
                let (j, kind) = lex_number(b, i);
                out.tokens.push(Token { kind, text: src[i..j].to_string(), line });
                last_tok_line = line;
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut j = i + 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: src[i..j].to_string(),
                    line,
                });
                last_tok_line = line;
                i = j;
            }
            _ => {
                // Non-ASCII bytes (inside identifiers or operators) are
                // skipped; ASCII punctuation becomes a one-char token.
                if c.is_ascii() {
                    out.tokens.push(Token {
                        kind: TokKind::Punct,
                        text: (c as char).to_string(),
                        line,
                    });
                    last_tok_line = line;
                }
                i += 1;
            }
        }
    }
    out
}

/// Whether position `i` starts `r"`, `r#"`, `b"`, `br"`, `br#"`, or `b'`.
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let rest = &b[i..];
    if rest.starts_with(b"r\"") || rest.starts_with(b"r#") || rest.starts_with(b"b\"") {
        return true;
    }
    if rest.starts_with(b"b'") {
        return true;
    }
    rest.starts_with(b"br\"") || rest.starts_with(b"br#")
}

/// Skips a `"…"` string starting at `i`; returns the index just past it.
fn skip_string(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Skips `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, or `b'…'` starting at `i`.
fn skip_raw_or_byte_string(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i;
    // Consume the `b` / `r` / `br` prefix.
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'\'' {
        return skip_char_literal(b, j, line);
    }
    let raw = j < b.len() && b[j] == b'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= b.len() || b[j] != b'"' {
        return j; // not actually a string start; let the caller move on
    }
    if !raw {
        return skip_string(b, j, line);
    }
    j += 1;
    // Raw string: scan for `"` followed by `hashes` × `#`, no escapes.
    while j < b.len() {
        if b[j] == b'\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < b.len() && b[k] == b'#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        j += 1;
    }
    j
}

/// Skips a `'…'` char (or byte-char) literal starting at the `'`.
fn skip_char_literal(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            b'\n' => {
                *line += 1;
                return j; // unterminated; bail at end of line
            }
            _ => j += 1,
        }
    }
    j
}

/// Lexes a number starting at digit `i`; returns (end, kind). A `.` joins
/// the number only when followed by a digit, so `0..4` and `1.max(2)` stay
/// integer + punctuation.
fn lex_number(b: &[u8], i: usize) -> (usize, TokKind) {
    let mut j = i;
    let mut kind = TokKind::Int;
    // Hex/octal/binary prefix.
    if b[j] == b'0' && j + 1 < b.len() && matches!(b[j + 1], b'x' | b'o' | b'b') {
        j += 2;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        return (j, TokKind::Int);
    }
    while j < b.len() {
        let c = b[j];
        if c.is_ascii_digit() || c == b'_' {
            j += 1;
        } else if c == b'.' && kind == TokKind::Int {
            if j + 1 < b.len() && b[j + 1].is_ascii_digit() {
                kind = TokKind::Float;
                j += 1;
            } else {
                break;
            }
        } else if (c == b'e' || c == b'E')
            && j + 1 < b.len()
            && (b[j + 1].is_ascii_digit() || b[j + 1] == b'-' || b[j + 1] == b'+')
        {
            kind = TokKind::Float;
            j += 2;
        } else if c.is_ascii_alphabetic() {
            // Type suffix (`u32`, `f64`). A float suffix keeps Float kind.
            if c == b'f' {
                kind = TokKind::Float;
            }
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            break;
        } else {
            break;
        }
    }
    (j, kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let l = lex("fn main() {\n    x.unwrap();\n}\n");
        assert!(l.tokens.iter().any(|t| t.is_ident("unwrap") && t.line == 2));
        assert!(l.tokens.iter().any(|t| t.is_punct('{') && t.line == 1));
    }

    #[test]
    fn strings_hide_contents() {
        let l = lex(r#"let s = "a.unwrap() // not a comment"; s.len();"#);
        assert_eq!(idents(r#"let s = "a.unwrap()"; s.len();"#), vec!["let", "s", "s", "len"]);
        assert!(l.comments.is_empty());
    }

    #[test]
    fn raw_strings_and_escapes() {
        assert_eq!(idents(r##"let s = r#"embedded "quote" panic!()"#; t"##), vec!["let", "s", "t"]);
        assert_eq!(idents(r#"let c = '\''; let d = '"'; x"#), vec!["let", "c", "let", "d", "x"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 3);
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Literal).count(), 0);
    }

    #[test]
    fn comments_split_doc_and_trailing() {
        let l = lex("/// doc\nlet x = 1; // trailing\n// plain\n");
        assert_eq!(l.comments.len(), 3);
        assert!(l.comments[0].is_doc && !l.comments[0].trailing);
        assert!(!l.comments[1].is_doc && l.comments[1].trailing);
        assert!(!l.comments[2].is_doc && !l.comments[2].trailing);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still */ fn x() {}");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(idents("/* a /* b */ c */ fn x() {}"), vec!["fn", "x"]);
    }

    #[test]
    fn range_vs_float() {
        let toks = lex("a[0..4]; b[1]; c = 1.5; d = 2.0e-3;").tokens;
        let ints: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Int).map(|t| t.text.as_str()).collect();
        let floats: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Float).map(|t| t.text.as_str()).collect();
        assert_eq!(ints, vec!["0", "4", "1"]);
        assert_eq!(floats, vec!["1.5", "2.0e-3"]);
    }

    #[test]
    fn method_call_on_int_literal() {
        let toks = lex("1.max(2)").tokens;
        assert!(toks[0].kind == TokKind::Int);
        assert!(toks[1].is_punct('.'));
        assert!(toks[2].is_ident("max"));
    }
}
