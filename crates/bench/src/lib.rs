//! Shared fixtures for the EchoWrite benchmarks.
//!
//! Each bench target regenerates the workload behind one paper table or
//! figure (see `DESIGN.md` §5 for the experiment index). The fixtures here
//! render deterministic audio traces once so the benches measure the
//! pipeline, not the synthesizer.

pub mod stitch;

use echowrite::EchoWrite;
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use std::sync::OnceLock;

/// A process-wide engine (template generation costs a few hundred ms).
pub fn engine() -> &'static EchoWrite {
    static E: OnceLock<EchoWrite> = OnceLock::new();
    E.get_or_init(EchoWrite::new)
}

/// Snapshot of the benchmark host: hardware threads, the worker count
/// [`Parallelism::Auto`](echowrite::Parallelism) resolves to, and the
/// runtime-dispatched SIMD backend with every feature the dispatcher
/// detected. Recorded in each `BENCH_*.json` environment block so a number
/// can never be compared across hosts (or `ECHOWRITE_SIMD` overrides)
/// without noticing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEnvironment {
    /// Hardware threads reported by the OS.
    pub cpus: usize,
    /// Workers `Parallelism::Auto` resolves to for an unbounded workload.
    pub effective_parallelism: usize,
    /// The SIMD backend the kernel dispatcher selected (honours the
    /// `ECHOWRITE_SIMD` override, so a forced-scalar run records `scalar`).
    pub simd_backend: &'static str,
    /// Every SIMD feature detected on the host, selected or not.
    pub simd_features: &'static [&'static str],
}

impl std::fmt::Display for BenchEnvironment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cpus={} effective_parallelism={} simd_backend={} simd_features={}",
            self.cpus,
            self.effective_parallelism,
            self.simd_backend,
            self.simd_features.join(",")
        )
    }
}

/// Probes the current process's benchmark environment.
pub fn bench_environment() -> BenchEnvironment {
    BenchEnvironment {
        cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        effective_parallelism: echowrite::Parallelism::Auto.workers(usize::MAX),
        simd_backend: echowrite_dsp::kernels::backend().name(),
        simd_features: echowrite_dsp::kernels::detected_features(),
    }
}

/// Prints the environment line once per process — every bench target calls
/// this so each run's log states what the numbers were measured with.
pub fn print_bench_environment() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        println!("bench_environment {}", bench_environment());
    });
}

/// Renders a single-stroke trace in the given environment.
pub fn stroke_trace(stroke: Stroke, env: EnvironmentProfile, seed: u64) -> Vec<f64> {
    let perf = Writer::new(WriterParams::nominal(), seed).write_stroke(stroke);
    Scene::new(DeviceProfile::mate9(), env, seed).render(&perf.trajectory)
}

/// Renders a word trace (stroke sequence of `word`) in the meeting room.
pub fn word_trace(word: &str, seed: u64) -> Vec<f64> {
    let seq = engine().scheme().encode_word(word).expect("letters only");
    let perf = Writer::new(WriterParams::nominal(), seed).write_sequence(&seq);
    Scene::new(
        DeviceProfile::mate9(),
        EnvironmentProfile::meeting_room(),
        seed,
    )
    .render(&perf.trajectory)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn environment_probe_is_sane() {
        let env = bench_environment();
        assert!(env.cpus >= 1);
        assert!(env.effective_parallelism >= 1);
        assert!(!env.simd_backend.is_empty());
        let line = env.to_string();
        assert!(line.contains("cpus="));
        assert!(line.contains("simd_backend="));
    }

    #[test]
    fn fixtures_render() {
        let t = stroke_trace(Stroke::S2, EnvironmentProfile::meeting_room(), 1);
        assert!(t.len() > 44_100);
        let w = word_trace("me", 1);
        assert!(w.len() > t.len() / 2);
    }
}
