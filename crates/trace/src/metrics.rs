//! Lock-free metric primitives — counters, gauges, fixed-bound histograms —
//! and the Prometheus text-exposition writer. One registry vocabulary
//! shared by the serving layer (`echowrite-serve`) and the offline
//! evaluation harness (`crates/bench`), so the two never drift.
//!
//! Everything here is plain atomics: recording an observation never takes
//! a lock, so pipeline and shard-worker threads can't contend.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        // ordering: Relaxed — an independent statistic; no other data is
        // synchronized through it, and snapshot skew across metrics is fine.
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        // ordering: Relaxed — an independent statistic; no other data is
        // synchronized through it, and snapshot skew across metrics is fine.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — an independent statistic; no other data is
        // synchronized through it, and snapshot skew across metrics is fine.
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that moves both ways (stored non-negative; `dec` saturates at
/// zero rather than wrapping, so a racy transient can never explode the
/// reported depth).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Adds one.
    pub fn inc(&self) {
        // ordering: Relaxed — an independent statistic; no other data is
        // synchronized through it, and snapshot skew across metrics is fine.
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one, saturating at zero.
    pub fn dec(&self) {
        // ordering: Relaxed — an independent statistic; no other data is
        // synchronized through it, and snapshot skew across metrics is fine.
        let _ = self.0.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(1))
        });
    }

    /// Sets the value outright.
    pub fn set(&self, v: u64) {
        // ordering: Relaxed — an independent statistic; no other data is
        // synchronized through it, and snapshot skew across metrics is fine.
        // echolint: allow(atomics-order) -- Relaxed store publishes a standalone gauge value; it gates no other data
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — an independent statistic; no other data is
        // synchronized through it, and snapshot skew across metrics is fine.
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bound histogram over caller-supplied finite bucket upper bounds
/// plus an explicit `+Inf` bucket (cumulative-bucket semantics at snapshot
/// time, Prometheus style).
///
/// Over-range observations are *counted*, not dropped: they land in the
/// `+Inf` bucket, and the running sum saturates at `u64::MAX` instead of
/// wrapping.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Creates a histogram over `bounds` (finite upper bounds, ascending);
    /// one extra `+Inf` bucket is always appended.
    pub fn new(bounds: &'static [u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w.first() <= w.last()), "bounds must ascend");
        Histogram {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// The finite bucket upper bounds this histogram was built with.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Records one observation. Values above the last finite bound go to
    /// the `+Inf` bucket; the sum saturates rather than wrapping.
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        if let Some(b) = self.buckets.get(idx) {
            // ordering: Relaxed — an independent statistic; no other data is
            // synchronized through it, and snapshot skew across metrics is fine.
            b.fetch_add(1, Ordering::Relaxed);
        }
        let _ = self
            .sum
            // ordering: Relaxed — an independent statistic; no other data is
            // synchronized through it, and snapshot skew across metrics is fine.
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| Some(s.saturating_add(v)));
        // ordering: Relaxed — an independent statistic; no other data is
        // synchronized through it, and snapshot skew across metrics is fine.
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        // ordering: Relaxed — an independent statistic; no other data is
        // synchronized through it, and snapshot skew across metrics is fine.
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        // ordering: Relaxed — an independent statistic; no other data is
        // synchronized through it, and snapshot skew across metrics is fine.
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (non-cumulative), the `+Inf` bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        // ordering: Relaxed — an independent statistic; no other data is
        // synchronized through it, and snapshot skew across metrics is fine.
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Observations that exceeded every finite bound (the `+Inf` bucket).
    pub fn overflow_count(&self) -> u64 {
        // ordering: Relaxed — an independent statistic; no other data is
        // synchronized through it, and snapshot skew across metrics is fine.
        self.buckets.last().map_or(0, |b| b.load(Ordering::Relaxed))
    }

    /// Upper bound of the bucket containing the `q`-quantile observation,
    /// or `None` when empty. The `+Inf` bucket reports `u64::MAX`. `q` is
    /// clamped to [0, 1].
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let rank = rank.max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            // ordering: Relaxed — an independent statistic; no other data is
            // synchronized through it, and snapshot skew across metrics is fine.
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(self.bounds.get(i).copied().unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }

    /// Linear-interpolated `q`-quantile estimate from the bucket counts,
    /// or `None` when empty — the classic Prometheus `histogram_quantile`
    /// estimator. The rank is located in its bucket and the estimate
    /// interpolated between the bucket's lower and upper bound by the
    /// rank's fractional position inside it. Observations in the `+Inf`
    /// bucket clamp to the last finite bound (there is nothing to
    /// interpolate toward). `q` is clamped to [0, 1].
    pub fn quantile_interpolated(&self, q: f64) -> Option<f64> {
        quantile_from_buckets(self.bounds, &self.bucket_counts(), q)
    }
}

/// Linear-interpolated quantile over non-cumulative `bucket_counts`
/// (layout [`Histogram::bucket_counts`]: one count per finite bound plus
/// the trailing `+Inf` bucket). `None` when the counts sum to zero.
/// Shared by [`Histogram::quantile_interpolated`] and snapshot consumers
/// that hold only the copied-out counts.
pub fn quantile_from_buckets(bounds: &[u64], bucket_counts: &[u64], q: f64) -> Option<f64> {
    let total: u64 = bucket_counts.iter().take(bounds.len() + 1).sum();
    if total == 0 {
        return None;
    }
    let rank = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
    let mut seen = 0u64;
    for i in 0..=bounds.len() {
        let n = bucket_counts.get(i).copied().unwrap_or(0);
        if n == 0 {
            continue;
        }
        let lower = if i == 0 { 0 } else { bounds.get(i - 1).copied().unwrap_or(0) };
        if (seen + n) as f64 >= rank {
            let upper = match bounds.get(i) {
                Some(&b) => b,
                // +Inf bucket: clamp to the last finite bound.
                None => return Some(lower as f64),
            };
            let into = (rank - seen as f64) / n as f64;
            return Some(lower as f64 + (upper - lower) as f64 * into);
        }
        seen += n;
    }
    Some(bounds.last().copied().unwrap_or(0) as f64)
}

/// Incremental Prometheus text-exposition writer: every family gets its
/// `# HELP` and `# TYPE` preamble, label values are escaped per the
/// exposition format, and histograms render cumulative `le` buckets ending
/// in `+Inf`.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty writer.
    pub fn new() -> Self {
        PromWriter::default()
    }

    /// Escapes a label *value*: `\` → `\\`, `"` → `\"`, newline → `\n`.
    pub fn escape_label(value: &str) -> String {
        let mut out = String::with_capacity(value.len());
        for c in value.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out
    }

    fn preamble(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn label_block(labels: &[(&str, &str)]) -> String {
        if labels.is_empty() {
            return String::new();
        }
        let mut out = String::from("{");
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", Self::escape_label(v));
        }
        out.push('}');
        out
    }

    /// One unlabelled counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.preamble(name, help, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// One unlabelled gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.preamble(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// One unlabelled floating-point gauge sample.
    pub fn gauge_f64(&mut self, name: &str, help: &str, value: f64) {
        self.preamble(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {value:.3}");
    }

    /// An info-style gauge: constant `1` with identifying labels (values
    /// escaped).
    pub fn info(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) {
        self.preamble(name, help, "gauge");
        let _ = writeln!(self.out, "{name}{} 1", Self::label_block(labels));
    }

    /// A full histogram family: cumulative `le` buckets (the last bucket
    /// count is the `+Inf` bucket), then `_sum` and `_count`.
    ///
    /// `bucket_counts` normally has `bounds.len() + 1` entries (the layout
    /// [`Histogram::bucket_counts`] produces). Extra entries are ignored,
    /// and — so scrapers see every series from the very first scrape — a
    /// *short* or empty slice still renders the complete ladder, with the
    /// missing buckets counted as zero.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        bounds: &[u64],
        bucket_counts: &[u64],
        sum: u64,
        count: u64,
    ) {
        self.preamble(name, help, "histogram");
        let mut cumulative = 0u64;
        for i in 0..=bounds.len() {
            cumulative = cumulative.saturating_add(bucket_counts.get(i).copied().unwrap_or(0));
            match bounds.get(i) {
                Some(le) => {
                    let _ = writeln!(self.out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                }
                None => {
                    let _ = writeln!(self.out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                }
            }
        }
        let _ = writeln!(self.out, "{name}_sum {sum}");
        let _ = writeln!(self.out, "{name}_count {count}");
    }

    /// The accumulated exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.dec();
        g.dec(); // saturates, no wrap
        assert_eq!(g.get(), 0);
    }

    const BOUNDS: [u64; 3] = [10, 100, 1000];

    #[test]
    fn histogram_overflow_goes_to_inf_bucket_not_dropped() {
        let h = Histogram::new(&BOUNDS);
        h.observe(5);
        h.observe(50);
        h.observe(5_000); // over-range: must be counted, not dropped
        h.observe(u64::MAX);
        assert_eq!(h.count(), 4);
        assert_eq!(h.overflow_count(), 2);
        assert_eq!(h.bucket_counts(), vec![1, 1, 0, 2]);
        // The sum saturates instead of wrapping around u64.
        assert_eq!(h.sum(), u64::MAX);
        let h2 = Histogram::new(&BOUNDS);
        h2.observe(3);
        h2.observe(4);
        assert_eq!(h2.sum(), 7);
    }

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::new(&BOUNDS);
        for _ in 0..99 {
            h.observe(5);
        }
        h.observe(500);
        assert_eq!(h.quantile_upper_bound(0.5), Some(10));
        assert_eq!(h.quantile_upper_bound(0.99), Some(10));
        assert_eq!(h.quantile_upper_bound(1.0), Some(1000));
        let empty = Histogram::new(&BOUNDS);
        assert_eq!(empty.quantile_upper_bound(0.99), None);
        empty.observe(u64::MAX);
        assert_eq!(empty.quantile_upper_bound(0.99), Some(u64::MAX));
    }

    #[test]
    fn interpolated_quantiles_match_exact_on_synthetic_ladder() {
        // 1000 observations spread uniformly through (0, 1000]: exact
        // quantile q is q*1000, and with bounds every 100 the interpolated
        // estimate must land within one observation's spacing of it.
        const LADDER: [u64; 10] = [100, 200, 300, 400, 500, 600, 700, 800, 900, 1000];
        let h = Histogram::new(&LADDER);
        for v in 1..=1000u64 {
            h.observe(v);
        }
        for &(q, exact) in &[(0.50, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let est = h.quantile_interpolated(q).expect("non-empty");
            assert!(
                (est - exact).abs() <= 1.0,
                "q={q}: interpolated {est} vs exact {exact}"
            );
        }
        // Degenerate cases: empty → None; all-overflow clamps to the last
        // finite bound; a single bucket interpolates inside that bucket.
        let empty = Histogram::new(&LADDER);
        assert_eq!(empty.quantile_interpolated(0.5), None);
        let over = Histogram::new(&LADDER);
        over.observe(5_000);
        assert_eq!(over.quantile_interpolated(0.99), Some(1000.0));
        let one = Histogram::new(&LADDER);
        for _ in 0..4 {
            one.observe(150); // all in (100, 200]
        }
        let p50 = one.quantile_interpolated(0.5).expect("non-empty");
        assert!((100.0..=200.0).contains(&p50), "p50 {p50} inside its bucket");
    }

    #[test]
    fn quantile_from_buckets_handles_short_slices() {
        assert_eq!(quantile_from_buckets(&BOUNDS, &[], 0.5), None);
        // Short slice (no +Inf entry) still resolves inside known buckets.
        let est = quantile_from_buckets(&BOUNDS, &[4], 0.5).expect("non-empty");
        assert!((0.0..=10.0).contains(&est));
    }

    #[test]
    fn prom_writer_emits_full_ladder_for_zero_observation_histogram() {
        // Regression: a histogram nobody has observed into yet must still
        // expose its complete bucket ladder (all zeros), so scrapers see
        // stable series from the first scrape — even when the caller hands
        // over an empty counts slice.
        for counts in [vec![], vec![0, 0, 0, 0]] {
            let mut w = PromWriter::new();
            w.histogram("lat_us", "Latency.", &BOUNDS, &counts, 0, 0);
            let text = w.finish();
            assert!(text.contains("# TYPE lat_us histogram"), "{text}");
            assert!(text.contains("lat_us_bucket{le=\"10\"} 0"), "{text}");
            assert!(text.contains("lat_us_bucket{le=\"100\"} 0"), "{text}");
            assert!(text.contains("lat_us_bucket{le=\"1000\"} 0"), "{text}");
            assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 0"), "{text}");
            assert!(text.contains("lat_us_sum 0"), "{text}");
            assert!(text.contains("lat_us_count 0"), "{text}");
        }
    }

    #[test]
    fn prom_writer_emits_help_type_and_escapes_labels() {
        let mut w = PromWriter::new();
        w.counter("x_total", "Things counted.", 3);
        w.gauge("x_live", "Things live.", 1);
        w.info("x_build_info", "Build metadata.", &[("version", "0.1.0"), ("quote", "a\"b\\c\nd")]);
        let text = w.finish();
        assert!(text.contains("# HELP x_total Things counted."));
        assert!(text.contains("# TYPE x_total counter"));
        assert!(text.contains("# HELP x_live Things live."));
        assert!(text.contains("# TYPE x_live gauge"));
        // Label escaping: backslash, quote, and newline all escaped.
        assert!(text.contains(r#"quote="a\"b\\c\nd""#));
        assert!(text.contains("x_build_info{version=\"0.1.0\","));
    }

    #[test]
    fn prom_writer_histogram_is_cumulative_with_inf() {
        let h = Histogram::new(&BOUNDS);
        h.observe(5);
        h.observe(50);
        h.observe(9_999_999);
        let mut w = PromWriter::new();
        w.histogram("lat_us", "Latency.", h.bounds(), &h.bucket_counts(), h.sum(), h.count());
        let text = w.finish();
        assert!(text.contains("# TYPE lat_us histogram"));
        assert!(text.contains("lat_us_bucket{le=\"10\"} 1"));
        assert!(text.contains("lat_us_bucket{le=\"100\"} 2"));
        assert!(text.contains("lat_us_bucket{le=\"1000\"} 2"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_us_count 3"));
    }
}
